#!/usr/bin/env python3
"""Verify internal Markdown links in docs/ and the README resolve.

Checks every inline link/image target in the repository's top-level
``*.md`` files and everything under ``docs/``:

* relative file targets must exist on disk;
* ``#fragment`` anchors (own-file or ``file.md#fragment``) must match a
  heading in the target file, using GitHub's slug rules (lowercase,
  punctuation stripped, spaces to hyphens, ``-N`` suffixes for
  duplicates);
* external targets (``http(s)://``, ``mailto:``) are skipped, as are
  site-relative targets that resolve outside the repository (e.g. the
  README's ``../../actions/...`` CI badge, a GitHub-web convention).

Stdlib only.  Exit status: 0 when every link resolves, 1 otherwise
(one ``file:line: message`` diagnostic per broken link).
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: inline links and images: [text](target) / ![alt](target).
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE = re.compile(r"^\s*(```|~~~)")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")  # any URI scheme


def github_slug(heading: str, seen: dict[str, int]) -> str:
    """The anchor GitHub generates for ``heading`` (with dedup suffix)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # unwrap inline code
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    slug = re.sub(r"[^\w\- ]", "", text.lower()).strip().replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def markdown_lines(path: pathlib.Path):
    """(line_number, line) pairs with fenced code blocks blanked out."""
    in_fence = False
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield number, line


def heading_anchors(path: pathlib.Path) -> set[str]:
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    for _, line in markdown_lines(path):
        match = HEADING.match(line)
        if match:
            anchors.add(github_slug(match.group(2), seen))
    return anchors


def check_file(path: pathlib.Path, anchor_cache: dict) -> list[str]:
    errors = []
    for number, line in markdown_lines(path):
        for match in LINK.finditer(line):
            target = match.group(1)
            if EXTERNAL.match(target):
                continue
            file_part, _, fragment = target.partition("#")
            if file_part:
                resolved = (path.parent / file_part).resolve()
                if not resolved.is_relative_to(REPO_ROOT):
                    continue  # site-relative GitHub-web target
                if not resolved.exists():
                    errors.append(
                        f"{path.relative_to(REPO_ROOT)}:{number}: "
                        f"broken link target {target!r}"
                    )
                    continue
            else:
                resolved = path.resolve()
            if fragment and resolved.suffix == ".md":
                anchors = anchor_cache.get(resolved)
                if anchors is None:
                    anchors = heading_anchors(resolved)
                    anchor_cache[resolved] = anchors
                if fragment not in anchors:
                    errors.append(
                        f"{path.relative_to(REPO_ROOT)}:{number}: "
                        f"no heading for anchor {target!r} in "
                        f"{resolved.relative_to(REPO_ROOT)}"
                    )
    return errors


def main() -> int:
    files = sorted(REPO_ROOT.glob("*.md")) + sorted(REPO_ROOT.glob("docs/**/*.md"))
    anchor_cache: dict = {}
    errors = []
    for path in files:
        errors.extend(check_file(path, anchor_cache))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
