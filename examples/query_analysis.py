#!/usr/bin/env python3
"""Static query analysis: satisfiability, containment, minimization.

Walks through the paper's Section 3 examples:

* Example 4 — Q1 of Fig. 4 is unsatisfiable (its negation clashes with a
  subsumption constraint), Q2 differs only by one PC edge and is fine;
* Example 5 — containment relationships among Q1/Q2/Q3;
* Example 6 — minGTPQ shrinks Q1 (8 nodes) to Q3 (4 nodes).

Run:  python examples/query_analysis.py
"""

from repro import QueryBuilder, are_equivalent, is_contained, is_query_satisfiable, minimize_query
from repro.analysis import QueryAnalysis


def fig4(variant: str, fs_u1: str) -> "QueryBuilder":
    u2_edge = "ad" if variant == "q1" else "pc"
    return (
        QueryBuilder()
        .backbone("u1", paper_label="A1")
        .predicate("u2", parent="u1", edge=u2_edge, paper_label="B1")
        .backbone("u3", parent="u1", paper_label="C1")
        .predicate("u4", parent="u2", paper_label="E1")
        .predicate("u5", parent="u3", paper_label="C1")
        .predicate("u6", parent="u3", paper_label="B2")
        .predicate("u7", parent="u6", paper_label="E1")
        .predicate("u8", parent="u5", paper_label="F1")
        .structural("u1", fs_u1)
        .structural("u2", "u4")
        .structural("u3", "(u5 & u6) | (!u5 & u6)")
        .structural("u5", "u8")
        .structural("u6", "u7")
        .outputs("u3")
        .build()
    )


# ----------------------------------------------------------------------
# Satisfiability (Theorems 1-2, Example 4)
# ----------------------------------------------------------------------
q1_neg = fig4("q1", "!u2")
q2_neg = fig4("q2", "!u2")
print("Example 4 — satisfiability with fs(u1) = !u2:")
print(f"  Q1 satisfiable? {is_query_satisfiable(q1_neg)}   (paper: No)")
print(f"  Q2 satisfiable? {is_query_satisfiable(q2_neg)}   (paper: Yes)")

analysis = QueryAnalysis(q1_neg)
print(f"  non-independent nodes of Q1: "
      f"{sorted(set(q1_neg.nodes) - analysis.independent_nodes)} (paper: u5, u8)")
print(f"  subsumption u2 ⊴ u6 in Q1? {analysis.subsumed('u2', 'u6')}")
print(f"  subsumption u2 ⊴ u6 in Q2? "
      f"{QueryAnalysis(q2_neg).subsumed('u2', 'u6')} (PC edge blocks it)")

# ----------------------------------------------------------------------
# Containment and equivalence (Theorem 3, Example 5)
# ----------------------------------------------------------------------
q1 = fig4("q1", "u2")
q2 = fig4("q2", "u2")
q3 = (
    QueryBuilder()
    .backbone("u1", paper_label="A1")
    .backbone("u3", parent="u1", paper_label="C1")
    .predicate("u6", parent="u3", paper_label="B2")
    .predicate("u7", parent="u6", paper_label="E1")
    .structural("u6", "u7")
    .outputs("u3")
    .build()
)
print("\nExample 5 — containment with fs(u1) = u2:")
print(f"  Q2 ⊑ Q3? {is_contained(q2, q3)}   (paper: Yes)")
print(f"  Q2 ⊑ Q1? {is_contained(q2, q1)}   (paper: Yes)")
print(f"  Q1 ≡ Q3? {are_equivalent(q1, q3)}   (paper: Yes)")
print(f"  Q3 ⊑ Q2? {is_contained(q3, q2)}   (No: Q2's PC edge is stricter)")

# ----------------------------------------------------------------------
# Minimization (Algorithm 1, Example 6)
# ----------------------------------------------------------------------
minimized = minimize_query(q1)
print("\nExample 6 — minimization of Q1:")
print(f"  |Q1| = {q1.size}  ->  |minGTPQ(Q1)| = {minimized.size}")
print(f"  surviving nodes: {sorted(minimized.nodes)}   (paper: u1, u3, u6, u7)")
print(f"  equivalent to original? {are_equivalent(q1, minimized)}")
assert minimized.size == 4
print("\nOK: all Section 3 examples reproduced.")
