#!/usr/bin/env python3
"""Example 1 of the paper: logical operators over a DBLP-like bibliography.

Three retrieval tasks over papers/volumes linked by crossref edges:

* Q1 — Alice's conference papers 2000-2010 co-authored with Bob (AND);
* Q2 — conference papers of either Alice or Bob, 2000-2010 (OR);
* Q3 — Alice's papers NOT co-authored with Bob, 2000-2010 (NOT).

Q2 and Q3 cannot be expressed as traditional (conjunctive) tree pattern
queries — they need the structural predicates GTPQs add.

Run:  python examples/dblp_logical_queries.py
"""

from repro.datasets import dblp_example_query, generate_dblp
from repro.engine import GTEA

dblp = generate_dblp(num_proceedings=40, papers_per_proceedings=15, seed=11)
graph = dblp.graph
print(
    f"DBLP-like graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
    f"{len(dblp.inproceedings)} papers, {len(dblp.proceedings)} volumes"
)

engine = GTEA(graph)

for variant, description in [
    ("q1", "papers with Alice AND Bob  (2000-2010)"),
    ("q2", "papers with Alice OR Bob   (2000-2010)"),
    ("q3", "papers with Alice, NO Bob  (2000-2010)"),
]:
    query = dblp_example_query(variant)
    answer, stats = engine.evaluate_with_stats(query)
    print(f"\n{variant.upper()}: {description}")
    print(f"  structural predicate fs(paper) = {query.fs('paper')}")
    print(f"  results: {len(answer)} (title, year, conf-title) tuples")
    print(f"  pruning kept "
          f"{sum(stats.candidates_after_downward.values())} of "
          f"{sum(stats.candidates_initial.values())} candidates")

# Cross-check the logical relationships between the three answers.
q1 = engine.evaluate(dblp_example_query("q1"))
q2 = engine.evaluate(dblp_example_query("q2"))
q3 = engine.evaluate(dblp_example_query("q3"))
assert q1 <= q2, "AND-answers are a subset of OR-answers"
assert q1.isdisjoint(q3), "with-Bob and without-Bob answers are disjoint"
print("\nOK: Q1 ⊆ Q2 and Q1 ∩ Q3 = ∅, as the semantics demand.")
