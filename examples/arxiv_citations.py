#!/usr/bin/env python3
"""Citation-graph patterns over the arXiv-like dataset (paper Sec. 5.2).

Random "meaningful" tree patterns are sampled from the graph itself (so
they have nonempty answers) and classified into small/large result
groups, reproducing the Section 5.2 query-generation protocol.  GTEA is
then compared against TwigStackD on one query per group.

Run:  python examples/arxiv_citations.py
"""

import time

from repro.baselines import TwigStackD
from repro.datasets import generate_arxiv, generate_query_groups
from repro.engine import GTEA
from repro.graph import graph_stats

arxiv = generate_arxiv(num_papers=1500, num_authors=300, seed=23)
stats = graph_stats(arxiv.graph)
print(
    f"arXiv-like graph: {stats.num_nodes} nodes, {stats.num_edges} edges, "
    f"{stats.num_labels} labels, max depth {stats.max_depth}"
)

engine = GTEA(arxiv.graph)
groups = generate_query_groups(
    arxiv.graph,
    sizes=(5, 7),
    queries_per_size=3,
    small_range=(2, 50),
    large_range=(51, 5000),
    seed=3,
    engine=engine,
)

for group_name, by_size in groups.items():
    print(f"\n--- {group_name}-result group ---")
    for size, queries in by_size.items():
        for generated in queries[:1]:
            started = time.perf_counter()
            gtea_answer = engine.evaluate(generated.query)
            gtea_ms = (time.perf_counter() - started) * 1000

            started = time.perf_counter()
            twig_answer = TwigStackD(arxiv.graph).evaluate(generated.query)
            twig_ms = (time.perf_counter() - started) * 1000

            assert gtea_answer == twig_answer
            print(
                f"  size {size:2d}: {generated.result_size:5d} results | "
                f"GTEA {gtea_ms:8.2f} ms | TwigStackD {twig_ms:8.2f} ms"
            )

print("\nOK: GTEA and TwigStackD agree on all sampled citation queries.")
