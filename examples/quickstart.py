#!/usr/bin/env python3
"""Quickstart: build a graph, pose a GTPQ with logical operators, evaluate.

Recreates the paper's running example (Fig. 2): a 16-node data graph and
the query A1 with two C1 branches, where one branch carries the predicate
``!u6 | (u7 & u8)`` — disjunction *and* negation over structure, which
traditional tree pattern queries cannot express.

Run:  python examples/quickstart.py
"""

from repro import DataGraph, GTEA, QueryBuilder

# ----------------------------------------------------------------------
# 1. A data graph.  Nodes carry attribute dictionaries; here we use the
#    paper's convention where label "c2" means tag "c" with rank 2.
# ----------------------------------------------------------------------
LABELS = [
    "a1", "a1", "c1", "a1", "c2", "b1", "b1", "c1",
    "e1", "e1", "d1", "d1", "e2", "d1", "e1", "g1",
]
EDGES = [
    (0, 2), (0, 4), (1, 3), (3, 7), (3, 4), (6, 2), (6, 8),
    (2, 5), (2, 10), (5, 9), (9, 14), (10, 15), (10, 12),
    (4, 11), (4, 13), (7, 12),
]

graph = DataGraph()
for label in LABELS:
    tag, rank = label[0], int(label[1:])
    graph.add_node({"label": label, "tag": tag, "rank": rank})
for source, target in EDGES:
    graph.add_edge(source, target)

print(f"data graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

# ----------------------------------------------------------------------
# 2. A generalized tree pattern query (Fig. 2(b)).
#    - backbone nodes must be matched and may be output;
#    - predicate nodes are filters combined by a propositional formula.
# ----------------------------------------------------------------------
query = (
    QueryBuilder()
    .backbone("u1", paper_label="A1")
    .backbone("u2", parent="u1", paper_label="C1")
    .backbone("u3", parent="u1", paper_label="C1")
    .backbone("u4", parent="u3", paper_label="D1")
    .predicate("u5", parent="u2", paper_label="E2")
    .predicate("u6", parent="u3", paper_label="G1")
    .predicate("u7", parent="u3", paper_label="B1")
    .predicate("u8", parent="u3", paper_label="D1")
    .predicate("u9", parent="u7", paper_label="E1")
    .predicate("u10", parent="u7", paper_label="E1")
    .structural("u2", "u5")                 # u2 must reach an E2 node
    .structural("u3", "!u6 | (u7 & u8)")    # logical-NOT and OR over structure
    .structural("u7", "u9 | u10")
    .outputs("u2", "u4")                    # the starred nodes of Fig. 2
    .build()
)
print(f"query: {query.size} nodes, outputs {query.outputs}")

# ----------------------------------------------------------------------
# 3. Evaluate with GTEA (3-hop index + contour pruning + matching graph).
# ----------------------------------------------------------------------
engine = GTEA(graph)
answer, stats = engine.evaluate_with_stats(query)

print("\nanswer tuples (u2-image, u4-image), paper ids are +1:")
for row in sorted(answer):
    print("  ", tuple(f"v{v + 1}" for v in row))

print("\nevaluation statistics:")
print(f"  candidates fetched (#input):     {stats.input_nodes}")
print(f"  index entries scanned (#index):  {stats.index_entries}")
print(f"  matching graph (nodes, edges):   "
      f"({stats.matching_graph_nodes}, {stats.matching_graph_edges})")
print(f"  intermediate cost (#intermediate): {stats.intermediate_cost}")

expected = {(2, 10), (2, 11), (2, 13), (7, 11), (7, 13)}
assert answer == expected, "should match the paper's Example 3 answer"
print("\nOK: matches the paper's Example 3 answer set.")
