#!/usr/bin/env python3
"""XMark auction queries: GTEA vs the baseline algorithms (paper Sec. 5.1).

Generates an XMark-like document graph (trees + ID/IDREF reference edges)
and runs the paper's Q1 workload (Fig. 7) with every implemented
algorithm, printing times and verifying they all return the same answer.

Run:  python examples/xmark_auctions.py
"""

import time

from repro.baselines import (
    HGJoinPlus,
    HGJoinStar,
    TreeDecomposedEvaluator,
    Twig2Stack,
    TwigStack,
    TwigStackD,
    decompose_at_cross_edges,
)
from repro.datasets import FIG7_CROSS, fig7_query, generate_xmark
from repro.engine import GTEA

xmark = generate_xmark(scale=0.05, seed=17)
graph = xmark.graph
print(f"XMark-like graph: {graph.num_nodes} nodes, {graph.num_edges} edges "
      f"({len(xmark.persons)} persons, {len(xmark.open_auctions)} auctions)")

query = fig7_query("q1", person_group=2)
print(f"query Q1: {query.size} nodes — auctions with a bidder referencing "
      f"a person2-group person having education and a city\n")


def timed(label, fn):
    started = time.perf_counter()
    result = fn()
    elapsed = (time.perf_counter() - started) * 1000
    print(f"  {label:<22} {elapsed:9.2f} ms   {len(result):5d} results")
    return result


print("algorithm                time              results")
engine = GTEA(graph)  # index build excluded, as in the paper
answers = {}
answers["GTEA"] = timed("GTEA", lambda: engine.evaluate(query))
answers["TwigStackD"] = timed(
    "TwigStackD", lambda: TwigStackD(graph).evaluate(query)
)
answers["HGJoin+"] = timed("HGJoin+", lambda: HGJoinPlus(graph).evaluate(query))
answers["HGJoin*"] = timed("HGJoin*", lambda: HGJoinStar(graph).evaluate(query))

decomposed = decompose_at_cross_edges(query, FIG7_CROSS["q1"])
for name, algorithm in [("TwigStack", TwigStack), ("Twig2Stack", Twig2Stack)]:
    runner = TreeDecomposedEvaluator(
        graph, algorithm, forest_edges=xmark.forest_edges
    )
    answers[name] = timed(
        f"{name} (decomposed)", lambda r=runner: r.evaluate(decomposed)
    )

reference = answers["GTEA"]
for name, result in answers.items():
    assert result == reference, f"{name} disagrees with GTEA"
print("\nOK: all six algorithms agree on the answer set.")
