"""Attribute predicates: conjunctions of ``A op a`` atoms (paper Sec. 2).

``fa(u)`` is a conjunction of comparisons between an attribute name and a
constant, with ``op ∈ {<, <=, =, !=, >, >=}``.  Besides evaluation against
a node's attribute tuple, this module implements the two static checks the
analysis algorithms need:

* :meth:`AttributePredicate.is_satisfiable` — per-attribute interval
  consistency (Theorem 2's proof assumes this linear-time check);
* :meth:`AttributePredicate.subsumes` — the paper's syntactic condition
  ``u2 ⊢ u1`` used by node similarity (Section 3.1).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

_OPS = ("<", "<=", "=", "!=", ">", ">=")


def _compare(left: Any, op: str, right: Any) -> bool:
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False  # incomparable types never satisfy a comparison
    raise ValueError(f"unknown operator {op!r}")


class AttributePredicate:
    """An immutable conjunction of ``(attribute, op, constant)`` atoms.

    The empty predicate (no atoms) matches every node — useful for
    wildcard query nodes like the starred ``*`` nodes of the paper's Fig. 1.
    """

    __slots__ = ("atoms",)

    def __init__(self, atoms: Iterable[tuple[str, str, Any]] = ()):
        normalized = []
        for attribute, op, constant in atoms:
            if op == "==":
                op = "="
            if op not in _OPS:
                raise ValueError(f"unknown operator {op!r}; expected one of {_OPS}")
            normalized.append((attribute, op, constant))
        object.__setattr__(self, "atoms", tuple(normalized))

    def __setattr__(self, *args):  # pragma: no cover - immutability guard
        raise AttributeError("AttributePredicate is immutable")

    def __reduce__(self):
        # Default slot-state pickling restores through __setattr__, which
        # the guard above rejects; rebuild through __init__ instead so
        # predicates inside persisted plans survive the round trip.
        return (type(self), (self.atoms,))

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @classmethod
    def label(cls, value: Any) -> "AttributePredicate":
        """Predicate matching nodes whose ``label`` equals ``value``."""
        return cls([("label", "=", value)])

    @classmethod
    def tag_rank(cls, paper_label: str) -> "AttributePredicate":
        """The paper's figure convention: ``"C2"`` matches ``c2, c3, ...``.

        A data label ``x_i`` matches a query label ``Y_j`` iff ``x == y``
        and ``i >= j`` (Example 3).
        """
        head = paper_label.rstrip("0123456789")
        rank = int(paper_label[len(head):])
        return cls([("tag", "=", head.lower()), ("rank", ">=", rank)])

    @classmethod
    def wildcard(cls) -> "AttributePredicate":
        """The always-true predicate (a ``*`` query node)."""
        return cls()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def matches(self, attrs: Mapping[str, Any]) -> bool:
        """Does a node with attribute tuple ``attrs`` satisfy ``fa``?

        Per the paper's semantics, every named attribute must be present on
        the node with a value satisfying the comparison.
        """
        for attribute, op, constant in self.atoms:
            if attribute not in attrs:
                return False
            if not _compare(attrs[attribute], op, constant):
                return False
        return True

    # ------------------------------------------------------------------
    # Static analysis
    # ------------------------------------------------------------------
    def is_satisfiable(self) -> bool:
        """Can *some* attribute tuple satisfy the conjunction?

        Per-attribute interval reasoning; numeric and string domains are
        treated as dense (documented simplification — query constants in
        all paper workloads are labels or years, where this is exact).
        """
        by_attribute: dict[str, list[tuple[str, Any]]] = {}
        for attribute, op, constant in self.atoms:
            by_attribute.setdefault(attribute, []).append((op, constant))
        return all(_atoms_satisfiable(atom_list) for atom_list in by_attribute.values())

    def subsumes(self, other: "AttributePredicate") -> bool:
        """The paper's ``self ⊢ other`` check (self is the more specific).

        For each atom ``A op a1`` in ``other`` there must be an atom
        ``A op a2`` in ``self`` with the same operator such that (a) for
        ``<=, <``: ``a2 <= a1``; (b) for ``>=, >``: ``a2 >= a1``; (c) for
        ``=, !=``: ``a1 = a2``.  Every tuple matching ``self`` then matches
        ``other``.
        """
        for attribute, op, constant in other.atoms:
            if not any(
                own_attribute == attribute
                and own_op == op
                and _subsumption_compatible(op, own_constant, constant)
                for own_attribute, own_op, own_constant in self.atoms
            ):
                return False
        return True

    def conjoin(self, other: "AttributePredicate") -> "AttributePredicate":
        """The conjunction of two predicates."""
        return AttributePredicate(self.atoms + other.atoms)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return isinstance(other, AttributePredicate) and set(self.atoms) == set(other.atoms)

    def __hash__(self) -> int:
        return hash(frozenset(self.atoms))

    def __repr__(self) -> str:
        if not self.atoms:
            return "AttributePredicate(*)"
        inner = " & ".join(f"{a} {op} {c!r}" for a, op, c in self.atoms)
        return f"AttributePredicate({inner})"


def _subsumption_compatible(op: str, specific: Any, general: Any) -> bool:
    try:
        if op in ("<", "<="):
            return specific <= general
        if op in (">", ">="):
            return specific >= general
        return specific == general  # =, !=
    except TypeError:
        return False


def _atoms_satisfiable(atoms: list[tuple[str, Any]]) -> bool:
    """Interval consistency of one attribute's constraints."""
    pinned: list[Any] = [c for op, c in atoms if op == "="]
    if pinned:
        value = pinned[0]
        if any(value != other for other in pinned[1:]):
            return False
        return all(_compare(value, op, c) for op, c in atoms if op != "=")

    lower: Any = None
    lower_strict = False
    upper: Any = None
    upper_strict = False
    excluded: list[Any] = []
    for op, constant in atoms:
        if op in (">", ">="):
            strict = op == ">"
            try:
                replace = lower is None or constant > lower or (
                    constant == lower and strict and not lower_strict
                )
            except TypeError:
                return False
            if replace:
                lower, lower_strict = constant, strict
        elif op in ("<", "<="):
            strict = op == "<"
            try:
                replace = upper is None or constant < upper or (
                    constant == upper and strict and not upper_strict
                )
            except TypeError:
                return False
            if replace:
                upper, upper_strict = constant, strict
        elif op == "!=":
            excluded.append(constant)
    if lower is not None and upper is not None:
        try:
            if lower > upper:
                return False
            if lower == upper:
                if lower_strict or upper_strict:
                    return False
                # Interval is the single point `lower`.
                return all(lower != bad for bad in excluded)
        except TypeError:
            return False
    # Dense-domain assumption: a non-degenerate interval (or half-line)
    # always contains a point avoiding finitely many exclusions.
    return True
