"""The generalized tree pattern query (GTPQ) model — paper Section 2.

``Q = (Vb, Vp, Vo, Eq, fa, fe, fs)``:

* backbone nodes ``Vb`` and predicate nodes ``Vp`` form a rooted tree;
* each edge is parent–child (PC) or ancestor–descendant (AD);
* each node carries an attribute predicate ``fa``;
* each internal node carries a structural predicate ``fs`` — a
  propositional formula over variables named after its *predicate*
  children (backbone children are implicitly conjoined via ``fext``);
* output nodes ``Vo ⊆ Vb``.

Well-formedness (enforced by :meth:`GTPQ.validate`):

* the node/edge structure is a tree rooted at a backbone node;
* a backbone node's parent is backbone (paper constraint (3));
* ``fs(u)`` mentions only predicate children of ``u``;
* ``Vo`` is a nonempty subset of ``Vb``.

The restriction that negation/disjunction never applies to backbone
variables is structural here: backbone children are simply not legal
variables of ``fs``, which is exactly the paper's guarantee that every
backbone node has an image in every match.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Iterator

from ..logic import TRUE, Formula, Var, land
from .attribute import AttributePredicate


class EdgeType(Enum):
    """The two structural relationships of tree pattern queries."""

    CHILD = "pc"        #: parent-child: one data edge
    DESCENDANT = "ad"   #: ancestor-descendant: nonempty data path

    @classmethod
    def parse(cls, value: "EdgeType | str") -> "EdgeType":
        if isinstance(value, EdgeType):
            return value
        lowered = value.lower()
        if lowered in ("pc", "child", "/"):
            return cls.CHILD
        if lowered in ("ad", "descendant", "//"):
            return cls.DESCENDANT
        raise ValueError(f"unknown edge type {value!r}")


class QueryNode:
    """One node of a GTPQ."""

    __slots__ = ("id", "predicate", "is_backbone")

    def __init__(self, node_id: str, predicate: AttributePredicate, is_backbone: bool):
        self.id = node_id
        self.predicate = predicate
        self.is_backbone = is_backbone

    def __repr__(self) -> str:
        kind = "backbone" if self.is_backbone else "predicate"
        return f"QueryNode({self.id!r}, {kind})"


class QueryValidationError(ValueError):
    """Raised when a GTPQ violates the well-formedness rules."""


class GTPQ:
    """A generalized tree pattern query.

    Instances are built through :class:`repro.query.builder.QueryBuilder`
    (recommended) or directly from components.  After construction the
    structure is fixed; the analysis algorithms produce *new* queries
    rather than mutating existing ones.
    """

    def __init__(
        self,
        root: str,
        nodes: dict[str, QueryNode],
        parent: dict[str, str],
        children: dict[str, list[str]],
        edge_types: dict[str, EdgeType],
        structural: dict[str, Formula],
        outputs: list[str],
    ):
        """Args:
            root: id of the root node.
            nodes: all query nodes by id.
            parent: parent id of every non-root node.
            children: ordered child list per node (may be empty).
            edge_types: per non-root node, the type of its incoming edge.
            structural: ``fs`` per node; missing entries default to TRUE.
            outputs: ordered output node ids (result-tuple column order).
        """
        self.root = root
        self.nodes = nodes
        self.parent = parent
        self.children = {node_id: list(children.get(node_id, [])) for node_id in nodes}
        self.edge_types = edge_types
        self.structural = {
            node_id: structural.get(node_id, TRUE) for node_id in nodes
        }
        self.outputs = list(outputs)
        self.validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.root not in self.nodes:
            raise QueryValidationError(f"root {self.root!r} is not a query node")
        if not self.nodes[self.root].is_backbone:
            raise QueryValidationError("the root must be a backbone node")
        if self.root in self.parent:
            raise QueryValidationError("the root cannot have a parent")
        for node_id in self.nodes:
            if node_id != self.root and node_id not in self.parent:
                raise QueryValidationError(f"node {node_id!r} is disconnected")
        # Tree shape: walking parents from any node must end at the root.
        for node_id in self.nodes:
            seen = {node_id}
            current = node_id
            while current != self.root:
                current = self.parent.get(current)
                if current is None or current not in self.nodes:
                    raise QueryValidationError(
                        f"node {node_id!r} is not connected to the root"
                    )
                if current in seen:
                    raise QueryValidationError("query edges form a cycle")
                seen.add(current)
        for node_id, child_ids in self.children.items():
            for child_id in child_ids:
                if self.parent.get(child_id) != node_id:
                    raise QueryValidationError(
                        f"child list of {node_id!r} disagrees with parent map"
                    )
        for node_id in self.parent:
            if node_id not in self.edge_types:
                raise QueryValidationError(f"edge into {node_id!r} has no type")
        # Paper constraint (3): backbone nodes hang off backbone nodes.
        for node_id, node in self.nodes.items():
            if node_id == self.root:
                continue
            if node.is_backbone and not self.nodes[self.parent[node_id]].is_backbone:
                raise QueryValidationError(
                    f"backbone node {node_id!r} has a predicate parent"
                )
        # fs(u) ranges over predicate children only.
        for node_id, formula in self.structural.items():
            allowed = {
                child_id
                for child_id in self.children[node_id]
                if not self.nodes[child_id].is_backbone
            }
            extra = formula.variables() - allowed
            if extra:
                raise QueryValidationError(
                    f"fs({node_id}) mentions non-predicate-children {sorted(extra)}"
                )
        if not self.outputs:
            raise QueryValidationError("a query must have at least one output node")
        for node_id in self.outputs:
            if node_id not in self.nodes:
                raise QueryValidationError(f"output {node_id!r} is not a query node")
            if not self.nodes[node_id].is_backbone:
                raise QueryValidationError(
                    f"output node {node_id!r} must be a backbone node"
                )

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """``|Q| = |Vq|`` (paper Section 3.3)."""
        return len(self.nodes)

    def backbone_nodes(self) -> list[str]:
        return [node_id for node_id, node in self.nodes.items() if node.is_backbone]

    def predicate_nodes(self) -> list[str]:
        return [node_id for node_id, node in self.nodes.items() if not node.is_backbone]

    def attribute(self, node_id: str) -> AttributePredicate:
        """``fa(u)``."""
        return self.nodes[node_id].predicate

    def fs(self, node_id: str) -> Formula:
        """``fs(u)``, the structural predicate over predicate children."""
        return self.structural[node_id]

    def fext(self, node_id: str) -> Formula:
        """``fext(u)``: backbone-children conjunction AND ``fs(u)``."""
        backbone_vars = [
            Var(child_id)
            for child_id in self.children[node_id]
            if self.nodes[child_id].is_backbone
        ]
        return land(*backbone_vars, self.structural[node_id])

    def edge_type(self, node_id: str) -> EdgeType:
        """Type of the edge *into* ``node_id`` (undefined for the root)."""
        return self.edge_types[node_id]

    def is_leaf(self, node_id: str) -> bool:
        return not self.children[node_id]

    def depth_first(self, start: str | None = None) -> Iterator[str]:
        """Pre-order traversal of (a subtree of) the query."""
        stack = [start if start is not None else self.root]
        while stack:
            node_id = stack.pop()
            yield node_id
            stack.extend(reversed(self.children[node_id]))

    def bottom_up(self) -> list[str]:
        """Nodes ordered leaves-first (children before parents)."""
        return list(reversed(list(self.depth_first())))

    def subtree_nodes(self, node_id: str) -> list[str]:
        """All nodes of the subtree rooted at ``node_id`` (pre-order)."""
        return list(self.depth_first(node_id))

    def ancestors(self, node_id: str) -> list[str]:
        """Proper ancestors from parent up to the root."""
        out = []
        current = node_id
        while current != self.root:
            current = self.parent[current]
            out.append(current)
        return out

    def path_to_root(self, node_id: str) -> list[str]:
        """``node_id`` plus its ancestors, ending at the root."""
        return [node_id] + self.ancestors(node_id)

    # ------------------------------------------------------------------
    # Classification (paper Section 2)
    # ------------------------------------------------------------------
    def is_conjunctive(self) -> bool:
        """Structural predicates use conjunction only."""
        from ..logic import And, Const, Var as _Var

        return all(
            all(isinstance(g, (And, Const, _Var)) for g in formula.walk())
            for formula in self.structural.values()
        )

    def is_union_conjunctive(self) -> bool:
        """Structural predicates are negation-free."""
        from ..logic import Not

        return all(
            not any(isinstance(g, Not) for g in formula.walk())
            for formula in self.structural.values()
        )

    def has_pc_edges(self) -> bool:
        return any(edge is EdgeType.CHILD for edge in self.edge_types.values())

    # ------------------------------------------------------------------
    # Derivation helpers used by analysis/minimization
    # ------------------------------------------------------------------
    def copy(
        self,
        *,
        drop: Iterable[str] = (),
        structural_override: dict[str, Formula] | None = None,
        outputs_override: list[str] | None = None,
    ) -> "GTPQ":
        """A new query with ``drop`` subtrees removed and overrides applied.

        Dropping a node drops its whole subtree.  The caller is responsible
        for having already substituted the dropped variables out of the
        remaining structural predicates.
        """
        dropped: set[str] = set()
        for node_id in drop:
            dropped.update(self.subtree_nodes(node_id))
        keep = {node_id for node_id in self.nodes if node_id not in dropped}
        if self.root in dropped:
            raise QueryValidationError("cannot drop the root subtree")
        structural = dict(self.structural)
        if structural_override:
            structural.update(structural_override)
        outputs = outputs_override if outputs_override is not None else self.outputs
        return GTPQ(
            root=self.root,
            nodes={node_id: self.nodes[node_id] for node_id in keep},
            parent={
                node_id: parent_id
                for node_id, parent_id in self.parent.items()
                if node_id in keep
            },
            children={
                node_id: [c for c in self.children[node_id] if c in keep]
                for node_id in keep
            },
            edge_types={
                node_id: edge
                for node_id, edge in self.edge_types.items()
                if node_id in keep
            },
            structural={
                node_id: structural[node_id] for node_id in keep
            },
            outputs=[node_id for node_id in outputs if node_id in keep],
        )

    def __repr__(self) -> str:
        return (
            f"GTPQ(root={self.root!r}, nodes={len(self.nodes)}, "
            f"outputs={self.outputs!r})"
        )
