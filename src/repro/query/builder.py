"""Fluent construction of GTPQs.

Example — the paper's Fig. 2(b) query::

    query = (
        QueryBuilder()
        .backbone("u1", paper_label="A1")
        .backbone("u2", parent="u1", paper_label="C1")
        .backbone("u3", parent="u1", paper_label="C1")
        .backbone("u4", parent="u3", paper_label="D1")
        .predicate("u5", parent="u2", paper_label="E2")
        .predicate("u6", parent="u3", paper_label="G1")
        .predicate("u7", parent="u3", paper_label="B1")
        .predicate("u8", parent="u3", paper_label="D1")
        .predicate("u9", parent="u7", paper_label="E1")
        .predicate("u10", parent="u7", paper_label="E1")
        .structural("u2", "u5")
        .structural("u3", "!u6 | (u7 & u8)")
        .structural("u7", "u9 | u10")
        .outputs("u2", "u4")
        .build()
    )

All edges default to ancestor–descendant; pass ``edge="pc"`` (or ``"/"``)
for parent–child.
"""

from __future__ import annotations

from typing import Any

from ..logic import Formula, parse_formula
from .attribute import AttributePredicate
from .gtpq import GTPQ, EdgeType, QueryNode, QueryValidationError


class QueryBuilder:
    """Incremental GTPQ construction with validation on :meth:`build`."""

    def __init__(self):
        self._nodes: dict[str, QueryNode] = {}
        self._root: str | None = None
        self._parent: dict[str, str] = {}
        self._children: dict[str, list[str]] = {}
        self._edge_types: dict[str, EdgeType] = {}
        self._structural: dict[str, Formula] = {}
        self._outputs: list[str] = []

    # ------------------------------------------------------------------
    def _add(
        self,
        node_id: str,
        parent: str | None,
        edge: EdgeType | str,
        predicate: AttributePredicate | None,
        label: Any,
        paper_label: str | None,
        is_backbone: bool,
    ) -> "QueryBuilder":
        if node_id in self._nodes:
            raise QueryValidationError(f"duplicate query node id {node_id!r}")
        if predicate is None:
            if paper_label is not None:
                predicate = AttributePredicate.tag_rank(paper_label)
            elif label is not None:
                predicate = AttributePredicate.label(label)
            else:
                predicate = AttributePredicate.wildcard()
        self._nodes[node_id] = QueryNode(node_id, predicate, is_backbone)
        self._children[node_id] = []
        if parent is None:
            if self._root is not None:
                raise QueryValidationError(
                    f"second root {node_id!r}; pass parent= for non-root nodes"
                )
            self._root = node_id
        else:
            if parent not in self._nodes:
                raise QueryValidationError(
                    f"parent {parent!r} of {node_id!r} not yet added"
                )
            self._parent[node_id] = parent
            self._children[parent].append(node_id)
            self._edge_types[node_id] = EdgeType.parse(edge)
        return self

    def backbone(
        self,
        node_id: str,
        *,
        parent: str | None = None,
        edge: EdgeType | str = EdgeType.DESCENDANT,
        predicate: AttributePredicate | None = None,
        label: Any = None,
        paper_label: str | None = None,
    ) -> "QueryBuilder":
        """Add a backbone node.  The first node added becomes the root."""
        return self._add(node_id, parent, edge, predicate, label, paper_label, True)

    def predicate(
        self,
        node_id: str,
        *,
        parent: str | None = None,
        edge: EdgeType | str = EdgeType.DESCENDANT,
        predicate: AttributePredicate | None = None,
        label: Any = None,
        paper_label: str | None = None,
    ) -> "QueryBuilder":
        """Add a predicate (filter) node."""
        if parent is None:
            raise QueryValidationError("a predicate node cannot be the root")
        return self._add(node_id, parent, edge, predicate, label, paper_label, False)

    def structural(self, node_id: str, formula: Formula | str) -> "QueryBuilder":
        """Set ``fs(node_id)``; strings are parsed with the formula parser."""
        if node_id not in self._nodes:
            raise QueryValidationError(f"unknown node {node_id!r}")
        if isinstance(formula, str):
            formula = parse_formula(formula)
        self._structural[node_id] = formula
        return self

    def outputs(self, *node_ids: str) -> "QueryBuilder":
        """Declare the output nodes (result-tuple column order)."""
        self._outputs = list(node_ids)
        return self

    def build(self) -> GTPQ:
        """Validate and produce the immutable :class:`GTPQ`.

        When no structural predicate was given for a node with predicate
        children, those children are conjoined (the conventional TPQ
        reading).  When no outputs were declared, all backbone nodes are
        outputs (the "traditional TPQ" mode of the paper's Section 5).
        """
        if self._root is None:
            raise QueryValidationError("query has no nodes")
        from ..logic import Var, land

        structural = dict(self._structural)
        for node_id, child_ids in self._children.items():
            if node_id in structural:
                continue
            predicate_children = [
                child_id
                for child_id in child_ids
                if not self._nodes[child_id].is_backbone
            ]
            if predicate_children:
                structural[node_id] = land(*(Var(c) for c in predicate_children))
        outputs = self._outputs or [
            node_id for node_id, node in self._nodes.items() if node.is_backbone
        ]
        return GTPQ(
            root=self._root,
            nodes=dict(self._nodes),
            parent=dict(self._parent),
            children=self._children,
            edge_types=dict(self._edge_types),
            structural=structural,
            outputs=outputs,
        )
