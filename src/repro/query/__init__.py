"""GTPQ query model (S4 in DESIGN.md)."""

from .attribute import AttributePredicate
from .builder import QueryBuilder
from .gtpq import GTPQ, EdgeType, QueryNode, QueryValidationError
from .naive import ResultSet, candidate_nodes, downward_match_sets, evaluate_naive
from .serialize import (
    canonical_query_dict,
    predicate_key,
    query_fingerprint,
    query_from_dict,
    query_from_json,
    query_to_dict,
    query_to_json,
    subtree_fingerprint,
    subtree_fingerprints,
)
from .xpath import XPathSyntaxError, parse_xpath_query

__all__ = [
    "AttributePredicate",
    "EdgeType",
    "GTPQ",
    "QueryBuilder",
    "QueryNode",
    "XPathSyntaxError",
    "QueryValidationError",
    "ResultSet",
    "candidate_nodes",
    "downward_match_sets",
    "canonical_query_dict",
    "evaluate_naive",
    "parse_xpath_query",
    "predicate_key",
    "query_fingerprint",
    "query_from_dict",
    "query_from_json",
    "query_to_dict",
    "query_to_json",
    "subtree_fingerprint",
    "subtree_fingerprints",
]
