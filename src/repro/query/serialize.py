"""GTPQ (de)serialization to plain dictionaries / JSON, plus fingerprints.

Workload files in :mod:`repro.datasets` and the examples use this format;
formulas round-trip through the text parser.

Fingerprints (:func:`query_fingerprint`, :func:`predicate_key`) are stable
content hashes used as cache keys by :class:`repro.engine.session.QuerySession`:
two queries that serialize to the same canonical form — regardless of node
insertion order or a round trip through :func:`query_to_dict` /
:func:`query_from_dict` — share one fingerprint.  Output order is part of
the fingerprint (it determines result-tuple column order); sibling order
is not.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..logic import parse_formula
from ..logic.formula import And, Const, Formula, Not, Or, Var
from .attribute import AttributePredicate
from .builder import QueryBuilder
from .gtpq import GTPQ


def query_to_dict(query: GTPQ) -> dict[str, Any]:
    """A JSON-safe description of ``query``."""
    nodes = []
    for node_id in query.depth_first():
        node = query.nodes[node_id]
        entry: dict[str, Any] = {
            "id": node_id,
            "kind": "backbone" if node.is_backbone else "predicate",
            "atoms": [list(atom) for atom in node.predicate.atoms],
        }
        if node_id != query.root:
            entry["parent"] = query.parent[node_id]
            entry["edge"] = query.edge_type(node_id).value
        fs = query.fs(node_id)
        if fs.variables() or fs.is_constant() and not fs.value:  # non-trivial
            entry["fs"] = str(fs)
        nodes.append(entry)
    return {"nodes": nodes, "outputs": list(query.outputs)}


def query_from_dict(data: dict[str, Any]) -> GTPQ:
    """Rebuild a query produced by :func:`query_to_dict`."""
    builder = QueryBuilder()
    deferred_fs: list[tuple[str, str]] = []
    for entry in data["nodes"]:
        predicate = AttributePredicate(tuple(atom) for atom in entry.get("atoms", []))
        kwargs: dict[str, Any] = {"predicate": predicate}
        if "parent" in entry:
            kwargs["parent"] = entry["parent"]
            kwargs["edge"] = entry.get("edge", "ad")
        if entry.get("kind", "backbone") == "backbone":
            builder.backbone(entry["id"], **kwargs)
        else:
            builder.predicate(entry["id"], **kwargs)
        if "fs" in entry:
            deferred_fs.append((entry["id"], entry["fs"]))
    for node_id, text in deferred_fs:
        builder.structural(node_id, parse_formula(text))
    builder.outputs(*data["outputs"])
    return builder.build()


def query_to_json(query: GTPQ, **dumps_kwargs) -> str:
    return json.dumps(query_to_dict(query), **dumps_kwargs)


def query_from_json(text: str) -> GTPQ:
    return query_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Canonicalization and fingerprints
# ----------------------------------------------------------------------
def _canonical_atoms(predicate: AttributePredicate) -> list[list[str]]:
    """Sorted, type-tagged atom list (value 5 and value "5" must differ)."""
    return sorted(
        [attribute, op, type(value).__name__, repr(value)]
        for attribute, op, value in predicate.atoms
    )


def _canonical_formula(formula: Formula, rename: dict[str, str] | None = None) -> str:
    """Order-independent rendering of a structural formula.

    ``And``/``Or`` operands are sorted by their canonical form (the smart
    constructors already flatten and deduplicate them), so conjunctions
    and disjunctions built in different operand orders canonicalize
    identically.  Fingerprinting only — serialization keeps ``str(fs)``.

    ``rename`` substitutes variable names before rendering; the subtree
    fingerprints use it to replace child node ids with content hashes.
    """
    if isinstance(formula, Var):
        return rename.get(formula.name, formula.name) if rename else formula.name
    if isinstance(formula, Const):
        return "1" if formula.value else "0"
    if isinstance(formula, Not):
        return f"!({_canonical_formula(formula.child, rename)})"
    if isinstance(formula, (And, Or)):
        separator = " & " if isinstance(formula, And) else " | "
        return "(" + separator.join(
            sorted(_canonical_formula(child, rename) for child in formula.children)
        ) + ")"
    return str(formula)  # future connectives: fall back to display form


def predicate_key(predicate: AttributePredicate) -> str:
    """Stable cache key of an attribute predicate.

    Two query nodes with the same atom set (in any order) share the key —
    the property the session's candidate-set cache relies on to reuse
    ``mat(u)`` across queries with overlapping node predicates.
    """
    return json.dumps(_canonical_atoms(predicate), separators=(",", ":"))


def canonical_query_dict(query: GTPQ) -> dict[str, Any]:
    """Order-independent description of ``query``.

    Like :func:`query_to_dict`, but nodes are sorted by id and atoms are
    sorted and type-tagged, so structurally identical queries built with
    different sibling insertion orders canonicalize identically.
    """
    nodes = []
    for node_id in sorted(query.nodes):
        node = query.nodes[node_id]
        entry: dict[str, Any] = {
            "id": node_id,
            "kind": "backbone" if node.is_backbone else "predicate",
            "atoms": _canonical_atoms(node.predicate),
        }
        if node_id != query.root:
            entry["parent"] = query.parent[node_id]
            entry["edge"] = query.edge_type(node_id).value
        fs = query.fs(node_id)
        if fs.variables() or fs.is_constant() and not fs.value:  # non-trivial
            entry["fs"] = _canonical_formula(fs)
        nodes.append(entry)
    return {"nodes": nodes, "outputs": list(query.outputs)}


def subtree_fingerprints(query: GTPQ) -> dict[str, str]:
    """Canonical fingerprint of every rooted subtree of ``query``.

    Two subtrees — in the same query or in *different* queries — share a
    fingerprint iff they impose the same downward constraint: the same
    attribute predicate at the root and the same ``fext`` over children
    with matching edge types and (recursively) matching child subtrees.
    Node ids and sibling order do not participate: each child variable of
    ``fext(u)`` is renamed to ``"<edge>:<child fingerprint>"`` before the
    order-independent rendering, so the hash is stable under renaming and
    reordering.

    Equal fingerprints imply equal *downward match sets* over any data
    graph (the valuation of a child variable depends only on its edge
    type and the child's downward match set), which is what lets the
    batch compiler of :mod:`repro.plan.shared` execute one shared prune
    per distinct subtree.  The converse does not hold — semantically
    equivalent but structurally different subtrees may hash apart, which
    costs sharing but never correctness.
    """
    fingerprints: dict[str, str] = {}
    for node_id in query.bottom_up():
        rename = {
            child_id: f"{query.edge_type(child_id).value}:{fingerprints[child_id]}"
            for child_id in query.children[node_id]
        }
        payload = json.dumps(
            [
                _canonical_atoms(query.attribute(node_id)),
                _canonical_formula(query.fext(node_id), rename),
            ],
            separators=(",", ":"),
        )
        fingerprints[node_id] = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return fingerprints


def subtree_fingerprint(query: GTPQ, node_id: str) -> str:
    """The canonical fingerprint of the subtree rooted at ``node_id``."""
    return subtree_fingerprints(query)[node_id]


def query_fingerprint(query: GTPQ) -> str:
    """SHA-256 hex digest of the canonical form of ``query``.

    The session layer keys its plan and result caches on this value; it is
    stable across processes and across :func:`query_to_dict` /
    :func:`query_from_dict` round trips.
    """
    payload = json.dumps(
        canonical_query_dict(query), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
