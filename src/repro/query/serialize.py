"""GTPQ (de)serialization to plain dictionaries / JSON.

Workload files in :mod:`repro.datasets` and the examples use this format;
formulas round-trip through the text parser.
"""

from __future__ import annotations

import json
from typing import Any

from ..logic import parse_formula
from .attribute import AttributePredicate
from .builder import QueryBuilder
from .gtpq import GTPQ


def query_to_dict(query: GTPQ) -> dict[str, Any]:
    """A JSON-safe description of ``query``."""
    nodes = []
    for node_id in query.depth_first():
        node = query.nodes[node_id]
        entry: dict[str, Any] = {
            "id": node_id,
            "kind": "backbone" if node.is_backbone else "predicate",
            "atoms": [list(atom) for atom in node.predicate.atoms],
        }
        if node_id != query.root:
            entry["parent"] = query.parent[node_id]
            entry["edge"] = query.edge_type(node_id).value
        fs = query.fs(node_id)
        if fs.variables() or fs.is_constant() and not fs.value:  # non-trivial
            entry["fs"] = str(fs)
        nodes.append(entry)
    return {"nodes": nodes, "outputs": list(query.outputs)}


def query_from_dict(data: dict[str, Any]) -> GTPQ:
    """Rebuild a query produced by :func:`query_to_dict`."""
    builder = QueryBuilder()
    deferred_fs: list[tuple[str, str]] = []
    for entry in data["nodes"]:
        predicate = AttributePredicate(tuple(atom) for atom in entry.get("atoms", []))
        kwargs: dict[str, Any] = {"predicate": predicate}
        if "parent" in entry:
            kwargs["parent"] = entry["parent"]
            kwargs["edge"] = entry.get("edge", "ad")
        if entry.get("kind", "backbone") == "backbone":
            builder.backbone(entry["id"], **kwargs)
        else:
            builder.predicate(entry["id"], **kwargs)
        if "fs" in entry:
            deferred_fs.append((entry["id"], entry["fs"]))
    for node_id, text in deferred_fs:
        builder.structural(node_id, parse_formula(text))
    builder.outputs(*data["outputs"])
    return builder.build()


def query_to_json(query: GTPQ, **dumps_kwargs) -> str:
    return json.dumps(query_to_dict(query), **dumps_kwargs)


def query_from_json(text: str) -> GTPQ:
    return query_from_dict(json.loads(text))
