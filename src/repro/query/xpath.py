"""An XPath-like surface syntax for GTPQs.

The paper motivates GTPQs from XQuery/XPath practice, where structural
predicates appear as bracketed conditions with ``and`` / ``or`` /
``not()``.  This module compiles a practical subset of that syntax into a
:class:`~repro.query.gtpq.GTPQ`:

* ``/a`` — parent-child step, ``//a`` — ancestor-descendant step;
* ``*`` — wildcard node test, any name — label equality;
* ``[...]`` — structural predicate: a boolean combination (``and``,
  ``or``, ``not(...)``, parentheses) of *relative paths*, each of which
  becomes a predicate subtree;
* ``[@attr op value]`` — attribute comparison atoms, conjoined into the
  step's attribute predicate (``op`` ∈ ``= != < <= > >=``; values are
  numbers or quoted strings);
* the *last* step of the main path is the output node (use
  :func:`parse_xpath_query` ``outputs="spine"`` for all spine nodes).

Examples::

    parse_xpath_query("//open_auction[bidder and not(seller)]/itemref")
    parse_xpath_query("//person[.//education or address/city]")
    parse_xpath_query("//paper[@year >= 2000 and @year <= 2010]")
"""

from __future__ import annotations

import re
from typing import Any

from ..logic import Formula, Var, land, lnot, lor
from .attribute import AttributePredicate
from .gtpq import GTPQ, EdgeType, QueryNode


class XPathSyntaxError(ValueError):
    """Raised on malformed query expressions."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<dslash>//)|(?P<slash>/)|(?P<lbracket>\[)|(?P<rbracket>\])"
    r"|(?P<lparen>\()|(?P<rparen>\))|(?P<dot>\.)"
    r"|(?P<op><=|>=|!=|=|<|>)"
    r"|(?P<at>@)|(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<string>'[^']*'|\"[^\"]*\")"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_.-]*|\*))"
)

_KEYWORDS = {"and", "or", "not"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise XPathSyntaxError(f"unexpected input at {remainder[:20]!r}")
        position = match.end()
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind)))
    return tokens


class _Cursor:
    def __init__(self, tokens: list[tuple[str, str]]):
        self.tokens = tokens
        self.index = 0

    def peek(self, offset: int = 0) -> tuple[str, str] | None:
        position = self.index + offset
        if position < len(self.tokens):
            return self.tokens[position]
        return None

    def take(self, kind: str | None = None) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise XPathSyntaxError("unexpected end of expression")
        if kind is not None and token[0] != kind:
            raise XPathSyntaxError(f"expected {kind}, found {token[1]!r}")
        self.index += 1
        return token

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)


class _Builder:
    """Accumulates GTPQ components while the expression is parsed."""

    def __init__(self):
        self.counter = 0
        self.nodes: dict[str, QueryNode] = {}
        self.parent: dict[str, str] = {}
        self.children: dict[str, list[str]] = {}
        self.edge_types: dict[str, EdgeType] = {}
        self.structural: dict[str, Formula] = {}

    def new_node(
        self,
        label: str,
        atoms: list[tuple[str, str, Any]],
        parent: str | None,
        edge: EdgeType,
        is_backbone: bool,
    ) -> str:
        node_id = f"{label if label != '*' else 'star'}_{self.counter}"
        self.counter += 1
        predicate_atoms = list(atoms)
        if label != "*":
            predicate_atoms.insert(0, ("label", "=", label))
        self.nodes[node_id] = QueryNode(
            node_id, AttributePredicate(predicate_atoms), is_backbone
        )
        self.children[node_id] = []
        if parent is not None:
            self.parent[node_id] = parent
            self.children[parent].append(node_id)
            self.edge_types[node_id] = edge
        return node_id


def parse_xpath_query(text: str, outputs: str = "last") -> GTPQ:
    """Compile an XPath-like expression into a GTPQ.

    Args:
        text: the expression (must start with ``/`` or ``//``).
        outputs: ``"last"`` — only the final spine step is output;
            ``"spine"`` — every main-path step is output.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise XPathSyntaxError("empty expression")
    cursor = _Cursor(tokens)
    builder = _Builder()
    spine = _parse_path(cursor, builder, parent=None, backbone=True)
    if not cursor.at_end():
        raise XPathSyntaxError(
            f"trailing input at {cursor.peek()[1]!r}"  # type: ignore[index]
        )
    if outputs == "last":
        output_ids = [spine[-1]]
    elif outputs == "spine":
        output_ids = list(spine)
    else:
        raise ValueError("outputs must be 'last' or 'spine'")
    return GTPQ(
        root=spine[0],
        nodes=builder.nodes,
        parent=builder.parent,
        children=builder.children,
        edge_types=builder.edge_types,
        structural=builder.structural,
        outputs=output_ids,
    )


def _parse_path(
    cursor: _Cursor, builder: _Builder, parent: str | None, backbone: bool
) -> list[str]:
    """Parse ``("/"|"//") step ...``; returns the chain of node ids."""
    chain: list[str] = []
    while True:
        token = cursor.peek()
        if token is None or token[0] not in ("slash", "dslash"):
            break
        kind, __ = cursor.take()
        edge = EdgeType.CHILD if kind == "slash" else EdgeType.DESCENDANT
        name_token = cursor.take("name")
        label = name_token[1]
        if label in _KEYWORDS:
            raise XPathSyntaxError(f"{label!r} cannot be a node test")
        atoms, predicate_paths = _parse_brackets(cursor, builder)
        node_id = builder.new_node(
            label, atoms,
            parent=chain[-1] if chain else parent,
            edge=edge,
            is_backbone=backbone,
        )
        chain.append(node_id)
        if predicate_paths is not None:
            builder.structural[node_id] = _attach_predicates(
                builder, node_id, predicate_paths
            )
    if not chain:
        raise XPathSyntaxError("expected a '/' or '//' step")
    return chain


def _parse_brackets(cursor: _Cursor, builder: _Builder):
    """Parse zero or more ``[...]`` blocks after a step.

    Returns ``(attribute_atoms, structural_ast_or_None)`` where the
    structural AST is a nested formula over *deferred* relative paths
    (parsed later so predicate nodes attach under the right parent).
    """
    atoms: list[tuple[str, str, Any]] = []
    structure = None
    while cursor.peek() is not None and cursor.peek()[0] == "lbracket":  # type: ignore[index]
        cursor.take("lbracket")
        expr = _parse_pred_or(cursor, atoms)
        cursor.take("rbracket")
        if expr is not None:
            structure = expr if structure is None else ("and", structure, expr)
    return atoms, structure


def _parse_pred_or(cursor: _Cursor, atoms):
    left = _parse_pred_and(cursor, atoms)
    while cursor.peek() is not None and cursor.peek() == ("name", "or"):
        cursor.take()
        right = _parse_pred_and(cursor, atoms)
        left = _combine("or", left, right)
    return left


def _parse_pred_and(cursor: _Cursor, atoms):
    left = _parse_pred_atom(cursor, atoms)
    while cursor.peek() is not None and cursor.peek() == ("name", "and"):
        cursor.take()
        right = _parse_pred_atom(cursor, atoms)
        left = _combine("and", left, right)
    return left


def _combine(op: str, left, right):
    if left is None:
        return right
    if right is None:
        return left
    return (op, left, right)


def _parse_pred_atom(cursor: _Cursor, atoms):
    token = cursor.peek()
    if token is None:
        raise XPathSyntaxError("unexpected end inside predicate")
    kind, value = token
    if kind == "lparen":
        cursor.take()
        inner = _parse_pred_or(cursor, atoms)
        cursor.take("rparen")
        return inner
    if kind == "name" and value == "not":
        cursor.take()
        cursor.take("lparen")
        inner = _parse_pred_or(cursor, atoms)
        cursor.take("rparen")
        if inner is None:
            raise XPathSyntaxError("not() needs a structural operand")
        return ("not", inner)
    if kind == "at":
        cursor.take()
        attr = cursor.take("name")[1]
        op = cursor.take("op")[1]
        atoms.append((attr, op, _parse_value(cursor)))
        return None  # attribute atoms conjoin into fa, not fs
    if kind == "dot":
        # ".//name" relative path.
        cursor.take()
        return ("path", _collect_relative_path(cursor))
    if kind in ("slash", "dslash") or kind == "name":
        return ("path", _collect_relative_path(cursor))
    raise XPathSyntaxError(f"unexpected token {value!r} in predicate")


def _parse_value(cursor: _Cursor) -> Any:
    kind, value = cursor.take()
    if kind == "number":
        return float(value) if "." in value else int(value)
    if kind == "string":
        return value[1:-1]
    if kind == "name":
        return value
    raise XPathSyntaxError(f"expected a comparison value, found {value!r}")


def _collect_relative_path(cursor: _Cursor) -> list[tuple[EdgeType, str, list, Any]]:
    """Collect a relative path's steps as raw data (attached later)."""
    steps = []
    first = True
    while True:
        token = cursor.peek()
        if token is None:
            break
        kind, __ = token
        if kind in ("slash", "dslash"):
            cursor.take()
            edge = EdgeType.CHILD if kind == "slash" else EdgeType.DESCENDANT
        elif first and kind == "name" and token[1] not in _KEYWORDS:
            # A bare name step like "bidder" means "/bidder"... XPath's
            # child axis is the default.
            edge = EdgeType.CHILD
        else:
            break
        name = cursor.take("name")[1]
        if name in _KEYWORDS:
            raise XPathSyntaxError(f"{name!r} cannot be a node test")
        atoms: list = []
        # Nested brackets inside relative paths: attribute atoms only.
        while cursor.peek() is not None and cursor.peek()[0] == "lbracket":  # type: ignore[index]
            cursor.take("lbracket")
            inner_token = cursor.peek()
            if inner_token is None or inner_token[0] != "at":
                raise XPathSyntaxError(
                    "nested structural predicates inside relative paths are "
                    "not supported; lift them with and/or at the step level"
                )
            cursor.take("at")
            attr = cursor.take("name")[1]
            op = cursor.take("op")[1]
            atoms.append((attr, op, _parse_value(cursor)))
            cursor.take("rbracket")
        steps.append((edge, name, atoms))
        first = False
    if not steps:
        raise XPathSyntaxError("empty relative path in predicate")
    return steps


def _attach_predicates(builder: _Builder, anchor: str, ast) -> Formula:
    """Materialize the predicate AST: create predicate subtrees, build fs."""
    if isinstance(ast, tuple) and ast[0] == "path":
        steps = ast[1]
        parent = anchor
        first_id: str | None = None
        for position, (edge, name, atoms) in enumerate(steps):
            node_id = builder.new_node(
                name, atoms, parent=parent, edge=edge, is_backbone=False
            )
            if position == 0:
                first_id = node_id
            parent = node_id
        assert first_id is not None
        return Var(first_id)
    if isinstance(ast, tuple) and ast[0] == "not":
        return lnot(_attach_predicates(builder, anchor, ast[1]))
    if isinstance(ast, tuple) and ast[0] == "and":
        return land(
            _attach_predicates(builder, anchor, ast[1]),
            _attach_predicates(builder, anchor, ast[2]),
        )
    if isinstance(ast, tuple) and ast[0] == "or":
        return lor(
            _attach_predicates(builder, anchor, ast[1]),
            _attach_predicates(builder, anchor, ast[2]),
        )
    raise XPathSyntaxError(f"malformed predicate structure: {ast!r}")
