"""Reference (naive) GTPQ evaluator — the semantics oracle.

A direct transcription of the paper's Section 2 semantics with no index
structures and no pruning: downward matching by memoized recursion over
full descendant sets, then exhaustive enumeration of backbone matches.
Exponential in the worst case; used to validate GTEA and every baseline on
small inputs, and as the "ground truth" in property-based tests.
"""

from __future__ import annotations

from itertools import product

from ..graph.digraph import DataGraph
from ..graph.traversal import descendants
from ..logic import evaluate
from .gtpq import GTPQ, EdgeType

#: A query answer: a set of tuples aligned with ``query.outputs``.
ResultSet = set[tuple[int, ...]]


def candidate_nodes(graph: DataGraph, query: GTPQ, node_id: str) -> list[int]:
    """``mat(u)``: data nodes satisfying the attribute predicate of ``u``.

    Uses the graph's label index when the predicate pins ``label``;
    otherwise scans all nodes.
    """
    predicate = query.attribute(node_id)
    pinned_label = next(
        (constant for attribute, op, constant in predicate.atoms
         if attribute == "label" and op == "="),
        None,
    )
    if pinned_label is not None:
        pool = graph.nodes_with_label(pinned_label)
    else:
        pool = graph.nodes()
    return [node for node in pool if predicate.matches(graph.attrs(node))]


def downward_match_sets(graph: DataGraph, query: GTPQ) -> dict[str, set[int]]:
    """For every query node ``u``, the set ``{v : v |= u}``.

    Computed bottom-up: a data node downwardly matches ``u`` iff it matches
    ``fa(u)`` and the valuation of its children variables (derived from PC
    children / AD strict descendants) satisfies ``fext(u)``.
    """
    down: dict[str, set[int]] = {}
    descendant_cache: dict[int, set[int]] = {}

    def strict_descendants(node: int) -> set[int]:
        if node not in descendant_cache:
            descendant_cache[node] = descendants(graph, node)
        return descendant_cache[node]

    for node_id in query.bottom_up():
        matches: set[int] = set()
        child_ids = query.children[node_id]
        fext = query.fext(node_id)
        for data_node in candidate_nodes(graph, query, node_id):
            valuation: dict[str, bool] = {}
            for child_id in child_ids:
                if query.edge_type(child_id) is EdgeType.CHILD:
                    related = graph.successors(data_node)
                else:
                    related = strict_descendants(data_node)
                valuation[child_id] = any(v in down[child_id] for v in related)
            if evaluate(fext, valuation, default=False):
                matches.add(data_node)
        down[node_id] = matches
    return down


def evaluate_naive(query: GTPQ, graph: DataGraph) -> ResultSet:
    """The answer ``Q(G)`` as a set of output tuples.

    A *match* maps every backbone node to a data node so that each image
    downwardly matches its query node and every backbone edge is satisfied;
    the answer projects matches onto the output nodes (Section 2).
    """
    down = downward_match_sets(graph, query)
    backbone_children: dict[str, list[str]] = {
        node_id: [c for c in query.children[node_id] if query.nodes[c].is_backbone]
        for node_id in query.nodes
    }
    descendant_cache: dict[int, set[int]] = {}

    def strict_descendants(node: int) -> set[int]:
        if node not in descendant_cache:
            descendant_cache[node] = descendants(graph, node)
        return descendant_cache[node]

    def assignments(node_id: str, data_node: int) -> list[dict[str, int]]:
        """All backbone-subtree matches rooted at ``node_id -> data_node``."""
        partials: list[dict[str, int]] = [{node_id: data_node}]
        per_child: list[list[dict[str, int]]] = []
        for child_id in backbone_children[node_id]:
            if query.edge_type(child_id) is EdgeType.CHILD:
                related = graph.successors(data_node)
            else:
                related = strict_descendants(data_node)
            child_results: list[dict[str, int]] = []
            for candidate in related:
                if candidate in down[child_id]:
                    child_results.extend(assignments(child_id, candidate))
            if not child_results:
                return []
            per_child.append(child_results)
        out: list[dict[str, int]] = []
        for combination in product(*per_child):
            merged = dict(partials[0])
            for piece in combination:
                merged.update(piece)
            out.append(merged)
        return out

    results: ResultSet = set()
    for root_image in down[query.root]:
        for match in assignments(query.root, root_image):
            results.add(tuple(match[node_id] for node_id in query.outputs))
    return results
