"""repro — reproduction of "Adding Logical Operators to Tree Pattern
Queries on Graph-Structured Data" (Zeng, Jiang, Zhuge; VLDB 2012).

The package implements the paper's full stack:

* :mod:`repro.query` — GTPQs: tree patterns over graphs whose structural
  predicates are arbitrary AND/OR/NOT formulas;
* :mod:`repro.engine` — GTEA, the contour-pruning + matching-graph
  evaluation algorithm (the paper's core contribution);
* :mod:`repro.analysis` — satisfiability, containment/equivalence and
  minimization decision procedures;
* :mod:`repro.plan` — the query compiler: normalize (simplify /
  satisfiability / minimization) → logical plan → cost-based physical
  plan, with ``explain()`` at every stage;
* :mod:`repro.reachability` — 3-hop and the other reachability indexes;
* :mod:`repro.baselines` — TwigStack, Twig2Stack, TwigStackD, HGJoin;
* :mod:`repro.datasets` — XMark-like / arXiv-like / DBLP-like generators
  and the paper's query workloads.

Quickstart::

    from repro import DataGraph, GTEA, QueryBuilder

    graph = DataGraph.from_edges("abc", [(0, 1), (1, 2)])
    query = (
        QueryBuilder()
        .backbone("x", label="a")
        .predicate("p", parent="x", label="b")
        .predicate("q", parent="x", label="c")
        .structural("x", "p & !q")
        .outputs("x")
        .build()
    )
    answer = GTEA(graph).evaluate(query)
"""

from .analysis import (
    are_equivalent,
    is_contained,
    is_query_satisfiable,
    minimize_query,
)
from .engine import GTEA, QuerySession, evaluate_gtea
from .graph import DataGraph
from .plan import CompiledPlan, compile_query
from .query import (
    AttributePredicate,
    EdgeType,
    GTPQ,
    QueryBuilder,
    evaluate_naive,
)
from .reachability import build_reachability

__version__ = "1.0.0"

__all__ = [
    "AttributePredicate",
    "CompiledPlan",
    "DataGraph",
    "EdgeType",
    "GTEA",
    "GTPQ",
    "QueryBuilder",
    "QuerySession",
    "are_equivalent",
    "build_reachability",
    "compile_query",
    "evaluate_gtea",
    "evaluate_naive",
    "is_contained",
    "is_query_satisfiable",
    "minimize_query",
]
