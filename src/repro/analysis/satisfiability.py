"""GTPQ satisfiability (paper Theorems 1 and 2).

Theorem 1: a GTPQ (with unsatisfiable-attribute and non-independent nodes
removed) is satisfiable iff ``fa(root)`` and ``fcs(root)`` are both
satisfiable.  Theorem 2: linear time for union-conjunctive queries,
NP-complete in general — reflected here as a monotone fast path plus the
SAT-based general procedure.
"""

from __future__ import annotations

from ..logic import evaluate, is_satisfiable, simplify, substitute
from ..query.gtpq import GTPQ
from .structure import QueryAnalysis


def normalize_query(query: GTPQ) -> GTPQ:
    """Remove unsatisfiable-attribute subtrees and non-independent nodes.

    Their variables are assigned 0 in the parents' structural predicates
    (minGTPQ lines 1–2).  Iterates to a fixpoint: hardwiring a variable can
    render further nodes non-independent.  Preserves query equivalence.
    """
    current = query
    while True:
        drop: set[str] = set()
        for node_id in current.nodes:
            if node_id == current.root:
                continue
            if not current.attribute(node_id).is_satisfiable():
                drop.add(node_id)
        analysis = QueryAnalysis(current)
        for node_id in current.nodes:
            if node_id == current.root or current.nodes[node_id].is_backbone:
                # Backbone nodes are never removed here: their images are
                # required in matches; unsatisfiability surfaces via fcs.
                continue
            if node_id not in analysis.independent_nodes:
                drop.add(node_id)
        # Keep only the shallowest dropped nodes (subtrees go with them).
        roots_of_drop = {
            node_id
            for node_id in drop
            if not any(a in drop for a in current.ancestors(node_id))
        }
        if not roots_of_drop:
            return current
        overrides = {}
        for node_id in roots_of_drop:
            parent_id = current.parent[node_id]
            base = overrides.get(parent_id, current.fs(parent_id))
            overrides[parent_id] = simplify(substitute(base, {node_id: False}))
        current = current.copy(drop=roots_of_drop, structural_override=overrides)


def is_query_satisfiable(query: GTPQ) -> bool:
    """Theorem 1 decision procedure."""
    if not query.attribute(query.root).is_satisfiable():
        return False
    # Fast path (Theorem 2.1): monotone predicates, linear check.
    if query.is_union_conjunctive():
        return _union_conjunctive_satisfiable(query)
    normalized = normalize_query(query)
    analysis = QueryAnalysis(normalized)
    return is_satisfiable(analysis.fcs(normalized.root))


def _union_conjunctive_satisfiable(query: GTPQ) -> bool:
    """Linear-time check for negation-free queries (Theorem 2.1).

    Monotonicity: a node is matchable iff its attribute predicate is
    satisfiable and its extended predicate evaluates true under the *best*
    child valuation (child variable true iff the child is matchable).
    """
    matchable: dict[str, bool] = {}
    for node_id in query.bottom_up():
        if not query.attribute(node_id).is_satisfiable():
            matchable[node_id] = False
            continue
        valuation = {
            child_id: matchable[child_id] for child_id in query.children[node_id]
        }
        matchable[node_id] = evaluate(query.fext(node_id), valuation, default=False)
    return matchable[query.root]
