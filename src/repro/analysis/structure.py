"""Structural analysis of GTPQs (paper Section 3.1).

Implements the derived predicates the decision procedures are built from:

* **independently-constraint nodes** — nodes whose variable can actually
  influence their parent's (extended) structural predicate, recursively;
* **transitive structural predicate** ``ftr(u)`` — ``fext(u)`` with every
  independent child variable ``p_c`` replaced by ``p_c ∧ ftr(c)``;
* **similarity** ``u1 ⊳ u2`` and **subsumption** ``u1 ⊴ u2``;
* **complete structural predicate** ``fcs(u)`` — ``ftr(u)`` adjusted for
  unsatisfiable attribute predicates and cross-subtree subsumption.

Two readings documented in DESIGN.md:

* the independence XOR test is evaluated on ``fext(parent)`` (the paper
  prints ``fs``, under which backbone nodes could never be independent);
* ``ftr`` substitutes into ``fext(u)`` — this is what the paper's own
  Example 4 computes ("replacing ... in fext(u3)").
"""

from __future__ import annotations

from itertools import product

from ..logic import (
    Formula,
    Var,
    is_satisfiable,
    is_tautology,
    land,
    lnot,
    lor,
    lxor,
    rename,
    simplify,
    substitute,
)
from ..query.gtpq import GTPQ, EdgeType


class QueryAnalysis:
    """Cached structural analysis of one query.

    All derived predicates are computed lazily and memoized; the underlying
    query must not be mutated (GTPQs are treated as immutable throughout).
    """

    def __init__(self, query: GTPQ):
        self.query = query
        self._independent: set[str] | None = None
        self._ftr: dict[str, Formula] = {}
        self._similar: dict[tuple[str, str], bool] = {}
        self._heights: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # Independently-constraint nodes
    # ------------------------------------------------------------------
    @property
    def independent_nodes(self) -> set[str]:
        """Nodes whose variables can independently affect their ancestors.

        The root is independent iff its own structural predicate is
        satisfiable; a non-root ``u`` with parent ``w`` is independent iff
        ``w`` is and ``(fext(w)[p_u/1] XOR fext(w)[p_u/0]) AND fs(u)`` is
        satisfiable.
        """
        if self._independent is None:
            query = self.query
            independent: set[str] = set()
            for node_id in query.depth_first():  # parents before children
                if node_id == query.root:
                    if is_satisfiable(query.fs(node_id)):
                        independent.add(node_id)
                    continue
                parent_id = query.parent[node_id]
                if parent_id not in independent:
                    continue
                parent_fext = query.fext(parent_id)
                flip = lxor(
                    substitute(parent_fext, {node_id: True}),
                    substitute(parent_fext, {node_id: False}),
                )
                if is_satisfiable(land(flip, query.fs(node_id))):
                    independent.add(node_id)
            self._independent = independent
        return self._independent

    # ------------------------------------------------------------------
    # Transitive structural predicates
    # ------------------------------------------------------------------
    def ftr(self, node_id: str) -> Formula:
        """``ftr(u)``: the subtree's structural constraints, flattened."""
        if node_id in self._ftr:
            return self._ftr[node_id]
        query = self.query
        independent = self.independent_nodes
        if query.is_leaf(node_id) or node_id not in independent:
            result = query.fext(node_id)
        else:
            bindings: dict[str, Formula] = {}
            for child_id in query.children[node_id]:
                if child_id in independent:
                    bindings[child_id] = land(Var(child_id), self.ftr(child_id))
            result = simplify(substitute(query.fext(node_id), bindings))
        self._ftr[node_id] = result
        return result

    # ------------------------------------------------------------------
    # Similarity and subsumption
    # ------------------------------------------------------------------
    def _height(self, node_id: str) -> int:
        if self._heights is None:
            heights: dict[str, int] = {}
            for nid in self.query.bottom_up():
                children = self.query.children[nid]
                heights[nid] = 1 + max((heights[c] for c in children), default=-1)
            self._heights = heights
        return self._heights[node_id]

    def similar(self, u1: str, u2: str) -> bool:
        """``u1 ⊳ u2`` — "u2 is similar to u1" (u2 at least as constrained).

        Conditions (Section 3.1): attribute subsumption ``u2 ⊢ u1``;
        recursive embedding of u1's independent children into u2's subtree
        (PC children to PC children, AD children to any descendant); and
        ``ftr(u2) -> ftr(u1)[renamed]`` a tautology, with variables of u1's
        descendants renamed along the subsumption mapping.
        """
        if u1 == u2:
            return True
        key = (u1, u2)
        if key in self._similar:
            return self._similar[key]
        # Guard against pathological recursion; pairs are computed on
        # demand, deeper (smaller-height) pairs resolve first.
        self._similar[key] = False
        result = self._similar_uncached(u1, u2)
        self._similar[key] = result
        return result

    def _similar_uncached(self, u1: str, u2: str) -> bool:
        query = self.query
        if not query.attribute(u2).subsumes(query.attribute(u1)):
            return False
        independent = self.independent_nodes
        u2_descendants = [n for n in query.subtree_nodes(u2) if n != u2]
        for child in query.children[u1]:
            if child not in independent:
                continue
            if query.edge_type(child) is EdgeType.CHILD:
                candidates = [
                    c for c in query.children[u2]
                    if query.edge_type(c) is EdgeType.CHILD and self.similar(child, c)
                ]
            else:
                candidates = [d for d in u2_descendants if self.similar(child, d)]
            if not candidates:
                return False
        return self._ftr_implication(u1, u2)

    def _ftr_implication(self, u1: str, u2: str) -> bool:
        """``ftr(u2) -> ftr(u1)[u1 |-> u2]`` for some subsumption renaming."""
        query = self.query
        ftr_u1 = self.ftr(u1)
        ftr_u2 = self.ftr(u2)
        u1_descendants = [n for n in query.subtree_nodes(u1) if n != u1]
        u2_descendants = [n for n in query.subtree_nodes(u2) if n != u2]
        relevant = [d for d in u1_descendants if d in ftr_u1.variables()]
        choices: list[list[str | None]] = []
        for descendant in relevant:
            # The renaming follows the recursive similarity embedding: the
            # paper's Example 4 renames u4 -> u7 inside the u2 ⊳ u6 check
            # even though the top-level ⊴ lca-condition fails for the pair.
            options: list[str | None] = [
                d2 for d2 in u2_descendants if self.similar(descendant, d2)
            ]
            if not options:
                options = [None]  # keep the original variable name
            choices.append(options)
        total = 1
        for options in choices:
            total *= len(options)
        if total > 256:
            # Cap the search; fall back to first-choice greedy (documented
            # heuristic — paper leaves the renaming choice unspecified).
            choices = [options[:1] for options in choices]
        for combination in product(*choices):
            mapping = {
                old: new
                for old, new in zip(relevant, combination)
                if new is not None
            }
            renamed = rename(ftr_u1, mapping)
            if is_tautology(lor(lnot(ftr_u2), renamed)):
                return True
        return is_tautology(lor(lnot(ftr_u2), ftr_u1)) if not relevant else False

    def subsumed(self, u1: str, u2: str) -> bool:
        """``u1 ⊴ u2`` — u1 is subsumed by u2 (Section 3.1).

        Requires ``u1 ⊳ u2``, the parent of u1 to be the lowest common
        ancestor of the pair, and position compatibility: a PC child u1
        demands u2 to be a PC child of the same parent, an AD child just
        demands u2 below the lca.
        """
        query = self.query
        if u1 == u2 or u1 == query.root or u2 == query.root:
            return False
        lca = self.lowest_common_ancestor(u1, u2)
        if query.parent[u1] != lca:
            return False
        if query.edge_type(u1) is EdgeType.CHILD:
            if not (query.parent.get(u2) == lca and query.edge_type(u2) is EdgeType.CHILD):
                return False
        if not self.similar(u1, u2):
            return False
        return True

    def lowest_common_ancestor(self, u1: str, u2: str) -> str:
        path1 = self.query.path_to_root(u1)
        path2 = set(self.query.path_to_root(u2))
        for node_id in path1:
            if node_id in path2:
                return node_id
        raise AssertionError("tree nodes always share the root")  # pragma: no cover

    def subsumption_pairs(self) -> list[tuple[str, str]]:
        """All pairs ``(a, b)`` with ``a ⊴ b`` and divergent subtrees."""
        query = self.query
        pairs: list[tuple[str, str]] = []
        node_ids = list(query.nodes)
        for a in node_ids:
            if a == query.root:
                continue
            for b in node_ids:
                if a == b or b == query.root:
                    continue
                lca = self.lowest_common_ancestor(a, b)
                if lca in (a, b):
                    continue  # same path, not distinct subtrees
                if self.subsumed(a, b):
                    pairs.append((a, b))
        return pairs

    # ------------------------------------------------------------------
    # Complete structural predicates
    # ------------------------------------------------------------------
    def fcs(self, node_id: str) -> Formula:
        """``fcs(u)``: ``ftr(u)`` adjusted by the two operations of Sec 3.1.

        (1) variables of descendants with unsatisfiable attribute
        predicates are forced to 0; (2) for every subsumption pair
        ``a ⊴ b`` diverging inside u's subtree, conjoin
        ``!p_b | (p_a & fext(a))``.
        """
        query = self.query
        result = self.ftr(node_id)
        subtree = set(query.subtree_nodes(node_id))
        unsat = {
            d: False
            for d in subtree
            if d != node_id and not query.attribute(d).is_satisfiable()
        }
        if unsat:
            result = substitute(result, unsat)
        # "Two distinct subtrees of u": the pair diverges exactly at u (its
        # lca is u).  Pairs diverging deeper belong to the fcs of the
        # deeper node — this scoping reproduces the paper's Example 4
        # formulas, and deeper pairs' clauses are semantically valid
        # implications that cannot change satisfiability.
        for a, b in self.subsumption_pairs():
            if a in subtree and b in subtree:
                if self.lowest_common_ancestor(a, b) == node_id:
                    clause = lor(lnot(Var(b)), land(Var(a), query.fext(a)))
                    result = land(result, clause)
        return simplify(result)
