"""Containment and equivalence of GTPQs (paper Theorem 3).

``Q1 ⊑ Q2`` iff there is a *homomorphism* from Q2 to Q1: a mapping of Q2's
independent nodes onto Q1's nodes (non-independent nodes map to ⊥) that
respects output correspondence, attribute subsumption, child embedding,
and whose induced variable renaming makes
``fcs(Q1.root) -> fcs(Q2.root)[renamed]`` a tautology.

The search is a straightforward backtracking over candidate images — the
problem is co-NP-hard (Theorem 4), and queries are small.
"""

from __future__ import annotations

from ..logic import is_tautology, lnot, lor, rename
from ..query.gtpq import GTPQ, EdgeType
from .satisfiability import normalize_query
from .structure import QueryAnalysis


def find_homomorphism(source: GTPQ, target: GTPQ) -> dict[str, str] | None:
    """A homomorphism from ``source`` onto ``target``, or ``None``.

    The returned mapping covers the independent nodes of ``source``
    (non-independent nodes are implicitly ⊥).
    """
    source = normalize_query(source)
    target = normalize_query(target)
    if len(source.outputs) != len(target.outputs):
        return None
    source_analysis = QueryAnalysis(source)
    target_analysis = QueryAnalysis(target)
    independent = [
        node_id
        for node_id in source.depth_first()  # parents first
        if node_id in source_analysis.independent_nodes
    ]
    if source.root not in source_analysis.independent_nodes:
        return None

    # Output correspondence is positional: result tuples must align.
    pinned = dict(zip(source.outputs, target.outputs))
    target_nodes = list(target.nodes)
    target_descendants = {
        node_id: set(target.subtree_nodes(node_id)) - {node_id}
        for node_id in target.nodes
    }

    def candidates(node_id: str, image_of: dict[str, str]) -> list[str]:
        if node_id in pinned:
            pool = [pinned[node_id]]
        else:
            pool = target_nodes
        parent_id = source.parent.get(node_id)
        out = []
        for candidate in pool:
            if not target.attribute(candidate).subsumes(source.attribute(node_id)):
                continue
            if parent_id is not None and parent_id in image_of:
                parent_image = image_of[parent_id]
                if source.edge_type(node_id) is EdgeType.CHILD:
                    if not (
                        target.parent.get(candidate) == parent_image
                        and target.edge_type(candidate) is EdgeType.CHILD
                    ):
                        continue
                elif candidate not in target_descendants[parent_image]:
                    continue
            out.append(candidate)
        return out

    def search(position: int, image_of: dict[str, str]) -> dict[str, str] | None:
        if position == len(independent):
            renamed = rename(source_analysis.fcs(source.root), image_of)
            implication = lor(lnot(target_analysis.fcs(target.root)), renamed)
            if is_tautology(implication):
                return dict(image_of)
            return None
        node_id = independent[position]
        for candidate in candidates(node_id, image_of):
            image_of[node_id] = candidate
            found = search(position + 1, image_of)
            if found is not None:
                return found
            del image_of[node_id]
        return None

    return search(0, {})


def is_contained(q1: GTPQ, q2: GTPQ) -> bool:
    """``Q1 ⊑ Q2``: every answer of Q1 on any graph is an answer of Q2."""
    return find_homomorphism(q2, q1) is not None


def are_equivalent(q1: GTPQ, q2: GTPQ) -> bool:
    """``Q1 ≡ Q2``: containment in both directions."""
    return is_contained(q1, q2) and is_contained(q2, q1)


def are_isomorphic(q1: GTPQ, q2: GTPQ) -> bool:
    """Equivalence witnessed by bijective homomorphisms (Proposition 5)."""
    forward = find_homomorphism(q2, q1)
    backward = find_homomorphism(q1, q2)
    if forward is None or backward is None:
        return False
    return (
        len(set(forward.values())) == len(forward)
        and len(set(backward.values())) == len(backward)
        and len(forward) == len(backward)
    )
