"""GTPQ minimization — Algorithm 1 (minGTPQ) of the paper.

Produces an equivalent query of minimal size.  NP-hard in general
(Theorem 6); every hard step is a SAT/tautology call on query-sized
formulas, which the paper argues (Section 3.3) is acceptable because
queries are small.

Steps (paper numbering):

1. remove subtrees with unsatisfiable attribute predicates (vars → 0);
2. remove non-independently-constraint nodes (vars → 0) — both handled by
   :func:`repro.analysis.satisfiability.normalize_query`;
3. compute complete structural predicates bottom-up;
4. remove subtrees whose ``fcs`` is unsatisfiable (vars → 0);
5. for nodes ``u`` guaranteed present (``fcs(root) -> p_u`` a tautology),
   hardwire and remove every subtree ``u' ⊴ u`` (vars → 1), relocating
   output nodes into isomorphic counterparts inside u's subtree;
6. for nodes ``u`` guaranteed absent (``fcs(root) -> !p_u``), remove every
   subtree ``u'`` with ``u ⊴ u'`` (vars → 0).
"""

from __future__ import annotations

from ..logic import Var, implies, is_tautology, simplify, substitute
from ..query.gtpq import GTPQ, EdgeType
from .satisfiability import normalize_query
from .structure import QueryAnalysis


def minimize_query(query: GTPQ) -> GTPQ:
    """Return a minimum equivalent GTPQ (Algorithm 1)."""
    # All passes iterate to a joint fixpoint: removing one subtree can
    # expose fresh non-independence or redundancy elsewhere.
    current = query
    while True:
        size_before = current.size
        current = normalize_query(current)          # steps 1-2
        current = _drop_unsat_subtrees(current)     # steps 4-7
        current = _eliminate_subsumed(current)      # steps 8-19
        if current.size == size_before:
            return current


def _drop_unsat_subtrees(query: GTPQ) -> GTPQ:
    analysis = QueryAnalysis(query)
    drop: list[str] = []
    overrides: dict[str, object] = {}
    for node_id in query.bottom_up():
        if node_id == query.root or query.nodes[node_id].is_backbone:
            continue
        if any(a in drop for a in query.ancestors(node_id)):
            continue
        from ..logic import is_satisfiable

        if not is_satisfiable(analysis.fcs(node_id)):
            drop.append(node_id)
            parent_id = query.parent[node_id]
            base = overrides.get(parent_id, query.fs(parent_id))
            overrides[parent_id] = simplify(substitute(base, {node_id: False}))
    if not drop:
        return query
    return query.copy(drop=drop, structural_override=overrides)  # type: ignore[arg-type]


def _eliminate_subsumed(query: GTPQ) -> GTPQ:
    """One round of Algorithm 1 lines 8–19; returns ``query`` if no change."""
    analysis = QueryAnalysis(query)
    fcs_root = analysis.fcs(query.root)
    pairs = analysis.subsumption_pairs()
    for node_id in query.nodes:
        if node_id == query.root:
            continue
        if is_tautology(implies(fcs_root, Var(node_id))):
            # u is present in every certificate: subsumed peers u' ⊴ u are
            # redundant — hardwire their variables to 1 and drop them.
            for subsumed_id, subsumer_id in pairs:
                if subsumer_id != node_id or subsumed_id == node_id:
                    continue
                replacement = _drop_hardwired(
                    query, analysis, subsumed_id, subsumer_id, value=True
                )
                if replacement is not None:
                    return replacement
        elif is_tautology(implies(fcs_root, ~Var(node_id))):
            # u never embeds; any u' that subsumes u (u ⊴ u') cannot embed
            # either (its embedding would force one of u).
            for subsumed_id, subsumer_id in pairs:
                if subsumed_id != node_id:
                    continue
                replacement = _drop_hardwired(
                    query, analysis, subsumer_id, None, value=False
                )
                if replacement is not None:
                    return replacement
    return query


def _drop_hardwired(
    query: GTPQ,
    analysis: QueryAnalysis,
    victim: str,
    keeper: str | None,
    value: bool,
) -> GTPQ | None:
    """Drop ``victim``'s subtree, assigning its variable to ``value``.

    When the subtree contains output nodes they are relocated into
    ``keeper``'s subtree (Algorithm 1 lines 12–15); if no isomorphic
    counterpart exists the removal is vetoed (returns None).
    """
    if victim == query.root:
        return None
    subtree = set(query.subtree_nodes(victim))
    relocation: dict[str, str] = {}
    if keeper is not None:
        keeper_subtree = query.subtree_nodes(keeper)
        for output in query.outputs:
            if output not in subtree:
                continue
            taken = set(relocation.values()) | set(query.outputs)
            counterpart = next(
                (
                    candidate
                    for candidate in keeper_subtree
                    if query.nodes[candidate].is_backbone
                    and candidate not in taken
                    and analysis.similar(output, candidate)
                    and _subtree_shapes_match(query, output, candidate)
                ),
                None,
            )
            if counterpart is None:
                return None
            relocation[output] = counterpart
    elif any(output in subtree for output in query.outputs):
        return None  # cannot drop outputs without a relocation target

    parent_id = query.parent[victim]
    new_fs = simplify(substitute(query.fs(parent_id), {victim: value}))
    new_outputs = [relocation.get(output, output) for output in query.outputs]
    candidate = query.copy(
        drop=[victim],
        structural_override={parent_id: new_fs},
        outputs_override=new_outputs,
    )
    # Soundness guard (documented deviation from Algorithm 1 as printed):
    # hardwiring p_{u'} is only valid when the *remaining* query still
    # forces u's embedding.  Verify each removal with the Theorem-3
    # equivalence procedure — subsumption remains the search heuristic,
    # the homomorphism check is the correctness gate.
    from .containment import are_equivalent

    if not are_equivalent(query, candidate):
        return None
    return candidate


def _subtree_shapes_match(query: GTPQ, left: str, right: str) -> bool:
    """Isomorphism of the two subtree patterns (shape + edge types)."""

    def shape(node_id: str):
        children = sorted(
            (query.edge_type(c).value, shape(c)) for c in query.children[node_id]
        )
        return tuple(children)

    left_edge = query.edge_types.get(left, EdgeType.DESCENDANT)
    right_edge = query.edge_types.get(right, EdgeType.DESCENDANT)
    if left_edge != right_edge:
        return False
    return shape(left) == shape(right)
