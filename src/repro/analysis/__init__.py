"""Query analysis (S5 in DESIGN.md): Section 3's decision procedures."""

from .containment import (
    are_equivalent,
    are_isomorphic,
    find_homomorphism,
    is_contained,
)
from .minimization import minimize_query
from .satisfiability import is_query_satisfiable, normalize_query
from .structure import QueryAnalysis

__all__ = [
    "QueryAnalysis",
    "are_equivalent",
    "are_isomorphic",
    "find_homomorphism",
    "is_contained",
    "is_query_satisfiable",
    "minimize_query",
    "normalize_query",
]
