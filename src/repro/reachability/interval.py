"""Interval (region) encoding for tree/forest data.

The classical labeling behind holistic twig joins (Bruno et al. [3]): each
tree node gets ``(start, end, level)`` from a DFS numbering; ``u`` is an
ancestor of ``v`` iff ``start(u) < start(v) <= end(u)``, and a parent iff
additionally ``level(v) = level(u) + 1``.

The paper's Related Work stresses that this scheme (and the stack encoding
built on it) *only works on trees* — that limitation is why TwigStack and
Twig2Stack must decompose graph data into trees (Section 5.1).  We use it
for exactly that purpose in :mod:`repro.baselines`.
"""

from __future__ import annotations

from ..graph.digraph import DataGraph


class IntervalLabeling:
    """DFS region encoding of a forest.

    Raises ``ValueError`` when the input graph is not a forest (a node with
    two parents or a cycle).
    """

    __slots__ = ("start", "end", "level", "_order")

    def __init__(self, graph: DataGraph):
        for node in graph.nodes():
            if graph.in_degree(node) > 1:
                raise ValueError(
                    f"node {node} has {graph.in_degree(node)} parents; "
                    "interval labeling requires a forest"
                )
        n = graph.num_nodes
        self.start = [0] * n
        self.end = [0] * n
        self.level = [0] * n
        counter = 0
        visited = [False] * n
        for root in graph.roots():
            # Iterative DFS; frames are (node, phase) with phase 0 = enter.
            stack: list[tuple[int, int]] = [(root, 0)]
            while stack:
                node, phase = stack.pop()
                if phase == 0:
                    if visited[node]:
                        raise ValueError("graph contains a cycle")
                    visited[node] = True
                    counter += 1
                    self.start[node] = counter
                    stack.append((node, 1))
                    for child in reversed(graph.successors(node)):
                        self.level[child] = self.level[node] + 1
                        stack.append((child, 0))
                else:
                    self.end[node] = counter
        if not all(visited):
            raise ValueError("graph contains a cycle unreachable from any root")
        self._order = sorted(graph.nodes(), key=lambda node: self.start[node])

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """Strict ancestorship (``ancestor != descendant``)."""
        return self.start[ancestor] < self.start[descendant] <= self.end[ancestor]

    def is_parent(self, parent: int, child: int) -> bool:
        return self.is_ancestor(parent, child) and self.level[child] == self.level[parent] + 1

    def document_order(self) -> list[int]:
        """Nodes sorted by ``start`` — the stream order of twig joins."""
        return self._order

    def sort_by_start(self, nodes: list[int]) -> list[int]:
        return sorted(nodes, key=lambda node: self.start[node])
