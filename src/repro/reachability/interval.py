"""Interval (region) encoding for tree/forest data.

The classical labeling behind holistic twig joins (Bruno et al. [3]): each
tree node gets ``(start, end, level)`` from a DFS numbering; ``u`` is an
ancestor of ``v`` iff ``start(u) < start(v) <= end(u)``, and a parent iff
additionally ``level(v) = level(u) + 1``.

The paper's Related Work stresses that this scheme (and the stack encoding
built on it) *only works on trees* — that limitation is why TwigStack and
Twig2Stack must decompose graph data into trees (Section 5.1).  We use it
for exactly that purpose in :mod:`repro.baselines`.
"""

from __future__ import annotations

from ..graph.digraph import DataGraph
from .base import Dag, DagIndex


class IntervalLabeling:
    """DFS region encoding of a forest.

    Raises ``ValueError`` when the input graph is not a forest (a node with
    two parents or a cycle).
    """

    __slots__ = ("start", "end", "level", "_order")

    def __init__(self, graph: DataGraph):
        for node in graph.nodes():
            if graph.in_degree(node) > 1:
                raise ValueError(
                    f"node {node} has {graph.in_degree(node)} parents; "
                    "interval labeling requires a forest"
                )
        n = graph.num_nodes
        self.start = [0] * n
        self.end = [0] * n
        self.level = [0] * n
        counter = 0
        visited = [False] * n
        for root in graph.roots():
            # Iterative DFS; frames are (node, phase) with phase 0 = enter.
            stack: list[tuple[int, int]] = [(root, 0)]
            while stack:
                node, phase = stack.pop()
                if phase == 0:
                    if visited[node]:
                        raise ValueError("graph contains a cycle")
                    visited[node] = True
                    counter += 1
                    self.start[node] = counter
                    stack.append((node, 1))
                    for child in reversed(graph.successors(node)):
                        self.level[child] = self.level[node] + 1
                        stack.append((child, 0))
                else:
                    self.end[node] = counter
        if not all(visited):
            raise ValueError("graph contains a cycle unreachable from any root")
        self._order = sorted(graph.nodes(), key=lambda node: self.start[node])

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """Strict ancestorship (``ancestor != descendant``)."""
        return self.start[ancestor] < self.start[descendant] <= self.end[ancestor]

    def is_parent(self, parent: int, child: int) -> bool:
        return self.is_ancestor(parent, child) and self.level[child] == self.level[parent] + 1

    def document_order(self) -> list[int]:
        """Nodes sorted by ``start`` — the stream order of twig joins."""
        return self._order

    def sort_by_start(self, nodes: list[int]) -> list[int]:
        return sorted(nodes, key=lambda node: self.start[node])


class IntervalIndex(DagIndex):
    """Postorder interval labels as a DAG reachability index.

    The general-DAG sibling of :class:`IntervalLabeling` (which is exact
    but forest-only).  Every node gets ``[low, rank]`` from one DFS
    postorder numbering, with ``low`` propagated to the minimum rank of
    the *reachable set* (not just the DFS subtree):

    * ``u`` reaches ``v``  ⇒  ``low(u) <= rank(v) < rank(u)`` — a
      *necessary* condition, so an interval miss refutes reachability in
      O(1);
    * on forests the condition is also sufficient (the reachable set is
      the DFS subtree, contiguous in postorder), so queries never touch
      the graph;
    * on general DAGs an interval hit falls back to a DFS that prunes
      every branch whose interval excludes the target.

    This is the GRAIL-style labeling (Yildirim et al., VLDB'10) at one
    traversal; it is the cheapest index to build (two O(V+E) sweeps) and
    the choice of ``index="auto"`` for near-tree DAGs.
    """

    name = "interval"

    __slots__ = ("rank", "low", "_exact")

    def __init__(self, dag: Dag):
        super().__init__(dag)
        n = dag.num_nodes
        self.rank = [0] * n
        self.low = [0] * n
        # DFS postorder over the whole DAG, rooted at the in-degree-0 nodes.
        counter = 0
        visited = [False] * n
        for root in dag.order:
            if dag.pred[root] or visited[root]:
                continue
            stack: list[tuple[int, int]] = [(root, 0)]
            while stack:
                node, phase = stack.pop()
                if phase == 0:
                    if visited[node]:
                        continue
                    visited[node] = True
                    stack.append((node, 1))
                    for successor in reversed(dag.succ[node]):
                        if not visited[successor]:
                            stack.append((successor, 0))
                else:
                    self.rank[node] = counter
                    counter += 1
        # low = min postorder rank over the reachable set (reverse topo DP).
        for node in reversed(dag.order):
            low = self.rank[node]
            for successor in dag.succ[node]:
                if self.low[successor] < low:
                    low = self.low[successor]
            self.low[node] = low
        self._exact = all(len(parents) <= 1 for parents in dag.pred)

    def _may_reach(self, source: int, target: int) -> bool:
        return self.low[source] <= self.rank[target] < self.rank[source]

    def reaches(self, source: int, target: int) -> bool:
        self.counters.lookups += 1
        if source == target or not self._may_reach(source, target):
            return False
        if self._exact:
            return True
        # Interval-pruned DFS: only descend into nodes whose interval still
        # admits the target.
        stack = [source]
        seen = {source}
        while stack:
            node = stack.pop()
            for successor in self.dag.succ[node]:
                self.counters.entries_scanned += 1
                if successor == target:
                    return True
                if successor not in seen and self._may_reach(successor, target):
                    seen.add(successor)
                    stack.append(successor)
        return False

    def index_size(self) -> int:
        return 2 * self.dag.num_nodes
