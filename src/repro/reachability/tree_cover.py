"""Tree cover index (Agrawal/Borgida/Jagadish, SIGMOD'89).

The "OPT-tree-cover" labeling HGJoin builds on [27, 1]: pick a spanning
forest, number it by postorder, give every node its subtree interval
``[low, post]``, then propagate interval *sets* bottom-up along non-tree
edges so that ``u`` reaches ``v`` iff ``post(v)`` falls inside one of
``u``'s intervals.

Intervals of a node's set are compressed by merging overlapping/adjacent
ranges; on tree-like graphs most nodes keep a single interval, on dense
DAGs the sets grow — the size behaviour the original paper exploits and
HGJoin inherits.
"""

from __future__ import annotations

from .base import Dag, DagIndex


class TreeCoverIndex(DagIndex):
    """Postorder interval sets with non-tree propagation."""

    name = "tree-cover"

    def __init__(self, dag: Dag):
        super().__init__(dag)
        n = dag.num_nodes
        tree_parent: list[int | None] = [None] * n
        placed = [False] * n
        for node in dag.order:
            for successor in dag.succ[node]:
                if not placed[successor]:
                    placed[successor] = True
                    tree_parent[successor] = node
        children: list[list[int]] = [[] for _ in range(n)]
        roots: list[int] = []
        for node in range(n):
            parent = tree_parent[node]
            if parent is None:
                roots.append(node)
            else:
                children[parent].append(node)
        # Postorder numbering and inclusive subtree intervals [low, post].
        self.post = [0] * n
        self.low = [0] * n
        counter = 0
        for root in roots:
            stack: list[tuple[int, int]] = [(root, 0)]
            lows: dict[int, int] = {}
            while stack:
                node, phase = stack.pop()
                if phase == 0:
                    lows[node] = counter + 1
                    stack.append((node, 1))
                    for child in reversed(children[node]):
                        stack.append((child, 0))
                else:
                    counter += 1
                    self.post[node] = counter
                    self.low[node] = lows[node]
        # Inclusive interval sets, propagated in reverse topological order:
        # intervals(v) covers v and everything reachable from v.
        self.intervals: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        for node in reversed(dag.order):
            collected: list[tuple[int, int]] = [(self.low[node], self.post[node])]
            for successor in dag.succ[node]:
                collected.extend(self.intervals[successor])
            self.intervals[node] = _merge_intervals(collected)

    def reaches(self, source: int, target: int) -> bool:
        """Strict reachability: interval membership with ``source != target``."""
        self.counters.lookups += 1
        if source == target:
            return False
        position = self.post[target]
        for lower, upper in self.intervals[source]:
            self.counters.entries_scanned += 1
            if lower <= position <= upper:
                return True
            if lower > position:
                return False  # intervals sorted ascending
        return False

    def index_size(self) -> int:
        return sum(len(entries) for entries in self.intervals)


def _merge_intervals(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Sort and coalesce overlapping or adjacent intervals."""
    intervals.sort()
    merged: list[tuple[int, int]] = []
    for lower, upper in intervals:
        if merged and lower <= merged[-1][1] + 1:
            if upper > merged[-1][1]:
                merged[-1] = (merged[-1][0], upper)
        else:
            merged.append((lower, upper))
    return merged
