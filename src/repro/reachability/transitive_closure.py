"""Packed-bitset transitive closure.

The simplest correct reachability index: one numpy bit row per DAG node.
Quadratic space, so only suitable for small-to-medium graphs — it serves as
(a) the test oracle every other index is validated against, and (b) a
baseline data point for index-size comparisons.
"""

from __future__ import annotations

import numpy as np

from .base import Dag, DagIndex


class TransitiveClosureIndex(DagIndex):
    """Strict transitive closure as packed numpy bitsets."""

    name = "tc"

    def __init__(self, dag: Dag):
        super().__init__(dag)
        n = dag.num_nodes
        width = (n + 7) // 8 if n else 0
        self._bits = np.zeros((n, width), dtype=np.uint8)
        # Reverse topological order: successors are complete before sources.
        for node in reversed(dag.order):
            row = self._bits[node]
            for successor in dag.succ[node]:
                row |= self._bits[successor]
                row[successor >> 3] |= 1 << (successor & 7)

    def reaches(self, source: int, target: int) -> bool:
        self.counters.lookups += 1
        return bool(self._bits[source, target >> 3] & (1 << (target & 7)))

    def descendants(self, source: int) -> list[int]:
        """All strict descendants of ``source`` (DAG nodes)."""
        return np.flatnonzero(
            np.unpackbits(self._bits[source], count=self.dag.num_nodes)
        ).tolist()

    def descendant_count(self, source: int) -> int:
        return int(np.unpackbits(self._bits[source], count=self.dag.num_nodes).sum())

    def index_size(self) -> int:
        return int(self._bits.size)
