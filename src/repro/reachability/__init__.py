"""Reachability indexes (substrate S3 in DESIGN.md).

The paper's evaluation framework is index-agnostic ("flexible for our
framework to use other labeling schemes", Section 4.1); the default is
3-hop, with transitive closure as an oracle, SSPI for TwigStackD and the
Agrawal tree cover for HGJoin.  :func:`build_reachability` accepts
``index="auto"`` to pick an index from the graph's shape.
"""

from .base import Dag, DagIndex, GraphReachability, IndexCounters
from .chain_cover import ChainCover, ChainCoverIndex, chain_decomposition
from .contour import (
    Contour,
    ContourIndex,
    contour_reaches_node,
    merge_pred_lists,
    merge_succ_lists,
    node_reaches_contour,
)
from .factory import (
    available_indexes,
    build_reachability,
    resolve_index,
    select_auto_index,
)
from .interval import IntervalIndex, IntervalLabeling
from .partial import (
    Footprint,
    PartialIndex,
    PartialReachability,
    build_partial_reachability,
    candidate_cone,
    domain_fingerprint,
    scoped_name,
)
from .sspi import SSPIIndex
from .three_hop import ThreeHopIndex
from .transitive_closure import TransitiveClosureIndex
from .tree_cover import TreeCoverIndex

__all__ = [
    "ChainCover",
    "ChainCoverIndex",
    "Contour",
    "ContourIndex",
    "Dag",
    "DagIndex",
    "Footprint",
    "GraphReachability",
    "IndexCounters",
    "IntervalIndex",
    "IntervalLabeling",
    "PartialIndex",
    "PartialReachability",
    "SSPIIndex",
    "ThreeHopIndex",
    "TransitiveClosureIndex",
    "TreeCoverIndex",
    "available_indexes",
    "build_partial_reachability",
    "build_reachability",
    "candidate_cone",
    "chain_decomposition",
    "contour_reaches_node",
    "domain_fingerprint",
    "merge_pred_lists",
    "merge_succ_lists",
    "node_reaches_contour",
    "resolve_index",
    "scoped_name",
    "select_auto_index",
]
