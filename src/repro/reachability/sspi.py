"""SSPI — the Surrogate & Surplus Predecessor Index (Chen et al., VLDB'05).

TwigStackD's reachability oracle.  A spanning forest of the DAG gets an
interval encoding; every non-tree edge ``(p, c)`` files ``p`` into the
*surplus predecessor list* ``SSPI(c)``.  A query ``reach(u, v)`` succeeds
if ``u`` tree-contains ``v``, or — recursively — if ``u`` reaches some
surplus predecessor filed on ``v`` or on one of ``v``'s tree ancestors up
to the surrogate subtree root.

The paper observes (Section 5.2) that this index is cheap and fast on
shallow tree-like graphs (XMark) but degrades on denser, deeper graphs
(arXiv) — the recursion fans out through surplus lists.  Reproducing that
asymmetry is the point of implementing it faithfully rather than backing
it with transitive closure.
"""

from __future__ import annotations

from .base import Dag, DagIndex


class SSPIIndex(DagIndex):
    """Spanning-forest intervals plus surplus predecessor lists."""

    name = "sspi"

    def __init__(self, dag: Dag):
        super().__init__(dag)
        n = dag.num_nodes
        self.tree_parent: list[int | None] = [None] * n
        self.surplus: list[list[int]] = [[] for _ in range(n)]
        # Spanning forest: the first incoming edge in topological order is
        # the tree edge, the rest are surplus.
        placed = [False] * n
        for node in dag.order:
            for successor in dag.succ[node]:
                if not placed[successor]:
                    placed[successor] = True
                    self.tree_parent[successor] = node
                else:
                    self.surplus[successor].append(node)
        children: list[list[int]] = [[] for _ in range(n)]
        roots: list[int] = []
        for node in range(n):
            parent = self.tree_parent[node]
            if parent is None:
                roots.append(node)
            else:
                children[parent].append(node)
        self.start = [0] * n
        self.end = [0] * n
        counter = 0
        for root in roots:
            stack: list[tuple[int, int]] = [(root, 0)]
            while stack:
                node, phase = stack.pop()
                if phase == 0:
                    counter += 1
                    self.start[node] = counter
                    stack.append((node, 1))
                    for child in reversed(children[node]):
                        stack.append((child, 0))
                else:
                    self.end[node] = counter

    def _tree_contains(self, ancestor: int, descendant: int) -> bool:
        """Inclusive containment in the spanning forest."""
        return self.start[ancestor] <= self.start[descendant] <= self.end[ancestor]

    def reaches(self, source: int, target: int) -> bool:
        """Strict DAG reachability through tree containment + surplus lists."""
        self.counters.lookups += 1
        if source == target:
            return False
        return self._reach_inclusive_via(source, target, set())

    def _reach_inclusive_via(self, source: int, target: int, seen: set[int]) -> bool:
        """Can ``source`` reach ``target``, allowing source==target only
        when arrived at through an edge (tracked by the caller)?"""
        # Tree containment covers strict tree descent; equality is handled
        # by callers (surplus-edge endpoints were reached via real edges).
        stack = [target]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if self._tree_contains(source, node) and node != source:
                return True
            # Walk tree ancestors of `node`, consulting surplus lists.
            current: int | None = node
            while current is not None:
                for predecessor in self.surplus[current]:
                    self.counters.entries_scanned += 1
                    if predecessor == source:
                        return True
                    if predecessor not in seen:
                        stack.append(predecessor)
                current = self.tree_parent[current]
                if current == source:
                    return True
                if current is not None and current in seen:
                    break
        return False

    def index_size(self) -> int:
        return sum(len(entries) for entries in self.surplus) + 2 * self.dag.num_nodes
