"""Chain decomposition of a DAG (the cover underlying 3-hop).

3-hop (Jin et al., SIGMOD'09) indexes reachability relative to a *chain
cover*: disjoint chains that together contain every node, where consecutive
chain nodes are ordered by reachability.  We compute a minimum **path
cover** via maximum bipartite matching (König/Dilworth style: ``#chains =
#nodes - #matching``) using Hopcroft–Karp.  A path cover is a chain cover
whose consecutive nodes are connected by *actual edges* — a property the
strict-reachability contour arguments in :mod:`repro.reachability.contour`
rely on (see DESIGN.md, semantics notes).
"""

from __future__ import annotations

from collections import deque

from .base import Dag, DagIndex

_INF = float("inf")


class ChainCover:
    """A chain decomposition: every DAG node lives on exactly one chain.

    Attributes:
        chains: ``chains[c]`` is the node list of chain ``c``, top to bottom
            (each consecutive pair joined by a DAG edge, so earlier nodes
            reach later ones).
        cid: chain id of each node.
        sid: 1-based sequence number of each node on its chain (the paper's
            ``sid``; larger sid = deeper on the chain).
    """

    __slots__ = ("chains", "cid", "sid")

    def __init__(self, chains: list[list[int]], num_nodes: int):
        self.chains = chains
        self.cid = [0] * num_nodes
        self.sid = [0] * num_nodes
        for chain_id, chain in enumerate(chains):
            for position, node in enumerate(chain, start=1):
                self.cid[node] = chain_id
                self.sid[node] = position

    @property
    def num_chains(self) -> int:
        return len(self.chains)

    def same_chain_reaches(self, source: int, target: int) -> bool:
        """Chain-order reachability: both on one chain and source above."""
        return self.cid[source] == self.cid[target] and self.sid[source] < self.sid[target]


class ChainCoverIndex(DagIndex):
    """Chain cover with *full* per-node successor tables.

    The un-delta-encoded ancestor of 3-hop: every node stores, per chain,
    the minimum sequence number it reaches (inclusively).  Queries are a
    single dictionary probe — strictly faster than the 3-hop chain walk —
    at the price of O(#nodes × #chains) worst-case space.  Useful as a
    speed/space trade-off point and as a cross-check for the 3-hop delta
    encoding, which must answer identically.
    """

    name = "chain-cover"

    __slots__ = ("cover", "_tables")

    def __init__(self, dag: Dag, cover: ChainCover | None = None):
        super().__init__(dag)
        self.cover = cover if cover is not None else chain_decomposition(dag)
        cid, sid = self.cover.cid, self.cover.sid
        # Reverse-topological DP: min reachable sequence number per chain.
        tables: list[dict[int, int]] = [{} for _ in range(dag.num_nodes)]
        for node in reversed(dag.order):
            table: dict[int, int] = {}
            for successor in dag.succ[node]:
                for chain, seq in tables[successor].items():
                    if seq < table.get(chain, seq + 1):
                        table[chain] = seq
            table[cid[node]] = sid[node]
            tables[node] = table
        self._tables = tables

    def reaches(self, source: int, target: int) -> bool:
        self.counters.lookups += 1
        if source == target:
            return False
        cid, sid = self.cover.cid, self.cover.sid
        if cid[source] == cid[target]:
            return sid[source] < sid[target]
        self.counters.entries_scanned += 1
        lowest = self._tables[source].get(cid[target])
        return lowest is not None and lowest <= sid[target]

    def index_size(self) -> int:
        return sum(len(table) for table in self._tables)


def chain_decomposition(dag: Dag) -> ChainCover:
    """Minimum path cover of ``dag`` via Hopcroft–Karp matching.

    Returns a :class:`ChainCover`.  Deterministic for a fixed DAG: node
    scans follow topological order.
    """
    matched_succ, matched_pred = _hopcroft_karp(dag)
    chains: list[list[int]] = []
    for node in dag.order:
        if matched_pred[node] is not None:
            continue  # not a chain head
        chain = [node]
        current = matched_succ[node]
        while current is not None:
            chain.append(current)
            current = matched_succ[current]
        chains.append(chain)
    return ChainCover(chains, dag.num_nodes)


def _hopcroft_karp(dag: Dag) -> tuple[list[int | None], list[int | None]]:
    """Maximum matching in the bipartite out/in split of the DAG edges.

    Returns ``(matched_succ, matched_pred)``: for each node, its matched
    successor (the next node on its chain) and matched predecessor.
    """
    n = dag.num_nodes
    matched_succ: list[int | None] = [None] * n
    matched_pred: list[int | None] = [None] * n

    # Greedy warm start (big constant-factor win on tree-like graphs).
    for node in dag.order:
        if matched_succ[node] is None:
            for successor in dag.succ[node]:
                if matched_pred[successor] is None:
                    matched_succ[node] = successor
                    matched_pred[successor] = node
                    break

    distance: list[float] = [0.0] * n

    def bfs() -> bool:
        queue: deque[int] = deque()
        for node in range(n):
            if matched_succ[node] is None:
                distance[node] = 0
                queue.append(node)
            else:
                distance[node] = _INF
        found_augmenting = False
        while queue:
            node = queue.popleft()
            for successor in dag.succ[node]:
                owner = matched_pred[successor]
                if owner is None:
                    found_augmenting = True
                elif distance[owner] == _INF:
                    distance[owner] = distance[node] + 1
                    queue.append(owner)
        return found_augmenting

    def dfs(node: int) -> bool:
        for successor in dag.succ[node]:
            owner = matched_pred[successor]
            if owner is None or (
                distance[owner] == distance[node] + 1 and dfs(owner)
            ):
                matched_succ[node] = successor
                matched_pred[successor] = node
                return True
        distance[node] = _INF
        return False

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, n + 1000))
    try:
        while bfs():
            for node in range(n):
                if matched_succ[node] is None:
                    dfs(node)
    finally:
        sys.setrecursionlimit(old_limit)
    return matched_succ, matched_pred
