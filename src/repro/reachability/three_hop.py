"""The 3-hop reachability index (Jin et al., SIGMOD'09) — chain variant.

3-hop answers ``u ~> v`` in three hops: *walk down u's chain*, *jump to
another chain through a recorded entry*, *walk down that chain to v*.  Each
node stores two small delta lists:

* ``Lout(v)`` — per reachable chain ``c``, the smallest sequence number on
  ``c`` reachable from ``v``, stored **only when it differs** from the value
  derivable from v's chain successor (which v reaches anyway);
* ``Lin(v)`` — symmetric: largest sequence number per chain reaching ``v``,
  delta-encoded against the chain predecessor.

The query procedure matches the paper's Section 4.2.1 exactly: collect the
*complete successor list* ``X_v`` by walking down the chain through ``Lout``
lists (skip pointers jump over nodes with empty lists), the *complete
predecessor list* ``Y_v`` walking up through ``Lin``, and report reachable
iff some pair ``(x, y) in X_v × Y_v`` satisfies ``x <=_c y``.

Construction note (documented in DESIGN.md): the original paper compresses
contour segments with a densest-subgraph heuristic; we delta-encode against
chain neighbours instead.  The stored-list/query interface — what GTEA's
pruning consumes — is identical.

Strictness: chains come from a *path cover* (consecutive chain nodes joined
by real edges), so on the DAG the only inclusive-vs-strict difference is a
node's own chain position; helpers below expose both flavours and
:mod:`repro.reachability.contour` builds strict contours from them.
"""

from __future__ import annotations

from typing import Iterator

from .base import Dag, DagIndex
from .chain_cover import ChainCover, chain_decomposition

#: An index entry: (chain id, sequence number).
Entry = tuple[int, int]


class ThreeHopIndex(DagIndex):
    """Chain-cover + delta-encoded entry/exit lists, per the module docs."""

    name = "3hop"

    def __init__(self, dag: Dag, cover: ChainCover | None = None):
        super().__init__(dag)
        self.cover = cover if cover is not None else chain_decomposition(dag)
        self.lout: list[list[Entry]] = [[] for _ in range(dag.num_nodes)]
        self.lin: list[list[Entry]] = [[] for _ in range(dag.num_nodes)]
        self._build_lout()
        self._build_lin()
        self._next_out = self._skip_pointers(self.lout, direction=+1)
        self._prev_in = self._skip_pointers(self.lin, direction=-1)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _chain_successor(self, node: int) -> int | None:
        chain = self.cover.chains[self.cover.cid[node]]
        position = self.cover.sid[node]  # 1-based; chain[position] is next
        return chain[position] if position < len(chain) else None

    def _chain_predecessor(self, node: int) -> int | None:
        position = self.cover.sid[node]
        if position <= 1:
            return None
        return self.cover.chains[self.cover.cid[node]][position - 2]

    def _build_lout(self) -> None:
        """Reverse-topological DP of inclusive entry tables, delta-encoded.

        ``ent[v][c]`` = min sequence number on chain ``c`` reachable from
        ``v`` *inclusively* (v's own chain maps to v's own sid).  Tables of
        fully consumed nodes are freed eagerly to bound peak memory.
        """
        dag, cover = self.dag, self.cover
        ent: dict[int, dict[int, int]] = {}
        pending_preds = [len(dag.pred[node]) for node in range(dag.num_nodes)]
        for node in reversed(dag.order):
            table: dict[int, int] = {}
            for successor in dag.succ[node]:
                for chain, seq in ent[successor].items():
                    if seq < table.get(chain, seq + 1):
                        table[chain] = seq
            own_chain = cover.cid[node]
            table[own_chain] = cover.sid[node]
            ent[node] = table
            # Delta-encode against the chain successor (reached via a real
            # edge, hence its table is already available).
            chain_succ = self._chain_successor(node)
            succ_table = ent[chain_succ] if chain_succ is not None else {}
            deltas = [
                (chain, seq)
                for chain, seq in table.items()
                if chain != own_chain and succ_table.get(chain, seq + 1) != seq
            ]
            deltas.sort()
            self.lout[node] = deltas
            for successor in dag.succ[node]:
                pending_preds[successor] -= 1
                if pending_preds[successor] == 0:
                    del ent[successor]

    def _build_lin(self) -> None:
        """Forward-topological DP, symmetric to :meth:`_build_lout`."""
        dag, cover = self.dag, self.cover
        ext: dict[int, dict[int, int]] = {}
        pending_succs = [len(dag.succ[node]) for node in range(dag.num_nodes)]
        for node in dag.order:
            table: dict[int, int] = {}
            for predecessor in dag.pred[node]:
                for chain, seq in ext[predecessor].items():
                    if seq > table.get(chain, seq - 1):
                        table[chain] = seq
            own_chain = cover.cid[node]
            table[own_chain] = cover.sid[node]
            ext[node] = table
            chain_pred = self._chain_predecessor(node)
            pred_table = ext[chain_pred] if chain_pred is not None else {}
            deltas = [
                (chain, seq)
                for chain, seq in table.items()
                if chain != own_chain and pred_table.get(chain, seq - 1) != seq
            ]
            deltas.sort()
            self.lin[node] = deltas
            for predecessor in dag.pred[node]:
                pending_succs[predecessor] -= 1
                if pending_succs[predecessor] == 0:
                    del ext[predecessor]

    def _skip_pointers(self, lists: list[list[Entry]], direction: int) -> list[int | None]:
        """``next(v)`` / ``prev(v)`` pointers skipping empty lists (Sec 4.2.1)."""
        pointers: list[int | None] = [None] * self.dag.num_nodes
        for chain in self.cover.chains:
            nodes = chain if direction > 0 else list(reversed(chain))
            nearest: int | None = None
            for node in reversed(nodes):
                pointers[node] = nearest
                if lists[node]:
                    nearest = node
        return pointers

    # ------------------------------------------------------------------
    # Entry walks
    # ------------------------------------------------------------------
    def next_out(self, node: int) -> int | None:
        """Nearest deeper node on the chain with a nonempty ``Lout``."""
        return self._next_out[node]

    def prev_in(self, node: int) -> int | None:
        """Nearest shallower node on the chain with a nonempty ``Lin``."""
        return self._prev_in[node]

    def iter_out_entries(self, node: int, stop_sid: int | None = None) -> Iterator[Entry]:
        """Yield ``Lout`` entries of nodes from ``node`` down its chain.

        Stops before reaching a node with ``sid >= stop_sid`` (used by the
        pruning passes to share scans between candidates on one chain).
        The node's own implicit chain entry is *not* yielded — callers add
        ``(cid, sid)`` themselves when they need the inclusive list.
        """
        sid = self.cover.sid
        current: int | None = node if self.lout[node] else self._next_out[node]
        while current is not None and (stop_sid is None or sid[current] < stop_sid):
            for entry in self.lout[current]:
                self.counters.entries_scanned += 1
                yield entry
            current = self._next_out[current]

    def iter_in_entries(self, node: int, stop_sid: int | None = None) -> Iterator[Entry]:
        """Yield ``Lin`` entries of nodes from ``node`` up its chain."""
        sid = self.cover.sid
        current: int | None = node if self.lin[node] else self._prev_in[node]
        while current is not None and (stop_sid is None or sid[current] > stop_sid):
            for entry in self.lin[current]:
                self.counters.entries_scanned += 1
                yield entry
            current = self._prev_in[current]

    # ------------------------------------------------------------------
    # Complete lists (paper's X_v / Y_v) and the point query
    # ------------------------------------------------------------------
    def complete_successor_list(self, node: int) -> dict[int, int]:
        """Inclusive ``X_v``: min reachable sequence number per chain."""
        table: dict[int, int] = {self.cover.cid[node]: self.cover.sid[node]}
        for chain, seq in self.iter_out_entries(node):
            if seq < table.get(chain, seq + 1):
                table[chain] = seq
        return table

    def complete_predecessor_list(self, node: int) -> dict[int, int]:
        """Inclusive ``Y_v``: max reaching sequence number per chain."""
        table: dict[int, int] = {self.cover.cid[node]: self.cover.sid[node]}
        for chain, seq in self.iter_in_entries(node):
            if seq > table.get(chain, seq - 1):
                table[chain] = seq
        return table

    def reaches(self, source: int, target: int) -> bool:
        """Strict DAG reachability via the 3-hop check (Section 4.2.1)."""
        self.counters.lookups += 1
        if source == target:
            return False
        cover = self.cover
        if cover.cid[source] == cover.cid[target]:
            return cover.sid[source] < cover.sid[target]
        successors = self.complete_successor_list(source)
        predecessors = self.complete_predecessor_list(target)
        # Iterate the smaller table; the containment test is symmetric.
        if len(successors) <= len(predecessors):
            for chain, low in successors.items():
                high = predecessors.get(chain)
                if high is not None and low <= high:
                    return True
        else:
            for chain, high in predecessors.items():
                low = successors.get(chain)
                if low is not None and low <= high:
                    return True
        return False

    def index_size(self) -> int:
        stored = sum(len(entries) for entries in self.lout)
        stored += sum(len(entries) for entries in self.lin)
        return stored
