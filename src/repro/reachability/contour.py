"""Contours: merged 3-hop lists for set-reachability (paper Section 4.2.1).

The pruning framework answers many reachability queries between a node and
a *set* ``mat(u)`` of candidates.  Instead of pairwise index probes it
merges the complete predecessor (resp. successor) lists of the whole set
into a single per-chain extremum — the **predecessor contour** ``Cp``
(resp. **successor contour** ``Cs``) of Procedure 2 / MergeSuccLists — and
then applies Proposition 7:

* ``v`` reaches ``mat(u)``  iff  ∃ chain ``c``: ``X_v[c] <= Cp[c]``;
* ``mat(u)`` reaches ``v``  iff  ∃ chain ``c``: ``Cs[c] <= Y_v[c]``.

Strictness discipline (DESIGN.md, semantics notes): contours are built from
*strict* predecessor/successor lists — a set member's own chain position is
replaced by its chain neighbour — while the probing side ``X_v``/``Y_v``
stays inclusive.  On a DAG with real-edge chains this makes both checks
answer exactly "nonempty path", with no diagonal false positives.

Two observations keep merging linear (the paper's cost analysis):

* on each chain only the *extremal* set member matters — every other
  member's list is dominated by it;
* walking a chain never re-scans a region another member already covered
  (the ``visited`` bookkeeping of Procedure 2).
"""

from __future__ import annotations

from typing import Iterable

from .base import Dag, DagIndex
from .three_hop import ThreeHopIndex


class Contour:
    """A per-chain extremum map ``{chain id: sequence number}``.

    For predecessor contours the value is the *largest* sid on the chain
    that strictly reaches the underlying set; for successor contours the
    *smallest* sid strictly reachable from it.
    """

    __slots__ = ("data",)

    def __init__(self, data: dict[int, int] | None = None):
        self.data = data if data is not None else {}

    def __len__(self) -> int:
        return len(self.data)

    def __eq__(self, other) -> bool:
        return isinstance(other, Contour) and self.data == other.data

    def __repr__(self) -> str:
        return f"Contour({self.data!r})"

    def get(self, chain: int) -> int | None:
        return self.data.get(chain)


def merge_pred_lists(index: ThreeHopIndex, nodes: Iterable[int]) -> Contour:
    """MergePredLists (Procedure 2): strict predecessor contour of a set.

    Args:
        index: the 3-hop index.
        nodes: DAG nodes of the set (duplicates are fine).
    """
    cover = index.cover
    # Per chain, only the deepest (largest sid) member matters: everything
    # reaching a shallower member also reaches it through the chain.
    deepest: dict[int, int] = {}
    for node in nodes:
        chain = cover.cid[node]
        if chain not in deepest or cover.sid[node] > cover.sid[deepest[chain]]:
            deepest[chain] = node
    contour: dict[int, int] = {}
    for chain, node in deepest.items():
        index.counters.lookups += 1
        # Own-chain strict entry: the chain predecessor reaches the member
        # through a real edge.
        own_sid = cover.sid[node]
        if own_sid > 1 and contour.get(chain, 0) < own_sid - 1:
            contour[chain] = own_sid - 1
        for entry_chain, seq in index.iter_in_entries(node):
            if contour.get(entry_chain, seq - 1) < seq:
                contour[entry_chain] = seq
    return Contour(contour)


def merge_succ_lists(index: ThreeHopIndex, nodes: Iterable[int]) -> Contour:
    """MergeSuccLists: strict successor contour of a set."""
    cover = index.cover
    shallowest: dict[int, int] = {}
    for node in nodes:
        chain = cover.cid[node]
        if chain not in shallowest or cover.sid[node] < cover.sid[shallowest[chain]]:
            shallowest[chain] = node
    contour: dict[int, int] = {}
    for chain, node in shallowest.items():
        index.counters.lookups += 1
        own_sid = cover.sid[node]
        if own_sid < len(cover.chains[chain]):
            successor_sid = own_sid + 1
            if contour.get(chain, successor_sid + 1) > successor_sid:
                contour[chain] = successor_sid
        for entry_chain, seq in index.iter_out_entries(node):
            if contour.get(entry_chain, seq + 1) > seq:
                contour[entry_chain] = seq
    return Contour(contour)


def node_reaches_contour(index: ThreeHopIndex, node: int, contour: Contour) -> bool:
    """Proposition 7, downward direction: does ``node`` reach the set?

    ``X_node`` (inclusive) is streamed entry-by-entry against the strict
    predecessor contour; the walk short-circuits on the first witness.
    """
    index.counters.lookups += 1
    cover = index.cover
    own = contour.get(cover.cid[node])
    if own is not None and cover.sid[node] <= own:
        return True
    for chain, seq in index.iter_out_entries(node):
        upper = contour.get(chain)
        if upper is not None and seq <= upper:
            return True
    return False


def contour_reaches_node(index: ThreeHopIndex, node: int, contour: Contour) -> bool:
    """Proposition 7, upward direction: does the set reach ``node``?"""
    index.counters.lookups += 1
    cover = index.cover
    own = contour.get(cover.cid[node])
    if own is not None and own <= cover.sid[node]:
        return True
    for chain, seq in index.iter_in_entries(node):
        lower = contour.get(chain)
        if lower is not None and lower <= seq:
            return True
    return False


class ContourIndex(DagIndex):
    """Point-query adapter over contour merging (Proposition 7).

    Stores a 3-hop index and answers ``reaches(u, v)`` by merging the
    singleton predecessor contour of ``{v}`` and streaming ``X_u`` against
    it — exercising exactly the set-reachability machinery GTEA's pruning
    uses, one element at a time.  Registered mainly so the contour code
    path gets standalone oracle coverage; as a point index it does strictly
    more work per query than :class:`~repro.reachability.three_hop.ThreeHopIndex`.
    """

    name = "contour"

    __slots__ = ("three_hop",)

    def __init__(self, dag: Dag):
        super().__init__(dag)
        self.three_hop = ThreeHopIndex(dag)
        # Share the inner counters so entry scans during contour merges are
        # attributed to this index.
        self.counters = self.three_hop.counters

    def reaches(self, source: int, target: int) -> bool:
        if source == target:
            return False
        contour = merge_pred_lists(self.three_hop, [target])
        return node_reaches_contour(self.three_hop, source, contour)

    def index_size(self) -> int:
        return self.three_hop.index_size()
