"""Partial reachability indexes over a query's candidate footprint.

A *partial* index builds any registered DAG index (transitive closure,
interval, contour, ...) over only the subgraph a query can touch: the
union of its candidate label sets plus their reachable cone.  Because the
footprint is descendant-closed (every node reachable from a footprint
node is itself in the footprint), reachability restricted to the
footprint is *exact* for in-domain sources — a probe from an in-domain
source to an out-of-domain target is always False, and only probes from
out-of-domain sources need the on-demand BFS fallback.

The footprint carries a :func:`domain_fingerprint` so equal footprints
(across queries, sessions and warm restarts) share one build.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from ..graph.condensation import Condensation
from ..graph.digraph import DataGraph
from .base import Dag, DagIndex, GraphReachability
from .factory import _REGISTRY, available_indexes

__all__ = [
    "Footprint",
    "PartialIndex",
    "PartialReachability",
    "build_partial_reachability",
    "candidate_cone",
    "domain_fingerprint",
    "scoped_name",
]


def scoped_name(inner: str) -> str:
    """The index name a partial build reports (e.g. ``"tc@partial"``)."""
    return f"{inner}@partial"


def domain_fingerprint(nodes: Iterable[int]) -> str:
    """Order-independent fingerprint of a footprint's node set.

    Equal node sets always hash equal, so sessions key pooled partial
    indexes — and the `ArtifactStore` entries behind them — by
    ``(graph_fingerprint, domain_fingerprint)`` and share one build per
    footprint.
    """
    digest = hashlib.sha256()
    for node in sorted(nodes):
        digest.update(node.to_bytes(8, "little", signed=False))
    return digest.hexdigest()[:16]


def candidate_cone(
    graph: DataGraph, seeds: Iterable[int], *, budget: int | None = None
) -> frozenset[int] | None:
    """Seeds plus everything reachable from them (descendant-closed).

    Returns ``None`` as soon as the cone exceeds ``budget`` nodes — the
    caller should fall back to a full index rather than build a partial
    one over most of the graph.
    """
    seen: set[int] = set(seeds)
    if budget is not None and len(seen) > budget:
        return None
    stack = list(seen)
    while stack:
        node = stack.pop()
        for successor in graph.successors(node):
            if successor not in seen:
                seen.add(successor)
                if budget is not None and len(seen) > budget:
                    return None
                stack.append(successor)
    return frozenset(seen)


class Footprint:
    """A descendant-closed node set with a stable fingerprint."""

    __slots__ = ("nodes", "seeds", "fingerprint")

    def __init__(self, nodes: frozenset[int], seeds: frozenset[int]):
        self.nodes = nodes
        self.seeds = seeds
        self.fingerprint = domain_fingerprint(nodes)

    @classmethod
    def from_seeds(
        cls, graph: DataGraph, seeds: Iterable[int], *, budget: int | None = None
    ) -> "Footprint | None":
        """Close ``seeds`` under reachability; ``None`` on budget blowout."""
        seed_set = frozenset(seeds)
        cone = candidate_cone(graph, seed_set, budget=budget)
        if cone is None:
            return None
        return cls(cone, seed_set)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Footprint(nodes={len(self.nodes)}, seeds={len(self.seeds)}, "
            f"fingerprint={self.fingerprint!r})"
        )


class PartialIndex(DagIndex):
    """Any registered index built over a domain-restricted DAG.

    The domain is a set of condensation components (descendant-closed at
    the component level, because the footprint is descendant-closed at
    the data-node level).  Probes resolve in three tiers:

    * both endpoints in the domain — answered by the inner index over
      the restricted DAG (exact: paths from in-domain sources cannot
      leave a descendant-closed domain);
    * in-domain source, out-of-domain target — always False, for the
      same reason;
    * out-of-domain source — memoized on-demand BFS over the full DAG.

    The inner index shares this adapter's :class:`IndexCounters`, so a
    partial run reports the same ``#index`` probe counts as a full-scope
    index would at identical call sites.
    """

    name = "partial"

    def __init__(
        self, dag: Dag, domain_components: Iterable[int], inner: str = "tc"
    ):
        if inner not in _REGISTRY:
            raise ValueError(
                f"unknown inner index {inner!r}; available: "
                f"{', '.join(available_indexes())}"
            )
        super().__init__(dag)
        domain = set(domain_components)
        # Local ids follow the full DAG's topological order, so the
        # restricted DAG's order is simply 0..k-1.
        ordered = [comp for comp in dag.order if comp in domain]
        local_of = {comp: local for local, comp in enumerate(ordered)}
        succ = [
            [local_of[t] for t in dag.succ[comp] if t in domain]
            for comp in ordered
        ]
        pred: list[list[int]] = [[] for _ in ordered]
        for source, targets in enumerate(succ):
            for target in targets:
                pred[target].append(source)
        self.restricted = Dag(succ, pred, list(range(len(ordered))))
        self.inner = _REGISTRY[inner](self.restricted)
        self.inner.counters = self.counters
        self.inner_name = inner
        self.name = scoped_name(inner)
        self._local = local_of
        self._descendant_memo: dict[int, frozenset[int]] = {}

    @property
    def domain_size(self) -> int:
        return self.restricted.num_nodes

    def in_domain(self, component: int) -> bool:
        return component in self._local

    def reaches(self, source: int, target: int) -> bool:
        local_source = self._local.get(source)
        if local_source is not None:
            local_target = self._local.get(target)
            if local_target is not None:
                return self.inner.reaches(local_source, local_target)
            # Descendant-closed domain: nothing outside it is reachable
            # from inside.  Count the probe for parity with a full index.
            self.counters.lookups += 1
            return False
        self.counters.lookups += 1
        return target in self._fallback_descendants(source)

    def _fallback_descendants(self, component: int) -> frozenset[int]:
        cached = self._descendant_memo.get(component)
        if cached is not None:
            return cached
        seen: set[int] = set()
        stack = list(self.dag.succ[component])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            self.counters.entries_scanned += 1
            stack.extend(self.dag.succ[current])
        result = frozenset(seen)
        self._descendant_memo[component] = result
        return result

    def index_size(self) -> int:
        return self.inner.index_size()


class PartialReachability(GraphReachability):
    """A :class:`GraphReachability` whose index covers one footprint.

    Drop-in for the engine's reachability service: condensation and the
    component mapping cover the whole graph (pruning needs them for every
    candidate), only the index structure is restricted to the footprint.
    """

    def __init__(self, graph: DataGraph, footprint: Footprint, inner: str = "tc"):
        self.graph = graph
        self.footprint = footprint
        self.condensation = Condensation(graph)
        self.dag = Dag.from_condensation(self.condensation)
        domain = {self.condensation.scc_of[node] for node in footprint.nodes}
        self.index = PartialIndex(self.dag, domain, inner)


def build_partial_reachability(
    graph: DataGraph, footprint: Footprint, inner: str = "tc"
) -> PartialReachability:
    """Build a partial reachability service over ``footprint``."""
    return PartialReachability(graph, footprint, inner)
