"""Index factory: build a reachability service by name."""

from __future__ import annotations

from typing import Callable

from ..graph.digraph import DataGraph
from .base import Dag, DagIndex, GraphReachability
from .sspi import SSPIIndex
from .three_hop import ThreeHopIndex
from .transitive_closure import TransitiveClosureIndex
from .tree_cover import TreeCoverIndex

_REGISTRY: dict[str, Callable[[Dag], DagIndex]] = {
    "3hop": ThreeHopIndex,
    "tc": TransitiveClosureIndex,
    "sspi": SSPIIndex,
    "tree-cover": TreeCoverIndex,
}


def available_indexes() -> list[str]:
    """Names accepted by :func:`build_reachability`."""
    return sorted(_REGISTRY)


def build_reachability(graph: DataGraph, index: str = "3hop") -> GraphReachability:
    """Build a :class:`GraphReachability` service over ``graph``.

    Args:
        graph: the data graph (cyclic graphs are condensed automatically).
        index: one of :func:`available_indexes` (default the paper's 3-hop).
    """
    try:
        factory = _REGISTRY[index]
    except KeyError:
        raise ValueError(
            f"unknown index {index!r}; available: {', '.join(available_indexes())}"
        ) from None
    return GraphReachability(graph, factory)
