"""Index factory: build a reachability service by name, or pick one.

Besides the explicit names, ``index="auto"`` selects an index from the
shape of the data graph (see :func:`select_auto_index`): the quadratic
transitive closure where it is trivially affordable, interval labels on
forests, the tree-cover on near-tree DAGs, and 3-hop — the paper's default
— everywhere else.
"""

from __future__ import annotations

from typing import Callable

from ..graph.digraph import DataGraph
from ..graph.stats import GraphStats, graph_stats
from ..plan.cost import AUTO_NEAR_TREE_RATIO, AUTO_TC_MAX_NODES, choose_index
from .base import Dag, DagIndex, GraphReachability
from .chain_cover import ChainCoverIndex
from .contour import ContourIndex
from .interval import IntervalIndex
from .sspi import SSPIIndex
from .three_hop import ThreeHopIndex
from .transitive_closure import TransitiveClosureIndex
from .tree_cover import TreeCoverIndex

_REGISTRY: dict[str, Callable[[Dag], DagIndex]] = {
    "3hop": ThreeHopIndex,
    "tc": TransitiveClosureIndex,
    "sspi": SSPIIndex,
    "tree-cover": TreeCoverIndex,
    "interval": IntervalIndex,
    "chain-cover": ChainCoverIndex,
    "contour": ContourIndex,
}

__all__ = [
    "AUTO_NEAR_TREE_RATIO",
    "AUTO_TC_MAX_NODES",
    "available_indexes",
    "build_reachability",
    "resolve_index",
    "select_auto_index",
]


def available_indexes() -> list[str]:
    """Names accepted by :func:`build_reachability` (``"auto"`` excluded)."""
    return sorted(_REGISTRY)


def select_auto_index(stats: GraphStats) -> str:
    """Cost-based index choice from graph statistics alone.

    The decision lives in the physical planner's cost model; this alias
    (plus the re-exported ``AUTO_*`` thresholds) keeps the historical
    factory API working.  See :func:`repro.plan.cost.choose_index` for
    the heuristic ladder.
    """
    return choose_index(stats)


def resolve_index(graph: DataGraph, index: str) -> str:
    """Resolve ``"auto"`` against ``graph``; pass explicit names through."""
    if index == "auto":
        return select_auto_index(graph_stats(graph))
    if index not in _REGISTRY:
        raise ValueError(
            f"unknown index {index!r}; available: "
            f"{', '.join(available_indexes())} (or 'auto')"
        )
    return index


def build_reachability(graph: DataGraph, index: str = "3hop") -> GraphReachability:
    """Build a :class:`GraphReachability` service over ``graph``.

    Args:
        graph: the data graph (cyclic graphs are condensed automatically).
        index: one of :func:`available_indexes` (default the paper's
            3-hop), or ``"auto"`` for the :func:`select_auto_index`
            heuristic.
    """
    factory = _REGISTRY[resolve_index(graph, index)]
    return GraphReachability(graph, factory)
