"""Index factory: build a reachability service by name, or pick one.

Besides the explicit names, ``index="auto"`` selects an index from the
shape of the data graph (see :func:`select_auto_index`): the quadratic
transitive closure where it is trivially affordable, interval labels on
forests, the tree-cover on near-tree DAGs, and 3-hop — the paper's default
— everywhere else.
"""

from __future__ import annotations

from typing import Callable

from ..graph.digraph import DataGraph
from ..graph.stats import GraphStats, graph_stats
from .base import Dag, DagIndex, GraphReachability
from .chain_cover import ChainCoverIndex
from .contour import ContourIndex
from .interval import IntervalIndex
from .sspi import SSPIIndex
from .three_hop import ThreeHopIndex
from .transitive_closure import TransitiveClosureIndex
from .tree_cover import TreeCoverIndex

_REGISTRY: dict[str, Callable[[Dag], DagIndex]] = {
    "3hop": ThreeHopIndex,
    "tc": TransitiveClosureIndex,
    "sspi": SSPIIndex,
    "tree-cover": TreeCoverIndex,
    "interval": IntervalIndex,
    "chain-cover": ChainCoverIndex,
    "contour": ContourIndex,
}

#: node count up to which the packed-bitset transitive closure is the
#: obvious winner (O(1) queries; the bit matrix stays under ~32 KiB).
AUTO_TC_MAX_NODES = 512

#: edge/node ratio under which a DAG counts as "near-tree" for ``auto``.
AUTO_NEAR_TREE_RATIO = 1.1


def available_indexes() -> list[str]:
    """Names accepted by :func:`build_reachability` (``"auto"`` excluded)."""
    return sorted(_REGISTRY)


def select_auto_index(stats: GraphStats) -> str:
    """Cost-based index choice from graph statistics alone.

    The heuristic ladder:

    1. tiny graphs — packed transitive closure (quadratic space is noise,
       queries are one bit probe);
    2. forests (acyclic, every non-root with exactly one parent) —
       interval labels, whose containment test is exact there;
    3. near-tree DAGs (edge count within :data:`AUTO_NEAR_TREE_RATIO` of
       the node count) — the Agrawal tree cover, which keeps one interval
       per node on such graphs;
    4. everything else — 3-hop, the paper's default.

    Cyclic graphs skip the forest/near-tree rungs: the statistics describe
    the raw graph, not its condensation, so tree-shape evidence is absent.
    """
    if stats.num_nodes <= AUTO_TC_MAX_NODES:
        return "tc"
    if stats.is_dag:
        if stats.num_edges == stats.num_nodes - stats.num_roots:
            return "interval"
        if stats.num_edges <= AUTO_NEAR_TREE_RATIO * stats.num_nodes:
            return "tree-cover"
    return "3hop"


def resolve_index(graph: DataGraph, index: str) -> str:
    """Resolve ``"auto"`` against ``graph``; pass explicit names through."""
    if index == "auto":
        return select_auto_index(graph_stats(graph))
    if index not in _REGISTRY:
        raise ValueError(
            f"unknown index {index!r}; available: "
            f"{', '.join(available_indexes())} (or 'auto')"
        )
    return index


def build_reachability(graph: DataGraph, index: str = "3hop") -> GraphReachability:
    """Build a :class:`GraphReachability` service over ``graph``.

    Args:
        graph: the data graph (cyclic graphs are condensed automatically).
        index: one of :func:`available_indexes` (default the paper's
            3-hop), or ``"auto"`` for the :func:`select_auto_index`
            heuristic.
    """
    factory = _REGISTRY[resolve_index(graph, index)]
    return GraphReachability(graph, factory)
