"""Shared infrastructure for reachability indexes.

All indexes are built over a :class:`Dag` — for cyclic data graphs this is
the SCC condensation, so *strict* (nonempty-path) reachability between data
nodes decomposes into:

* same component: reachable iff the component is cyclic;
* different components: DAG reachability between the components.

Every index counts the elements it touches in an :class:`IndexCounters`
instance so the I/O experiment (paper Appendix C.1, Fig. 10) can report the
``#index`` metric without instrumenting call sites.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..graph.condensation import Condensation
from ..graph.digraph import DataGraph
from ..graph.traversal import topological_order


class IndexCounters:
    """Mutable counters of index activity (the paper's ``#index`` metric)."""

    __slots__ = ("lookups", "entries_scanned")

    def __init__(self):
        self.lookups = 0
        self.entries_scanned = 0

    def reset(self) -> None:
        self.lookups = 0
        self.entries_scanned = 0

    def snapshot(self) -> dict[str, int]:
        return {"lookups": self.lookups, "entries_scanned": self.entries_scanned}


class Dag:
    """A plain adjacency-list DAG with a fixed topological order."""

    __slots__ = ("succ", "pred", "order")

    def __init__(self, succ: list[list[int]], pred: list[list[int]], order: list[int]):
        self.succ = succ
        self.pred = pred
        self.order = order  # sources first

    @property
    def num_nodes(self) -> int:
        return len(self.succ)

    @property
    def num_edges(self) -> int:
        return sum(len(targets) for targets in self.succ)

    @classmethod
    def from_condensation(cls, condensation: Condensation) -> "Dag":
        count = condensation.num_components
        succ = [condensation.successors(c) for c in range(count)]
        pred = [condensation.predecessors(c) for c in range(count)]
        return cls(succ, pred, condensation.topological_order())

    @classmethod
    def from_graph(cls, graph: DataGraph) -> "Dag":
        """Treat an acyclic :class:`DataGraph` directly as a DAG.

        Raises ``ValueError`` when the graph is cyclic — condense first.
        """
        order = topological_order(graph)
        if any(graph.has_edge(node, node) for node in graph.nodes()):
            raise ValueError("graph has self-loops; condense first")
        succ = [list(graph.successors(node)) for node in graph.nodes()]
        pred = [list(graph.predecessors(node)) for node in graph.nodes()]
        return cls(succ, pred, order)


class DagIndex(ABC):
    """Interface of DAG-level reachability indexes.

    ``reaches(x, y)`` answers *strict* reachability inside the DAG: is there
    a nonempty path from ``x`` to ``y``?  (``reaches(x, x)`` is always False
    on a DAG; cyclic self-reachability is handled by the
    :class:`GraphReachability` wrapper.)
    """

    #: human-readable index name used by the factory and bench reports.
    name: str = "abstract"

    def __init__(self, dag: Dag):
        self.dag = dag
        self.counters = IndexCounters()

    @abstractmethod
    def reaches(self, source: int, target: int) -> bool:
        """Strict DAG reachability."""

    def index_size(self) -> int:
        """Total number of stored index entries (for size comparisons)."""
        return 0


class GraphReachability:
    """Strict data-node reachability: condensation + a DAG-level index.

    This is the object the query engine works with.  It exposes both the
    plain ``reaches`` test and the mapping between data nodes and DAG
    (component) nodes, which the pruning machinery needs in order to batch
    candidates by chain.
    """

    def __init__(self, graph: DataGraph, index_factory):
        """Args:
            graph: the data graph.
            index_factory: callable ``Dag -> DagIndex``.
        """
        self.graph = graph
        self.condensation = Condensation(graph)
        self.dag = Dag.from_condensation(self.condensation)
        self.index = index_factory(self.dag)

    def __getstate__(self):
        # The graph reference stays out of the pickle: persisting a
        # private copy would double the warm-store artifact and desync
        # from the live object.  Loaders (QuerySession rehydration)
        # re-attach their graph; the index structures themselves only
        # ever use the condensation arrays.
        state = self.__dict__.copy()
        state["graph"] = None
        return state

    @property
    def counters(self) -> IndexCounters:
        return self.index.counters

    def component_of(self, data_node: int) -> int:
        return self.condensation.scc_of[data_node]

    def is_cyclic_component(self, component: int) -> bool:
        return self.condensation.cyclic[component]

    def reaches(self, source: int, target: int) -> bool:
        """Is ``target`` a strict descendant of ``source`` (nonempty path)?"""
        cs = self.condensation.scc_of[source]
        ct = self.condensation.scc_of[target]
        if cs == ct:
            return self.condensation.cyclic[cs]
        return self.index.reaches(cs, ct)
