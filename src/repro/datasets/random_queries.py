"""Random meaningful query generation (paper Section 5.2).

"We designed a query generator to randomly produce meaningful queries.
Each query node is associated with a label randomly chosen from the data
graph" — meaningful here means the pattern is *embedded* in the graph, so
its result set is nonempty.  The generator samples a random subtree of
the data (root node, then random strict descendants per branch) and lifts
the node labels into an AD-edge conjunctive query with all nodes output.

The paper sorts generated queries into a small-result group (2–50) and a
large-result group (200–1200); :func:`generate_query_groups` reproduces
that protocol with configurable bounds (result sizes scale with the
synthetic graph).

For the differential-test harness and the shared-subtree benchmarks this
module also provides :func:`random_labeled_graph` (seeded random data
graphs, cycles included) and :func:`random_query_batch` (random GTPQ
workloads with *deliberately overlapping subtrees*: a configurable
fraction of each batch grafts previously generated subtree patterns
under fresh roots, the family structure of tree-query association
mining).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..engine.gtea import GTEA
from ..graph.digraph import DataGraph
from ..graph.traversal import descendants
from ..query.attribute import AttributePredicate
from ..query.builder import QueryBuilder
from ..query.gtpq import GTPQ


@dataclass
class GeneratedQuery:
    query: GTPQ
    result_size: int


def random_embedded_query(
    graph: DataGraph, size: int, rng: random.Random, max_attempts: int = 200
) -> GTPQ | None:
    """One random tree pattern of ``size`` nodes embedded in ``graph``."""
    nodes = graph.num_nodes
    for __ in range(max_attempts):
        root = rng.randrange(nodes)
        below = list(descendants(graph, root))
        if len(below) < size - 1:
            continue
        builder = QueryBuilder()
        builder.backbone("n0", label=graph.label(root))
        anchors = [("n0", root)]
        ok = True
        for index in range(1, size):
            parent_id, parent_data = anchors[rng.randrange(len(anchors))]
            pool = list(descendants(graph, parent_data))
            if not pool:
                ok = False
                break
            data_node = rng.choice(pool)
            node_id = f"n{index}"
            builder.backbone(node_id, parent=parent_id, edge="ad",
                             label=graph.label(data_node))
            anchors.append((node_id, data_node))
        if ok:
            return builder.build()
    return None


# ----------------------------------------------------------------------
# Random graphs and overlapping query batches (oracle harness inputs)
# ----------------------------------------------------------------------
def random_labeled_graph(
    num_nodes: int,
    rng: random.Random,
    labels: str = "abcd",
    edge_prob: float = 0.18,
    cycle_edges: int = 2,
) -> DataGraph:
    """A seeded random data graph with labels drawn from ``labels``.

    Forward edges (``i -> j`` with ``i < j``) appear independently with
    probability ``edge_prob``; up to ``cycle_edges`` random back edges
    are added on top, so the graph is genuinely graph-structured (cycles
    and shared descendants), not a tree or DAG.
    """
    graph = DataGraph()
    for _ in range(num_nodes):
        graph.add_node(label=rng.choice(labels))
    for source in range(num_nodes):
        for target in range(source + 1, num_nodes):
            if rng.random() < edge_prob:
                graph.add_edge(source, target)
    for _ in range(cycle_edges):
        source = rng.randrange(num_nodes)
        target = rng.randrange(num_nodes)
        if source > target:
            graph.add_edge(source, target)
    return graph


@dataclass
class _SpecNode:
    """One node of a structural query pattern, independent of node ids.

    Shared specs are grafted *by reference* into multiple queries; the
    builders below never mutate a spec after it enters the sharing pool,
    so every query built from it carries an identical subtree (and hence
    identical canonical subtree fingerprints).
    """

    label: object
    backbone: bool
    edge: str  #: edge into this node ("ad"/"pc"); ignored for roots
    children: list["_SpecNode"] = field(default_factory=list)
    fs_kind: str | None = None  #: None (conjunction), "or", or "notlast"


def _random_spec(rng: random.Random, labels, size: int) -> _SpecNode:
    """Grow a random pattern of ``size`` nodes rooted at a backbone node."""
    root = _SpecNode(label=rng.choice(labels), backbone=True, edge="ad")
    nodes = [root]
    for _ in range(size - 1):
        parent = rng.choice(nodes)
        backbone = parent.backbone and rng.random() < 0.6
        edge = "pc" if rng.random() < 0.25 else "ad"
        child = _SpecNode(label=rng.choice(labels), backbone=backbone, edge=edge)
        parent.children.append(child)
        nodes.append(child)
    for node in nodes:
        predicate_children = [c for c in node.children if not c.backbone]
        if predicate_children and rng.random() < 0.35:
            node.fs_kind = rng.choice(["or", "notlast"])
    return root


def _spec_size(spec: _SpecNode) -> int:
    return 1 + sum(_spec_size(child) for child in spec.children)


def _build_query(root: _SpecNode, rng: random.Random) -> GTPQ:
    """Instantiate a spec with fresh node ids and random outputs."""
    builder = QueryBuilder()
    backbone_ids: list[str] = []
    counter = [0]

    def add(spec: _SpecNode, parent_id: str | None) -> None:
        node_id = f"n{counter[0]}"
        counter[0] += 1
        if parent_id is None:
            builder.backbone(node_id, label=spec.label)
        elif spec.backbone:
            builder.backbone(node_id, parent=parent_id, edge=spec.edge, label=spec.label)
        else:
            builder.predicate(node_id, parent=parent_id, edge=spec.edge, label=spec.label)
        if spec.backbone:
            backbone_ids.append(node_id)
        child_ids: list[str] = []
        for child in spec.children:
            child_ids.append(f"n{counter[0]}")
            add(child, node_id)
        predicate_ids = [
            child_id
            for child_id, child in zip(child_ids, spec.children)
            if not child.backbone
        ]
        if spec.fs_kind == "or" and len(predicate_ids) >= 2:
            builder.structural(node_id, " | ".join(predicate_ids))
        elif spec.fs_kind == "notlast" and predicate_ids:
            parts = predicate_ids[:-1] + [f"!{predicate_ids[-1]}"]
            builder.structural(node_id, " & ".join(parts))

    add(root, None)
    if rng.random() < 0.5 and len(backbone_ids) > 1:
        count = rng.randint(1, len(backbone_ids))
        outputs = sorted(rng.sample(backbone_ids, count))
        builder.outputs(*outputs)
    return builder.build()


def random_query_batch(
    graph: DataGraph,
    rng: random.Random,
    batch_size: int = 6,
    size_range: tuple[int, int] = (2, 5),
    overlap: float = 0.5,
) -> list[GTPQ]:
    """A random GTPQ workload with deliberately overlapping subtrees.

    Each query is either a fresh random pattern or — with probability
    ``overlap``, once the pool is primed — a *derived* pattern: a fresh
    root with a previously generated subtree grafted underneath (plus
    optional fresh filler children).  Derived queries reproduce the
    grafted subtree exactly, so its canonical subtree fingerprints
    coincide across the batch and the shared-plan DAG can dedup them.

    Labels are drawn from the graph's own label set — whole label values,
    so multi-character labels (e.g. XMark's ``"open_auction"``) survive
    intact — and patterns have a fighting chance of matching; batches
    still mix empty and nonempty answers, which is what a differential
    harness wants.
    """
    labels = sorted({graph.label(node) for node in graph.nodes()}, key=repr)
    pool: list[_SpecNode] = []
    queries: list[GTPQ] = []
    low, high = size_range
    for _ in range(batch_size):
        size = rng.randint(low, high)
        if pool and rng.random() < overlap:
            base = rng.choice(pool)
            root = _SpecNode(label=rng.choice(labels), backbone=True, edge="ad")
            root.children.append(base)
            filler = size - 1 - _spec_size(base)
            if filler > 0:
                root.children.append(_random_spec(rng, labels, filler))
        else:
            root = _random_spec(rng, labels, size)
        pool.append(root)
        pool.extend(child for child in root.children if _spec_size(child) > 1)
        queries.append(_build_query(root, rng))
    return queries


def generate_query_groups(
    graph: DataGraph,
    sizes: tuple[int, ...] = (5, 7, 9, 11, 13),
    queries_per_size: int = 15,
    small_range: tuple[int, int] = (2, 50),
    large_range: tuple[int, int] = (200, 1200),
    seed: int = 5,
    max_attempts: int = 400,
    engine: GTEA | None = None,
) -> dict[str, dict[int, list[GeneratedQuery]]]:
    """The paper's two query groups, per query size.

    Returns ``{"small": {size: [GeneratedQuery, ...]}, "large": {...}}``.
    Queries are evaluated with GTEA to classify by result size; generation
    keeps sampling until each bucket is filled (or attempts run out, in
    which case buckets may be short — callers should tolerate that for
    very small graphs).
    """
    rng = random.Random(seed)
    engine = engine if engine is not None else GTEA(graph)
    groups: dict[str, dict[int, list[GeneratedQuery]]] = {
        "small": {size: [] for size in sizes},
        "large": {size: [] for size in sizes},
    }
    for size in sizes:
        attempts = 0
        while attempts < max_attempts and (
            len(groups["small"][size]) < queries_per_size
            or len(groups["large"][size]) < queries_per_size
        ):
            attempts += 1
            query = random_embedded_query(graph, size, rng)
            if query is None:
                continue
            result_size = len(engine.evaluate(query))
            record = GeneratedQuery(query, result_size)
            if (
                small_range[0] <= result_size <= small_range[1]
                and len(groups["small"][size]) < queries_per_size
            ):
                groups["small"][size].append(record)
            elif (
                large_range[0] <= result_size <= large_range[1]
                and len(groups["large"][size]) < queries_per_size
            ):
                groups["large"][size].append(record)
    return groups


# ----------------------------------------------------------------------
# Skewed workloads (adaptive-executor benchmark inputs)
# ----------------------------------------------------------------------
def skewed_graph(scale: int, rng: random.Random) -> DataGraph:
    """A graph whose label statistics mislead the compile-time estimates.

    Label ``h`` is heavy (``20 * scale`` nodes) but every ``h`` node
    carries ``kind=0``, so a query atom pinning ``h`` *and* another
    ``kind`` is estimated at the full posting list while matching
    nothing.  Label ``t`` is absent from the label index's radar for
    attribute-only predicates (estimated at graph size) yet only
    ``scale`` nodes carry ``kind=1``.  Label ``m`` behaves as estimated.
    """
    graph = DataGraph()
    roots = [graph.add_node(label="r") for _ in range(2 * scale)]
    heavy = [graph.add_node({"kind": 0}, label="h") for _ in range(20 * scale)]
    mid = [graph.add_node(label="m") for _ in range(5 * scale)]
    rare = [graph.add_node({"kind": 1}, label="t") for _ in range(scale)]
    for root in roots:
        for pool in (heavy, mid, rare):
            for node in rng.sample(pool, max(1, len(pool) // 2)):
                graph.add_edge(root, node)
    return graph


def skewed_workload(
    scale: int = 4, repeats: int = 8, seed: int = 31
) -> tuple[DataGraph, list[GTPQ]]:
    """A (graph, queries) pair where runtime sizes contradict estimates.

    Three query shapes, ``repeats`` copies each (distinct output choices
    keep the copies' fingerprints distinct):

    * **skew-empty** — a backbone child pins the heavy label plus an
      impossible ``kind``: estimated at the full ``h`` posting list,
      actually empty.  The static order prunes it last; the adaptive
      order prunes it first and early-exits.
    * **skew-order** — a backbone child with an attribute-only predicate
      (estimated at graph size, actually tiny) next to a label-pinned
      sibling: the adaptive order flips the two.
    * **plain** — estimates match reality; both orders agree.
    """
    rng = random.Random(seed)
    graph = skewed_graph(scale, rng)
    queries: list[GTPQ] = []
    for copy in range(repeats):
        empty = (
            QueryBuilder()
            .backbone("root", predicate=AttributePredicate.label("r"))
            .backbone(
                "a",
                parent="root",
                predicate=AttributePredicate([("label", "=", "h"), ("kind", "=", 7)]),
            )
            .backbone("b", parent="root", predicate=AttributePredicate.label("m"))
            .backbone("c", parent="root", predicate=AttributePredicate.label("t"))
            .outputs(*(["root", "b", "c"][: 1 + copy % 3]))
            .build()
        )
        order = (
            QueryBuilder()
            .backbone("root", predicate=AttributePredicate.label("r"))
            .backbone(
                "a", parent="root", predicate=AttributePredicate([("kind", "=", 1)])
            )
            .backbone("b", parent="root", predicate=AttributePredicate.label("m"))
            .outputs(*(["root", "a", "b"][: 1 + copy % 3]))
            .build()
        )
        plain = (
            QueryBuilder()
            .backbone("root", predicate=AttributePredicate.label("r"))
            .backbone("b", parent="root", predicate=AttributePredicate.label("m"))
            .outputs(*(["root", "b"][: 1 + copy % 2]))
            .build()
        )
        queries.extend((empty, order, plain))
    return graph, queries


# ----------------------------------------------------------------------
# Shard-friendly workloads (parallel-executor benchmark inputs)
# ----------------------------------------------------------------------
def parallel_graph(scale: int, rng: random.Random, span: int = 30) -> DataGraph:
    """A deep local-span DAG whose AD pruning is shard-divisible.

    ``600 * scale`` nodes over three labels; every node draws two
    incoming edges from the ``span`` nodes before it (O(n·span)
    generation, no quadratic pair loop), plus a couple of local back
    edges so the graph is not a pure DAG.  The local-span structure
    yields long reachability chains, so AD valuations do real per-chain
    scanning work *per candidate*.

    A small **early slice** of nodes (ids ``span .. span + n/100``, all
    labels) carries ``kind=1``.  Queries that funnel into that slice do
    heavy downward pruning — every broad candidate set is valuated
    against a tiny, early target set, so most candidates scan their full
    index entry lists before failing — while survivor sets (and with
    them the upward/matching-graph/collect suffix) stay small.  That is
    the shape candidate sharding divides across workers.
    """
    graph = DataGraph()
    num_nodes = 600 * scale
    special = range(span, span + max(12, num_nodes // 100))
    for node in range(num_nodes):
        attrs = {"kind": 1} if node in special else None
        graph.add_node(attrs, label=rng.choice("abc"))
    for target in range(1, num_nodes):
        lower = max(0, target - span)
        for _ in range(2):
            graph.add_edge(rng.randrange(lower, target), target)
    for _ in range(2):
        target = rng.randrange(span, num_nodes)
        graph.add_edge(target, rng.randrange(max(0, target - span), target))
    return graph


def parallel_workload(
    scale: int = 4, queries: int = 6, seed: int = 47
) -> tuple[DataGraph, list[GTPQ]]:
    """A (graph, queries) pair whose prune phase shards near-linearly.

    AD-heavy funnel patterns over :func:`parallel_graph`, alternating
    two shapes (distinct output choices keep the copies' fingerprints
    distinct):

    * **deep** — ``a → b → (kind=1)``: the ``b`` visit valuates ~n/3
      candidates against the tiny early slice's contour, the ``a``
      visit against ``b``'s small survivor set;
    * **wide** — ``a`` with two AD children pinning ``kind=1`` plus a
      label each: one visit, two-child valuation per candidate.

    Because the funnel target sits early in the DAG, most candidates
    exhaust their index entry lists before failing — real per-candidate
    work that divides evenly across shards — and the small survivor
    sets keep the (unsharded) suffix phases negligible.  (Contrast
    :func:`skewed_workload`, whose shapes are cheap per candidate —
    sharding them moves no real work.)
    """
    rng = random.Random(seed)
    graph = parallel_graph(scale, rng)
    workload: list[GTPQ] = []
    for copy in range(queries):
        if copy % 2 == 0:
            builder = (
                QueryBuilder()
                .backbone("a", predicate=AttributePredicate.label("a"))
                .backbone("b", parent="a", predicate=AttributePredicate.label("b"))
                .backbone("c", parent="b", predicate=AttributePredicate([("kind", "=", 1)]))
            )
            backbone = ["a", "b", "c"]
        else:
            builder = (
                QueryBuilder()
                .backbone("a", predicate=AttributePredicate.label("a"))
                .backbone(
                    "b",
                    parent="a",
                    predicate=AttributePredicate([("label", "=", "b"), ("kind", "=", 1)]),
                )
                .backbone(
                    "c",
                    parent="a",
                    predicate=AttributePredicate([("label", "=", "c"), ("kind", "=", 1)]),
                )
            )
            backbone = ["a", "b", "c"]
        builder.outputs(*backbone[: 1 + (copy // 2) % 3])
        workload.append(builder.build())
    return graph, workload


def funnel_workload(
    scale: int = 4, queries: int = 6, seed: int = 47
) -> tuple[DataGraph, list[GTPQ]]:
    """A (graph, queries) pair exercising *every* sharded phase.

    :func:`parallel_workload` funnels into the ``kind=1`` slice at the
    *bottom* of the pattern, so its survivor sets — and with them the
    whole upward/suffix half of the pipeline — stay tiny.  This variant
    puts the slice in the *middle*::

        a (label "a", broad)  -AD->  b (kind=1, tiny)  -AD->  c (label, broad)

    with ``c`` as the output (plus ``a`` on alternating copies to vary
    fingerprints):

    * **downward** — ``c`` is a leaf (inline); ``b``'s visit is small;
      ``a``'s visit valuates ~n/3 candidates against ``b``'s contour —
      the sharded downward bulk;
    * **upward** — the prime path re-refines ``b`` from ``a`` (small)
      and then ``c`` from ``b``: ~n/3 surviving ``c`` candidates
      checked against the successor contour — upward work of the same
      order as the downward bulk, which only a sharded upward pass can
      divide;
    * **suffix** — the matching graph bridges through the tiny ``b``
      set, so BuildMatchingGraph/CollectResults (always serial) stay a
      small fraction even though the *result list* is broad.

    End-to-end speedup on this workload therefore measures the whole
    sharded pipeline, not just Procedure 6.
    """
    rng = random.Random(seed)
    graph = parallel_graph(scale, rng)
    # (head, tail) label pairs — every copy gets a distinct fingerprint;
    # all labels are equally broad, so the shape's cost is unchanged.
    label_pairs = [("a", "c"), ("a", "b"), ("b", "c"), ("b", "a"), ("c", "a"), ("c", "b")]
    workload: list[GTPQ] = []
    for copy in range(queries):
        head, tail = label_pairs[copy % len(label_pairs)]
        workload.append(
            QueryBuilder()
            .backbone("a", predicate=AttributePredicate.label(head))
            .backbone("b", parent="a", predicate=AttributePredicate([("kind", "=", 1)]))
            .backbone("c", parent="b", predicate=AttributePredicate.label(tail))
            .outputs("c")
            .build()
        )
    return graph, workload


def enclave_graph(scale: int, rng: random.Random, span: int = 20) -> DataGraph:
    """A large DAG with a tiny rare-label *enclave* at its sink end.

    The large-graph/small-footprint shape of per-query index costing:

    * **bulk** — ``2000 * scale`` nodes over labels ``a``/``b``/``c``
      with ~2.5 local-span edges per node (O(n·span) generation), so
      the graph clears both the tiny-graph and near-tree rungs of the
      index ladder and a full build pays real 3-hop money;
    * **enclave** — ``~2%`` of the nodes, labels ``q``/``r``/``s``,
      edges strictly inside the enclave (bulk→enclave bridges exist,
      enclave→bulk edges do not), so the descendant cone of any
      enclave-label candidate set stays inside the enclave.

    Queries over the rare labels therefore have a footprint two orders
    of magnitude below the graph — a transitive closure over just that
    cone answers them without ever paying the full-graph build.
    """
    graph = DataGraph()
    bulk = 2000 * scale
    enclave = max(40, bulk // 50)
    for __ in range(bulk):
        graph.add_node(label=rng.choice("abc"))
    for target in range(1, bulk):
        lower = max(0, target - span)
        graph.add_edge(rng.randrange(lower, target), target)
        graph.add_edge(rng.randrange(lower, target), target)
        if target % 2:
            graph.add_edge(rng.randrange(lower, target), target)
    base = bulk
    for __ in range(enclave):
        graph.add_node(label=rng.choice("qrs"))
    for offset in range(1, enclave):
        target = base + offset
        lower = base + max(0, offset - span)
        graph.add_edge(rng.randrange(lower, target), target)
        graph.add_edge(rng.randrange(lower, target), target)
    for __ in range(enclave // 4):
        graph.add_edge(rng.randrange(bulk), base + rng.randrange(enclave))
    return graph


def index_choice_workload(
    scale: int = 2, queries: int = 6, seed: int = 97
) -> tuple[DataGraph, list[GTPQ]]:
    """A (graph, queries) pair where partial indexes beat full builds.

    AD chains over the rare enclave labels of :func:`enclave_graph` —
    every candidate source is a short label posting list whose
    descendant cone stays inside the enclave, so per-query costing
    (:func:`repro.plan.cost.choose_scoped_index`) picks a partial index
    and the cold first answer skips the full-graph build entirely.
    Label rotations keep the copies' fingerprints (and footprints'
    inner work) distinct while staying inside the enclave.
    """
    rng = random.Random(seed)
    graph = enclave_graph(scale, rng)
    label_pairs = [("q", "r"), ("q", "s"), ("r", "s"), ("r", "q"), ("s", "q"), ("s", "r")]
    workload: list[GTPQ] = []
    for copy in range(queries):
        head, tail = label_pairs[copy % len(label_pairs)]
        workload.append(
            QueryBuilder()
            .backbone("a", predicate=AttributePredicate.label(head))
            .backbone("b", parent="a", predicate=AttributePredicate.label(tail))
            .outputs("a", "b")
            .build()
        )
    return graph, workload
