"""Random meaningful query generation (paper Section 5.2).

"We designed a query generator to randomly produce meaningful queries.
Each query node is associated with a label randomly chosen from the data
graph" — meaningful here means the pattern is *embedded* in the graph, so
its result set is nonempty.  The generator samples a random subtree of
the data (root node, then random strict descendants per branch) and lifts
the node labels into an AD-edge conjunctive query with all nodes output.

The paper sorts generated queries into a small-result group (2–50) and a
large-result group (200–1200); :func:`generate_query_groups` reproduces
that protocol with configurable bounds (result sizes scale with the
synthetic graph).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..engine.gtea import GTEA
from ..graph.digraph import DataGraph
from ..graph.traversal import descendants
from ..query.builder import QueryBuilder
from ..query.gtpq import GTPQ


@dataclass
class GeneratedQuery:
    query: GTPQ
    result_size: int


def random_embedded_query(
    graph: DataGraph, size: int, rng: random.Random, max_attempts: int = 200
) -> GTPQ | None:
    """One random tree pattern of ``size`` nodes embedded in ``graph``."""
    nodes = graph.num_nodes
    for __ in range(max_attempts):
        root = rng.randrange(nodes)
        below = list(descendants(graph, root))
        if len(below) < size - 1:
            continue
        builder = QueryBuilder()
        builder.backbone("n0", label=graph.label(root))
        anchors = [("n0", root)]
        ok = True
        for index in range(1, size):
            parent_id, parent_data = anchors[rng.randrange(len(anchors))]
            pool = list(descendants(graph, parent_data))
            if not pool:
                ok = False
                break
            data_node = rng.choice(pool)
            node_id = f"n{index}"
            builder.backbone(node_id, parent=parent_id, edge="ad",
                             label=graph.label(data_node))
            anchors.append((node_id, data_node))
        if ok:
            return builder.build()
    return None


def generate_query_groups(
    graph: DataGraph,
    sizes: tuple[int, ...] = (5, 7, 9, 11, 13),
    queries_per_size: int = 15,
    small_range: tuple[int, int] = (2, 50),
    large_range: tuple[int, int] = (200, 1200),
    seed: int = 5,
    max_attempts: int = 400,
    engine: GTEA | None = None,
) -> dict[str, dict[int, list[GeneratedQuery]]]:
    """The paper's two query groups, per query size.

    Returns ``{"small": {size: [GeneratedQuery, ...]}, "large": {...}}``.
    Queries are evaluated with GTEA to classify by result size; generation
    keeps sampling until each bucket is filled (or attempts run out, in
    which case buckets may be short — callers should tolerate that for
    very small graphs).
    """
    rng = random.Random(seed)
    engine = engine if engine is not None else GTEA(graph)
    groups: dict[str, dict[int, list[GeneratedQuery]]] = {
        "small": {size: [] for size in sizes},
        "large": {size: [] for size in sizes},
    }
    for size in sizes:
        attempts = 0
        while attempts < max_attempts and (
            len(groups["small"][size]) < queries_per_size
            or len(groups["large"][size]) < queries_per_size
        ):
            attempts += 1
            query = random_embedded_query(graph, size, rng)
            if query is None:
                continue
            result_size = len(engine.evaluate(query))
            record = GeneratedQuery(query, result_size)
            if (
                small_range[0] <= result_size <= small_range[1]
                and len(groups["small"][size]) < queries_per_size
            ):
                groups["small"][size].append(record)
            elif (
                large_range[0] <= result_size <= large_range[1]
                and len(groups["large"][size]) < queries_per_size
            ):
                groups["large"][size].append(record)
    return groups
