"""XMark-like document graph generator (paper Section 5.1, Table 1).

Mirrors the XMark benchmark schema [24] at configurable scale: a document
tree (site / regions / people / open_auctions / closed_auctions /
categories) plus ID/IDREF reference edges (``personref -> person``,
``itemref -> item``, ``seller -> person``, …) that turn it into the
"trees connected by cross edges" graph shape the paper evaluates on.

Node attributes follow the paper's setup: the ``label`` of most nodes is
the element tag, while person and item nodes are randomly classified into
ten groups (``person0..person9`` / ``item0..item9``) to stand for
distinct attribute values.

Determinism: everything derives from a seeded ``random.Random``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.digraph import DataGraph

#: number of label groups for person/item nodes (paper Section 5.1).
NUM_GROUPS = 10


@dataclass
class XMarkGraph:
    """A generated XMark-like graph with the metadata baselines need."""

    graph: DataGraph
    scale: float
    #: the document-tree edges (forest view for tree algorithms).
    forest_edges: set[tuple[int, int]] = field(default_factory=set)
    persons: list[int] = field(default_factory=list)
    items: list[int] = field(default_factory=list)
    open_auctions: list[int] = field(default_factory=list)


def generate_xmark(scale: float = 0.1, seed: int = 42) -> XMarkGraph:
    """Generate an XMark-like graph.

    Args:
        scale: scaling factor; entity counts grow linearly with it.  The
            paper uses factors 0.5–4 on a C++ code base; this pure-Python
            reproduction sweeps the same shape at smaller absolute sizes
            (see DESIGN.md substitutions).
        seed: RNG seed.
    """
    rng = random.Random(seed)
    num_persons = max(2, int(2550 * scale))
    num_items = max(2, int(2175 * scale))
    num_open = max(2, int(2175 * scale))
    num_closed = max(1, int(975 * scale))
    num_categories = max(1, int(100 * scale))

    out = XMarkGraph(graph=DataGraph(), scale=scale)
    graph = out.graph

    def node(label: str) -> int:
        return graph.add_node(label=label)

    def child(parent: int, label: str) -> int:
        target = node(label)
        graph.add_edge(parent, target)
        out.forest_edges.add((parent, target))
        return target

    def reference(source: int, target: int) -> None:
        graph.add_edge(source, target)

    site = node("site")

    categories = child(site, "categories")
    category_nodes = []
    for __ in range(num_categories):
        category = child(categories, "category")
        child(category, "name")
        category_nodes.append(category)

    people = child(site, "people")
    for __ in range(num_persons):
        person = child(people, f"person{rng.randrange(NUM_GROUPS)}")
        out.persons.append(person)
        child(person, "name")
        child(person, "emailaddress")
        if rng.random() < 0.6:
            address = child(person, "address")
            child(address, "street")
            child(address, "city")
            child(address, "country")
        if rng.random() < 0.7:
            profile = child(person, "profile")
            for __ in range(rng.randrange(3)):
                child(profile, "interest")
            if rng.random() < 0.7:
                child(profile, "education")
            child(profile, "age")
        if rng.random() < 0.3:
            child(person, "phone")

    regions = child(site, "regions")
    region_nodes = [child(regions, name) for name in ("africa", "asia", "europe")]
    for index in range(num_items):
        item = child(region_nodes[index % len(region_nodes)],
                     f"item{rng.randrange(NUM_GROUPS)}")
        out.items.append(item)
        child(item, "location")
        child(item, "name")
        child(item, "quantity")
        if rng.random() < 0.5:
            mailbox = child(item, "mailbox")
            for __ in range(rng.randrange(3)):
                mail = child(mailbox, "mail")
                child(mail, "date")
        if rng.random() < 0.4:
            child(item, "payment")

    open_auctions = child(site, "open_auctions")
    for __ in range(num_open):
        auction = child(open_auctions, "open_auction")
        out.open_auctions.append(auction)
        child(auction, "initial")
        child(auction, "current")
        for __ in range(rng.randrange(4)):
            bidder = child(auction, "bidder")
            child(bidder, "date")
            child(bidder, "increase")
            personref = child(bidder, "personref")
            reference(personref, rng.choice(out.persons))
        itemref = child(auction, "itemref")
        reference(itemref, rng.choice(out.items))
        seller = child(auction, "seller")
        reference(seller, rng.choice(out.persons))
        if rng.random() < 0.5:
            annotation = child(auction, "annotation")
            author = child(annotation, "author")
            reference(author, rng.choice(out.persons))

    closed_auctions = child(site, "closed_auctions")
    for __ in range(num_closed):
        auction = child(closed_auctions, "closed_auction")
        child(auction, "price")
        child(auction, "date")
        seller = child(auction, "seller")
        reference(seller, rng.choice(out.persons))
        buyer = child(auction, "buyer")
        reference(buyer, rng.choice(out.persons))
        itemref = child(auction, "itemref")
        reference(itemref, rng.choice(out.items))

    return out


def table1_row(xmark: XMarkGraph) -> dict[str, float]:
    """Table 1-style statistics row for one generated dataset."""
    return {
        "scale": xmark.scale,
        "nodes_millions": round(xmark.graph.num_nodes / 1e6, 4),
        "edges_millions": round(xmark.graph.num_edges / 1e6, 4),
        "nodes": xmark.graph.num_nodes,
        "edges": xmark.graph.num_edges,
    }
