"""arXiv/HEP-Th-like citation-and-authorship graph (paper Section 5.2).

The paper's real-life graph (derived from the KDL HEP-Th dump) has 9562
nodes, 28120 edges and 1132 distinct labels: paper nodes labeled by
area+journal, author nodes by email domain, edges for citations and
authorship.  The dump is not bundled, so this generator produces a
synthetic graph with matched statistics and — importantly for Fig. 9's
story — a *denser and deeper* reachability structure than XMark, which is
what degrades SSPI/pool-based processing.

Shape: papers are ordered by publication time; each paper cites a few
earlier papers (recency-biased) and lists 1–4 authors (leaf nodes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.digraph import DataGraph


@dataclass
class ArxivGraph:
    graph: DataGraph
    papers: list[int] = field(default_factory=list)
    authors: list[int] = field(default_factory=list)


def generate_arxiv(
    num_papers: int = 8000,
    num_authors: int = 1562,
    num_paper_labels: int = 1000,
    num_author_labels: int = 132,
    mean_citations: float = 1.0,
    citation_window: int = 400,
    seed: int = 7,
) -> ArxivGraph:
    """Generate the synthetic HEP-Th-like graph.

    Defaults reproduce the paper's totals: 9562 nodes, ~28k edges
    (authorship ≈ 2.5/paper + citations ≈ 1/paper), 1132 labels.

    Args:
        num_papers / num_authors: node counts.
        num_paper_labels: distinct area+journal combinations.
        num_author_labels: distinct email domains.
        mean_citations: expected citations per paper.
        citation_window: papers cite within this many predecessors
            (recency bias; keeps the DAG deep rather than shallow-wide).
        seed: RNG seed.
    """
    rng = random.Random(seed)
    out = ArxivGraph(graph=DataGraph())
    graph = out.graph

    for __ in range(num_authors):
        label = f"domain{rng.randrange(num_author_labels)}"
        out.authors.append(graph.add_node({"label": label, "kind": "author"}))

    # Papers in publication order; edges go newer -> older (citation) and
    # paper -> author (authorship), so the graph is a DAG.
    for index in range(num_papers):
        label = f"paper_cat{rng.randrange(num_paper_labels)}"
        paper = graph.add_node({"label": label, "kind": "paper", "time": index})
        for __ in range(rng.randint(1, 4)):
            graph.add_edge(paper, rng.choice(out.authors))
        if out.papers:
            citations = min(
                len(out.papers),
                _poissonish(rng, mean_citations),
            )
            window = out.papers[-citation_window:]
            for __ in range(citations):
                graph.add_edge(paper, rng.choice(window))
        out.papers.append(paper)
    return out


def _poissonish(rng: random.Random, mean: float) -> int:
    """Small-mean Poisson-like sampler without numpy dependency."""
    # Knuth's method is fine for mean <= 4.
    import math

    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
