"""The paper's query workloads (Figs. 7 and 11, Tables 3 and 4, Example 1).

Node-id conventions (documented against the figures):

* Fig. 7 / Fig. 11 queries use the XMark element names; reference hops are
  explicit PC edges through the ref elements (``personref``, ``seller``,
  ``item``) so tree-decomposed baselines can split at them;
* in the Fig. 11 family the node named ``item`` is the *itemref* element
  (so Table 4's ``fs(open_auction) = ... item ...`` predicates read
  verbatim) and ``item_elem`` is the referenced item element (so Table 3's
  "item" output column and Table 4's ``fs(item)`` map to ``item_elem``).
"""

from __future__ import annotations

from ..logic import parse_formula
from ..query.attribute import AttributePredicate
from ..query.builder import QueryBuilder
from ..query.gtpq import GTPQ

#: cross (reference) children of the Fig. 7 queries, per variant.
FIG7_CROSS = {
    "q1": {"person"},
    "q2": {"person", "item"},
    "q3": {"person", "item", "person2"},
}

#: cross children of the Fig. 11 query family.
FIG11_CROSS = {"person", "person2", "item_elem"}


def fig7_query(
    variant: str,
    person_group: int = 0,
    item_group: int = 0,
    seller_group: int = 0,
) -> GTPQ:
    """Q1/Q2/Q3 of Fig. 7 (conjunctive, all nodes output).

    Args:
        variant: ``"q1"`` | ``"q2"`` | ``"q3"``.
        person_group / item_group / seller_group: the random label groups
            the paper draws per query instance.
    """
    builder = (
        QueryBuilder()
        .backbone("open_auction", label="open_auction")
        .backbone("bidder", parent="open_auction", edge="pc", label="bidder")
        .backbone("personref", parent="bidder", edge="pc", label="personref")
        .backbone("person", parent="personref", edge="pc",
                  label=f"person{person_group}")
        .backbone("education", parent="person", edge="ad", label="education")
        .backbone("address", parent="person", edge="pc", label="address")
        .backbone("city", parent="address", edge="pc", label="city")
        .backbone("current", parent="open_auction", edge="pc", label="current")
    )
    if variant in ("q2", "q3"):
        builder.backbone("item_ref", parent="open_auction", edge="pc",
                         label="itemref")
        builder.backbone("item", parent="item_ref", edge="pc",
                         label=f"item{item_group}")
        builder.backbone("location", parent="item", edge="pc", label="location")
    if variant == "q3":
        builder.backbone("seller", parent="open_auction", edge="pc",
                         label="seller")
        builder.backbone("person2", parent="seller", edge="pc",
                         label=f"person{seller_group}")
        builder.backbone("profile", parent="person2", edge="pc",
                         label="profile")
    if variant not in ("q1", "q2", "q3"):
        raise ValueError(f"unknown Fig. 7 variant {variant!r}")
    return builder.build()


#: Table 3: output nodes per Exp-1 query (ids per module docstring).
TABLE3_OUTPUTS: dict[str, list[str] | None] = {
    "Q4": ["open_auction"],
    "Q5": ["open_auction", "bidder", "seller"],
    "Q6": ["open_auction", "bidder", "seller", "city", "profile"],
    "Q7": ["open_auction", "item_elem", "location"],
    "Q8": None,  # all query nodes
}

#: Table 4: structural predicates per Exp-2 query.
TABLE4_PREDICATES: dict[str, dict[str, str]] = {
    "DIS1": {"open_auction": "bidder | seller"},
    "DIS2": {"open_auction": "bidder | seller",
             "item_elem": "mailbox | location"},
    "DIS3": {"open_auction": "bidder | seller | item"},
    "NEG1": {"person": "!education"},
    "NEG2": {"open_auction": "!bidder", "person": "!education"},
    "NEG3": {"open_auction": "!bidder & !seller", "person": "!education"},
    "DIS_NEG1": {"open_auction": "!bidder | seller", "person": "!education"},
    "DIS_NEG2": {"open_auction": "(!bidder & seller) | (bidder & !seller)"},
    "DIS_NEG3": {"open_auction": "(!bidder & seller) | (bidder & !seller)",
                 "person": "!education"},
    "DIS_NEG4": {
        "open_auction":
            "(!bidder & seller & item) | (bidder & !seller & !item)",
        "person": "!education",
    },
}

#: the Fig. 11 tree: node -> (parent, edge type, label).
_FIG11_SHAPE: list[tuple[str, str | None, str, str]] = [
    ("open_auction", None, "pc", "open_auction"),
    ("bidder", "open_auction", "pc", "bidder"),
    ("personref", "bidder", "pc", "personref"),
    ("person", "personref", "pc", "person{pg}"),
    ("education", "person", "ad", "education"),
    ("address", "person", "pc", "address"),
    ("city", "address", "pc", "city"),
    ("seller", "open_auction", "pc", "seller"),
    ("person2", "seller", "pc", "person{sg}"),
    ("profile", "person2", "pc", "profile"),
    ("item", "open_auction", "pc", "itemref"),
    ("item_elem", "item", "pc", "item{ig}"),
    ("location", "item_elem", "pc", "location"),
    ("mailbox", "item_elem", "pc", "mailbox"),
    ("mail", "mailbox", "pc", "mail"),
]


def fig11_query(
    structural: dict[str, str] | None = None,
    outputs: list[str] | None = None,
    person_group: int = 0,
    seller_group: int = 1,
    item_group: int = 0,
) -> GTPQ:
    """The Fig. 11 query with optional Table 4 predicates / Table 3 outputs.

    Nodes named as a variable in any structural predicate become predicate
    nodes (with their whole subtrees); when ``outputs`` is ``None`` all
    remaining backbone nodes are output nodes.
    """
    structural = dict(structural or {})
    formulas = {
        node_id: parse_formula(text) for node_id, text in structural.items()
    }
    predicate_roots: set[str] = set()
    for formula in formulas.values():
        predicate_roots.update(formula.variables())

    parent_of = {n: p for n, p, __, ___ in _FIG11_SHAPE if p is not None}

    def is_predicate(node_id: str) -> bool:
        current: str | None = node_id
        while current is not None:
            if current in predicate_roots:
                return True
            current = parent_of.get(current)
        return False

    builder = QueryBuilder()
    groups = {"pg": person_group, "sg": seller_group, "ig": item_group}
    for node_id, parent, edge, label_template in _FIG11_SHAPE:
        label = label_template.format(**groups)
        kwargs = {"label": label}
        if parent is not None:
            kwargs["parent"] = parent
            kwargs["edge"] = edge
        if parent is not None and is_predicate(node_id):
            builder.predicate(node_id, **kwargs)
        else:
            builder.backbone(node_id, **kwargs)
    for node_id, formula in formulas.items():
        builder.structural(node_id, formula)
    if outputs is not None:
        builder.outputs(*outputs)
    return builder.build()


def exp1_query(name: str, **groups) -> GTPQ:
    """Q4–Q8 of Exp-1 (conjunctive; outputs per Table 3)."""
    return fig11_query(outputs=TABLE3_OUTPUTS[name], **groups)


def exp2_query(name: str, **groups) -> GTPQ:
    """The Exp-2 GTPQs (Table 4 predicates; all-backbone outputs)."""
    return fig11_query(structural=TABLE4_PREDICATES[name], **groups)


# ----------------------------------------------------------------------
# Example 1 (DBLP): the motivating queries of the introduction.
# ----------------------------------------------------------------------
def dblp_example_query(variant: str) -> GTPQ:
    """Q1/Q2/Q3 of Example 1 over the DBLP-like graph.

    Q1: papers by Alice AND Bob, published 2000–2010 (conjunctive).
    Q2: papers by Alice OR Bob,   published 2000–2010 (disjunction).
    Q3: papers by Alice NOT co-authored with Bob, 2000–2010 (negation).
    Outputs: paper title/year and conference title, as in Fig. 1's stars.
    """
    year_range = AttributePredicate(
        [("label", "=", "year"), ("value", ">=", 2000), ("value", "<=", 2010)]
    )
    alice = AttributePredicate([("label", "=", "author"), ("value", "=", "Alice")])
    bob = AttributePredicate([("label", "=", "author"), ("value", "=", "Bob")])
    builder = (
        QueryBuilder()
        .backbone("paper", label="inproceedings")
        .predicate("alice", parent="paper", edge="pc", predicate=alice)
        .predicate("bob", parent="paper", edge="pc", predicate=bob)
        .backbone("title", parent="paper", edge="pc", label="title")
        .backbone("year", parent="paper", edge="pc", label="year")
        .backbone("crossref", parent="paper", edge="pc", label="crossref")
        .backbone("conf", parent="crossref", edge="pc", label="proceedings")
        .backbone("conf_year", parent="conf", edge="pc", predicate=year_range)
        .backbone("conf_title", parent="conf", edge="pc", label="title")
    )
    if variant == "q1":
        builder.structural("paper", "alice & bob")
    elif variant == "q2":
        builder.structural("paper", "alice | bob")
    elif variant == "q3":
        builder.structural("paper", "alice & !bob")
    else:
        raise ValueError(f"unknown Example 1 variant {variant!r}")
    return builder.outputs("title", "year", "conf_title").build()
