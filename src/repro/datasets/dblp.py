"""DBLP-like bibliography graph for the paper's Example 1.

A DBLP XML document stores ``inproceedings`` (papers) and ``proceedings``
(volumes) separately, linked by ``crossref`` elements — "the underlying
data structure is clearly a graph".  This generator builds exactly that
shape so the introduction's queries Q1–Q3 (Alice/Bob, year range,
negation) are runnable end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.digraph import DataGraph

AUTHOR_POOL = [
    "Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace", "Heidi",
]


@dataclass
class DblpGraph:
    graph: DataGraph
    inproceedings: list[int] = field(default_factory=list)
    proceedings: list[int] = field(default_factory=list)
    forest_edges: set[tuple[int, int]] = field(default_factory=set)


def generate_dblp(
    num_proceedings: int = 30,
    papers_per_proceedings: int = 12,
    seed: int = 11,
) -> DblpGraph:
    """Generate a DBLP-like graph.

    Every paper gets 1–3 authors from a small pool, a title, a year
    element, and a ``crossref`` child whose reference edge points at the
    containing proceedings (which carries ``year`` and ``title``).
    """
    rng = random.Random(seed)
    out = DblpGraph(graph=DataGraph())
    graph = out.graph

    dblp = graph.add_node(label="dblp")

    def child(parent: int, label: str, attrs: dict | None = None) -> int:
        payload = {"label": label}
        if attrs:
            payload.update(attrs)
        target = graph.add_node(payload)
        graph.add_edge(parent, target)
        out.forest_edges.add((parent, target))
        return target

    for __ in range(num_proceedings):
        year = rng.randint(1995, 2015)
        proceedings = child(dblp, "proceedings")
        out.proceedings.append(proceedings)
        child(proceedings, "title")
        child(proceedings, "year", {"value": year})
        child(proceedings, "booktitle")
        for __ in range(papers_per_proceedings):
            paper = child(dblp, "inproceedings")
            out.inproceedings.append(paper)
            child(paper, "title")
            child(paper, "year", {"value": year})
            for author in rng.sample(AUTHOR_POOL, rng.randint(1, 3)):
                child(paper, "author", {"value": author})
            crossref = child(paper, "crossref")
            graph.add_edge(crossref, proceedings)  # the reference edge
    return out
