"""Dataset generators and paper workloads (S8 in DESIGN.md)."""

from .arxiv import ArxivGraph, generate_arxiv
from .dblp import AUTHOR_POOL, DblpGraph, generate_dblp
from .random_queries import (
    GeneratedQuery,
    enclave_graph,
    funnel_workload,
    index_choice_workload,
    generate_query_groups,
    parallel_graph,
    parallel_workload,
    random_embedded_query,
    random_labeled_graph,
    random_query_batch,
    skewed_graph,
    skewed_workload,
)
from .workloads import (
    FIG7_CROSS,
    FIG11_CROSS,
    TABLE3_OUTPUTS,
    TABLE4_PREDICATES,
    dblp_example_query,
    exp1_query,
    exp2_query,
    fig7_query,
    fig11_query,
)
from .xmark import NUM_GROUPS, XMarkGraph, generate_xmark, table1_row

__all__ = [
    "AUTHOR_POOL",
    "ArxivGraph",
    "DblpGraph",
    "FIG11_CROSS",
    "FIG7_CROSS",
    "GeneratedQuery",
    "NUM_GROUPS",
    "TABLE3_OUTPUTS",
    "TABLE4_PREDICATES",
    "XMarkGraph",
    "dblp_example_query",
    "exp1_query",
    "exp2_query",
    "fig11_query",
    "enclave_graph",
    "fig7_query",
    "funnel_workload",
    "generate_arxiv",
    "generate_dblp",
    "generate_query_groups",
    "generate_xmark",
    "index_choice_workload",
    "parallel_graph",
    "parallel_workload",
    "random_embedded_query",
    "random_labeled_graph",
    "random_query_batch",
    "skewed_graph",
    "skewed_workload",
    "table1_row",
]
