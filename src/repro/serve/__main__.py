"""``python -m repro.serve`` — TCP JSON-lines front over an XMark graph.

Demo/ops entry point: builds the deterministic XMark graph for
``--scale``/``--seed`` (the same generator the benchmarks use, so a
warm store produced by ``benchmarks/bench_serving.py`` or
``python -m repro.store.restart`` matches by content fingerprint),
starts a :class:`~repro.serve.QueryServer` and serves until interrupted.
"""

from __future__ import annotations

import argparse
import asyncio

from ..datasets import generate_xmark
from .server import QueryServer, serve_tcp


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.05, help="XMark scale factor")
    parser.add_argument("--seed", type=int, default=42, help="XMark generator seed")
    parser.add_argument("--store", default=None, help="warm-store directory to share")
    parser.add_argument("--codegen", action="store_true", help="specialize plans")
    parser.add_argument(
        "--seed-reports", default=None, help="bench reports dir to seed calibration from"
    )
    return parser


async def _run(args) -> None:
    graph = generate_xmark(scale=args.scale, seed=args.seed).graph
    server = QueryServer(
        graph,
        workers=args.workers,
        store=args.store,
        codegen="auto" if args.codegen else False,
        seed_reports=args.seed_reports,
    )
    await server.start()
    tcp = await serve_tcp(server, host=args.host, port=args.port)
    address = tcp.sockets[0].getsockname()
    print(f"serving on {address[0]}:{address[1]} with {args.workers} workers", flush=True)
    try:
        await tcp.serve_forever()
    finally:
        if args.store is not None:
            server.persist()
        await server.stop()


def main(argv=None) -> None:
    asyncio.run(_run(build_parser().parse_args(argv)))


if __name__ == "__main__":
    main()
