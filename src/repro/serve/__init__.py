"""The serving tier: N warmed session workers behind one asyncio front.

:class:`QueryServer` owns a pool of :class:`~repro.engine.QuerySession`
workers over one data graph, all rehydrated from one shared warm store
(:mod:`repro.store`), and dispatches queries onto them from an asyncio
event loop — the shape the ROADMAP's "heavy traffic" north star needs:
pay the index/plan/codegen cost once (in a previous process, even), then
amortize it across every concurrent request.

Snapshot consistency: the server pins the graph version it started with
and refuses requests after the graph mutates
(:class:`StaleSnapshotError`) until :meth:`QueryServer.refresh`
quiesces the workers and re-pins — a request never sees half-invalidated
caches.

``python -m repro.serve`` starts the TCP JSON-lines front.
"""

from .server import (
    QueryServer,
    ServerStats,
    StaleSnapshotError,
    percentile,
    serve_tcp,
)

__all__ = [
    "QueryServer",
    "ServerStats",
    "StaleSnapshotError",
    "percentile",
    "serve_tcp",
]
