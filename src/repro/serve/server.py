"""Multi-worker query serving over one warmed store.

See the package docstring for the model.  The implementation is a plain
asyncio checkout queue over ``N`` independent :class:`QuerySession`
workers: each worker owns its own caches and engines (no locks on the
hot path), all warmed from the same :class:`~repro.store.ArtifactStore`,
and evaluation runs in a thread pool so the event loop stays free to
accept requests while Python executes query code.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from ..engine.session import QuerySession
from ..graph.digraph import DataGraph
from ..store import ArtifactStore


class StaleSnapshotError(RuntimeError):
    """The graph mutated after the server pinned its snapshot.

    Raised by :meth:`QueryServer.submit` instead of letting a request
    race worker-by-worker cache invalidation (half the workers answering
    from the old caches, half rebuilding).  Call
    :meth:`QueryServer.refresh` to quiesce and re-pin.
    """


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100]).

    Returns 0.0 on an empty sample set — latency reports stay
    schema-stable even before the first request lands.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[min(int(rank), len(ordered)) - 1]


class ServerStats:
    """Request accounting of one :class:`QueryServer`."""

    __slots__ = ("requests", "errors", "stale_rejections", "latencies")

    def __init__(self):
        self.requests = 0
        self.errors = 0
        self.stale_rejections = 0
        #: per-request wall seconds (checkout wait + evaluation).
        self.latencies: list[float] = []

    def summary(self) -> dict[str, float]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "stale_rejections": self.stale_rejections,
            "p50_ms": round(percentile(self.latencies, 50) * 1000, 3),
            "p99_ms": round(percentile(self.latencies, 99) * 1000, 3),
        }


class QueryServer:
    """``N`` warmed :class:`QuerySession` workers behind an asyncio front.

    Args:
        graph: the data graph to serve.
        workers: session-worker count (one request runs per worker at a
            time; excess requests queue on the checkout).
        store: shared warm store — an :class:`~repro.store.ArtifactStore`,
            a directory path, or ``None`` for purely in-memory workers.
            Every worker rehydrates from it at :meth:`start`.
        index / codegen / adaptive: forwarded to each worker session.
        seed_reports: optional path to bench reports
            (``benchmarks/reports``) whose ``cost_profile`` snapshots
            seed every worker's calibration.

    Usage::

        server = QueryServer(graph, workers=4, store="warm/")
        await server.start()
        results = await server.submit(query)
        await server.stop()
    """

    def __init__(
        self,
        graph: DataGraph,
        *,
        workers: int = 4,
        store: ArtifactStore | str | os.PathLike | None = None,
        index: str = "auto",
        codegen: bool | str = False,
        adaptive: bool = False,
        seed_reports: str | os.PathLike | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.graph = graph
        self.workers = workers
        if store is None or isinstance(store, ArtifactStore):
            self.store = store
        else:
            self.store = ArtifactStore(store)
        self.index = index
        self.codegen = codegen
        self.adaptive = adaptive
        self.seed_reports = seed_reports
        self.stats = ServerStats()
        self._sessions: list[QuerySession] = []
        self._pool: asyncio.Queue[QuerySession] | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._pinned_version: int | None = None

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._pool is not None

    async def start(self) -> None:
        """Build and warm the worker pool; pins the graph snapshot."""
        if self.started:
            return
        loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        # Workers build off the event loop so a slow cold start does not
        # freeze an already-accepting front.
        self._sessions = await loop.run_in_executor(self._executor, self._build_workers)
        self._pool = asyncio.Queue()
        for session in self._sessions:
            self._pool.put_nowait(session)
        self._pinned_version = self.graph.version

    def _build_workers(self) -> list[QuerySession]:
        sessions = []
        for _ in range(self.workers):
            session = QuerySession(
                self.graph,
                self.index,
                codegen=self.codegen,
                adaptive=self.adaptive,
                store=self.store,
            )
            if self.seed_reports is not None:
                session.seed_cost_profile(self.seed_reports)
            # Touching the engine materializes the pooled reachability
            # index now (rehydrated or built), not under the first request.
            session.engine()
            sessions.append(session)
        return sessions

    async def submit(self, query, group_nodes: Sequence[str] = ()):
        """Evaluate ``query`` on the next free worker; returns its answer.

        Raises :class:`StaleSnapshotError` when the graph has mutated
        since the pinned snapshot, and re-raises evaluation errors after
        returning the worker to the pool.
        """
        if not self.started:
            raise RuntimeError("QueryServer.start() has not run")
        if self.graph.version != self._pinned_version:
            self.stats.stale_rejections += 1
            raise StaleSnapshotError(
                f"graph version {self.graph.version} != pinned {self._pinned_version}; "
                "call refresh() to re-pin the snapshot"
            )
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        session = await self._pool.get()
        try:
            results = await loop.run_in_executor(
                self._executor, session.evaluate, query, tuple(group_nodes)
            )
        except Exception:
            self.stats.errors += 1
            raise
        finally:
            self._pool.put_nowait(session)
        self.stats.requests += 1
        self.stats.latencies.append(time.perf_counter() - started)
        return results

    async def refresh(self) -> None:
        """Quiesce every worker, then re-pin the current graph version.

        Checking out all workers waits for in-flight requests to drain,
        so no request ever straddles two snapshots; each worker's next
        evaluation then detects the version change and rebuilds its own
        caches lazily.

        With a store attached, the drained state is re-persisted first
        (the warmest worker, exactly like :meth:`persist`): a refresh
        without a mutation acts as a checkpoint of everything learned
        since the last publish.  After a mutation, ``persist()`` detects
        the version change, drops the stale caches and keys by the *new*
        graph content — stale artifacts are never published under the
        fresh key.  Best-effort — a failing store never blocks the
        re-pin.
        """
        if not self.started:
            raise RuntimeError("QueryServer.start() has not run")
        drained = [await self._pool.get() for _ in range(self.workers)]
        try:
            if self.store is not None and self._sessions:
                warmest = max(self._sessions, key=lambda s: len(s.plan_cache))
                loop = asyncio.get_running_loop()
                try:
                    await loop.run_in_executor(self._executor, warmest.persist)
                except Exception:
                    pass
            self._pinned_version = self.graph.version
        finally:
            for session in drained:
                self._pool.put_nowait(session)

    def persist(self) -> dict[str, int]:
        """Publish the warmest worker's artifacts to the shared store.

        Workers see identical traffic-shaped warm state only by accident,
        so the one with the most plan-cache entries is chosen; artifacts
        are content-keyed, making any worker's state safe to publish.
        """
        if self.store is None:
            raise ValueError("server was created without store=; nothing to persist to")
        if not self._sessions:
            raise RuntimeError("QueryServer.start() has not run")
        warmest = max(self._sessions, key=lambda s: len(s.plan_cache))
        return warmest.persist()

    async def stop(self) -> None:
        """Release workers and the thread pool (idempotent)."""
        for session in self._sessions:
            session.close()
        self._sessions = []
        self._pool = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._pinned_version = None


# ----------------------------------------------------------------------
# TCP JSON-lines front
# ----------------------------------------------------------------------
def _render_results(results) -> list:
    """A deterministic, JSON-safe rendering of one answer set.

    Tuples become lists; grouped elements (frozensets) become sorted
    lists; the outer list is sorted so two identical answer sets always
    render byte-identically.
    """

    def render_element(element):
        if isinstance(element, frozenset):
            return sorted(element, key=repr)
        return element

    rendered = [
        [render_element(e) for e in row] if isinstance(row, tuple) else row
        for row in results
    ]
    return sorted(rendered, key=repr)


async def _handle_connection(server: QueryServer, reader, writer) -> None:
    while True:
        line = await reader.readline()
        if not line:
            break
        try:
            payload = json.loads(line)
            results = await server.submit(payload["query"], payload.get("group_nodes", ()))
            response = {
                "ok": True,
                "count": len(results),
                "results": _render_results(results),
            }
        except StaleSnapshotError as error:
            response = {"ok": False, "stale": True, "error": str(error)}
        except Exception as error:
            response = {"ok": False, "error": f"{type(error).__name__}: {error}"}
        writer.write(json.dumps(response).encode("utf-8") + b"\n")
        await writer.drain()
    # No wait_closed(): the transport flushes on close, and awaiting it
    # races server shutdown cancelling this handler task.
    writer.close()


async def serve_tcp(server: QueryServer, host: str = "127.0.0.1", port: int = 8765):
    """Run ``server`` behind a newline-delimited-JSON TCP front.

    Each request line is ``{"query": <dict|json string>, "group_nodes":
    [...]}``; each response line carries ``ok``, ``count`` and the
    deterministically rendered ``results`` (or ``error``).  Returns the
    listening ``asyncio.Server``; callers own its lifetime.
    """
    if not server.started:
        await server.start()

    async def handler(reader, writer):
        await _handle_connection(server, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)
