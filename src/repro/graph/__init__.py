"""Attributed digraph substrate (S2 in DESIGN.md)."""

from .condensation import Condensation, condense
from .digraph import DataGraph
from .partition import GraphPartition, merge_survivors
from .stats import GraphStats, graph_stats
from .traversal import (
    ancestors,
    bfs_layers,
    descendants,
    is_dag,
    node_depths,
    reaches,
    topological_order,
)

__all__ = [
    "Condensation",
    "DataGraph",
    "GraphPartition",
    "GraphStats",
    "ancestors",
    "bfs_layers",
    "condense",
    "descendants",
    "graph_stats",
    "is_dag",
    "merge_survivors",
    "node_depths",
    "reaches",
    "topological_order",
]
