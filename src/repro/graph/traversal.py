"""Graph traversal utilities: topological order, reachability oracles.

The DFS/BFS reachability functions here are deliberately simple; they serve
as *oracles* for testing the index structures of :mod:`repro.reachability`
and as building blocks for baseline algorithms (e.g. TwigStackD's
pre-filtering performs whole-graph sweeps).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from .digraph import DataGraph


def topological_order(graph: DataGraph) -> list[int]:
    """Kahn topological order of a DAG.

    Raises:
        ValueError: if the graph contains a cycle (condense it first).
    """
    in_degree = [graph.in_degree(node) for node in graph.nodes()]
    queue = deque(node for node in graph.nodes() if in_degree[node] == 0)
    order: list[int] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for successor in graph.successors(node):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                queue.append(successor)
    if len(order) != graph.num_nodes:
        raise ValueError("graph has a cycle; topological order undefined")
    return order


def is_dag(graph: DataGraph) -> bool:
    """True iff the graph is acyclic (self-loops count as cycles)."""
    try:
        topological_order(graph)
    except ValueError:
        return False
    return all(not graph.has_edge(node, node) for node in graph.nodes())


def descendants(graph: DataGraph, node: int) -> set[int]:
    """All strict descendants of ``node`` (nonempty-path semantics).

    ``node`` itself is included only when it lies on a cycle, matching the
    paper's AD relationship.
    """
    seen: set[int] = set()
    stack = list(graph.successors(node))
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(graph.successors(current))
    return seen


def ancestors(graph: DataGraph, node: int) -> set[int]:
    """All strict ancestors of ``node`` (nonempty-path semantics)."""
    seen: set[int] = set()
    stack = list(graph.predecessors(node))
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        stack.extend(graph.predecessors(current))
    return seen


def reaches(graph: DataGraph, source: int, target: int) -> bool:
    """Strict reachability oracle: is there a nonempty path source->target?"""
    stack = list(graph.successors(source))
    seen: set[int] = set()
    while stack:
        current = stack.pop()
        if current == target:
            return True
        if current in seen:
            continue
        seen.add(current)
        stack.extend(graph.successors(current))
    return False


def bfs_layers(graph: DataGraph, sources: Iterable[int]) -> list[list[int]]:
    """BFS layers from ``sources``; used by generators and statistics."""
    seen = set(sources)
    frontier = list(seen)
    layers: list[list[int]] = []
    while frontier:
        layers.append(frontier)
        next_frontier: list[int] = []
        for node in frontier:
            for successor in graph.successors(node):
                if successor not in seen:
                    seen.add(successor)
                    next_frontier.append(successor)
        frontier = next_frontier
    return layers


def node_depths(graph: DataGraph) -> list[int]:
    """Longest-path depth of each node from the root set of a DAG.

    Roots have depth 0.  Used by the statistics module to report the
    "average depth" figures the paper quotes for XMark (~5).
    """
    order = topological_order(graph)
    depth = [0] * graph.num_nodes
    for node in order:
        for successor in graph.successors(node):
            if depth[node] + 1 > depth[successor]:
                depth[successor] = depth[node] + 1
    return depth
