"""Strongly connected components and DAG condensation.

The paper's AD relationship means "nonempty path", so on cyclic graphs every
node of a non-trivial SCC is a descendant of every other (and of itself).
All reachability indexes in :mod:`repro.reachability` are built on the
condensation DAG; this module computes it with an iterative Tarjan SCC so
deep graphs do not hit Python's recursion limit.
"""

from __future__ import annotations

from .digraph import DataGraph


class Condensation:
    """The condensation DAG of a :class:`~repro.graph.digraph.DataGraph`.

    Attributes:
        scc_of: for each data node, the id of its component (``0..k-1``),
            numbered in *reverse topological* order of the condensation
            (Tarjan's output order), i.e. if component ``a`` reaches ``b``
            then ``a > b``.
        members: for each component, the list of data nodes inside it.
        cyclic: for each component, True iff it contains a cycle (size > 1
            or a self-loop) — exactly when its nodes are their own
            descendants under nonempty-path semantics.
    """

    __slots__ = ("scc_of", "members", "cyclic", "_succ", "_pred", "_edge_count")

    def __init__(self, graph: DataGraph):
        self.scc_of, self.members = _tarjan(graph)
        count = len(self.members)
        self.cyclic = [len(nodes) > 1 for nodes in self.members]
        succ_sets: list[set[int]] = [set() for _ in range(count)]
        for source, target in graph.edges():
            cs, ct = self.scc_of[source], self.scc_of[target]
            if cs == ct:
                if source == target:
                    self.cyclic[cs] = True
                continue
            succ_sets[cs].add(ct)
        self._succ = [sorted(targets) for targets in succ_sets]
        self._pred: list[list[int]] = [[] for _ in range(count)]
        for source, targets in enumerate(self._succ):
            for target in targets:
                self._pred[target].append(source)
        self._edge_count = sum(len(targets) for targets in self._succ)

    # -- DAG view -------------------------------------------------------
    @property
    def num_components(self) -> int:
        return len(self.members)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def successors(self, component: int) -> list[int]:
        return self._succ[component]

    def predecessors(self, component: int) -> list[int]:
        return self._pred[component]

    def topological_order(self) -> list[int]:
        """Components in topological order (sources first).

        Tarjan numbers components in reverse topological order, so this is
        just the reversed id sequence — no extra traversal needed.
        """
        return list(range(len(self.members) - 1, -1, -1))

    def is_trivial(self) -> bool:
        """True iff the input graph was already a DAG without self-loops."""
        return not any(self.cyclic)


def _tarjan(graph: DataGraph) -> tuple[list[int], list[list[int]]]:
    """Iterative Tarjan SCC.

    Returns ``(scc_of, members)`` with components numbered in reverse
    topological order (a component is numbered only after everything it
    reaches).
    """
    n = graph.num_nodes
    UNVISITED = -1
    index_of = [UNVISITED] * n
    low_link = [0] * n
    on_stack = [False] * n
    scc_of = [UNVISITED] * n
    members: list[list[int]] = []
    stack: list[int] = []
    next_index = 0

    for start in range(n):
        if index_of[start] != UNVISITED:
            continue
        # Each frame is [node, iterator position over successors].
        work: list[list[int]] = [[start, 0]]
        while work:
            frame = work[-1]
            node, position = frame
            if position == 0:
                index_of[node] = next_index
                low_link[node] = next_index
                next_index += 1
                stack.append(node)
                on_stack[node] = True
            successors = graph.successors(node)
            advanced = False
            while frame[1] < len(successors):
                successor = successors[frame[1]]
                frame[1] += 1
                if index_of[successor] == UNVISITED:
                    work.append([successor, 0])
                    advanced = True
                    break
                if on_stack[successor]:
                    low_link[node] = min(low_link[node], index_of[successor])
            if advanced:
                continue
            # Node finished: close component if it is a root.
            if low_link[node] == index_of[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    scc_of[member] = len(members)
                    component.append(member)
                    if member == node:
                        break
                members.append(component)
            work.pop()
            if work:
                parent = work[-1][0]
                low_link[parent] = min(low_link[parent], low_link[node])
    return scc_of, members


def condense(graph: DataGraph) -> Condensation:
    """Compute the condensation of ``graph``."""
    return Condensation(graph)
