"""Graph statistics used by Table 1 and the dataset descriptions."""

from __future__ import annotations

from dataclasses import dataclass

from .condensation import Condensation
from .digraph import DataGraph
from .traversal import node_depths, topological_order


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a data graph.

    Mirrors the quantities the paper reports: node/edge counts (Table 1),
    distinct label counts (arXiv: 1132 labels) and depth (XMark: avg ~5).
    """

    num_nodes: int
    num_edges: int
    num_labels: int
    num_roots: int
    max_depth: int
    avg_depth: float
    is_dag: bool

    def row(self) -> dict[str, float]:
        """Tabular form used by the bench harness."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "labels": self.num_labels,
            "roots": self.num_roots,
            "max_depth": self.max_depth,
            "avg_depth": round(self.avg_depth, 2),
        }


def graph_stats(graph: DataGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``.

    Depth statistics are computed on the condensation when the graph is
    cyclic, so they are always defined.
    """
    try:
        topological_order(graph)
        acyclic = all(not graph.has_edge(node, node) for node in graph.nodes())
    except ValueError:
        acyclic = False

    if acyclic:
        depths = node_depths(graph)
    else:
        condensation = Condensation(graph)
        dag = DataGraph()
        for _ in range(condensation.num_components):
            dag.add_node()
        for component in range(condensation.num_components):
            for successor in condensation.successors(component):
                dag.add_edge(component, successor)
        depths = node_depths(dag)

    num_nodes = graph.num_nodes
    return GraphStats(
        num_nodes=num_nodes,
        num_edges=graph.num_edges,
        num_labels=len(graph.distinct_labels()),
        num_roots=len(graph.roots()),
        max_depth=max(depths) if depths else 0,
        avg_depth=(sum(depths) / len(depths)) if depths else 0.0,
        is_dag=acyclic,
    )
