"""Attributed directed data graphs (paper Section 2).

A data graph is ``G = (V, E, f)`` where ``f`` maps each node to a tuple of
attribute/value pairs.  Nodes are dense integer ids ``0..n-1`` so that the
index structures (chains, intervals, bitsets) can use flat arrays.

The paper's examples attach a single *label* (``a1``, ``c2`` …) standing for
the whole attribute tuple; :meth:`DataGraph.add_node` accepts arbitrary
attribute dictionaries and the common case of a bare label is stored under
the attribute name ``"label"``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping


class DataGraph:
    """A directed graph whose nodes carry attribute dictionaries.

    Edges are stored as forward and reverse adjacency lists.  Parallel edges
    are collapsed (the semantics of PC/AD relationships only care about edge
    existence) and self-loops are permitted (they make a node its own
    descendant under the paper's nonempty-path AD semantics).
    """

    __slots__ = ("_attrs", "_succ", "_pred", "_edge_count", "_label_index", "_version")

    def __init__(self):
        self._attrs: list[dict[str, Any]] = []
        self._succ: list[list[int]] = []
        self._pred: list[list[int]] = []
        self._edge_count = 0
        self._label_index: dict[Any, tuple[int, ...]] | None = None
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic mutation counter.

        Incremented by every :meth:`add_node` / :meth:`add_edge`, so derived
        structures (reachability indexes, the session caches of
        :mod:`repro.engine.session`) can detect staleness cheaply.  Direct
        mutation of an attribute dictionary obtained from :meth:`attrs` is
        *not* tracked.
        """
        return self._version

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, attrs: Mapping[str, Any] | None = None, *, label: Any = None) -> int:
        """Add a node and return its id.

        Args:
            attrs: attribute dictionary (the paper's ``f(v)`` tuple).
            label: shorthand for ``attrs={"label": label}``; merged into
                ``attrs`` when both are given.
        """
        node_attrs: dict[str, Any] = dict(attrs) if attrs else {}
        if label is not None:
            node_attrs.setdefault("label", label)
        self._attrs.append(node_attrs)
        self._succ.append([])
        self._pred.append([])
        self._label_index = None
        self._version += 1
        return len(self._attrs) - 1

    def add_edge(self, source: int, target: int) -> bool:
        """Add edge ``source -> target``; returns False if already present."""
        self._check(source)
        self._check(target)
        if target in self._succ[source]:
            return False
        self._succ[source].append(target)
        self._pred[target].append(source)
        self._edge_count += 1
        self._version += 1
        return True

    @classmethod
    def from_edges(
        cls,
        labels: Iterable[Any],
        edges: Iterable[tuple[int, int]],
    ) -> "DataGraph":
        """Build a graph from a label sequence and an edge list.

        Convenient for tests and for transcribing the paper's figures::

            g = DataGraph.from_edges("ab", [(0, 1)])
        """
        graph = cls()
        for label in labels:
            graph.add_node(label=label)
        for source, target in edges:
            graph.add_edge(source, target)
        return graph

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def _check(self, node: int) -> None:
        if not 0 <= node < len(self._attrs):
            raise IndexError(f"node {node} not in graph of size {len(self._attrs)}")

    @property
    def num_nodes(self) -> int:
        return len(self._attrs)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def nodes(self) -> range:
        """Iterate node ids."""
        return range(len(self._attrs))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(source, target)`` pairs."""
        for source, targets in enumerate(self._succ):
            for target in targets:
                yield (source, target)

    def attrs(self, node: int) -> dict[str, Any]:
        """The attribute dictionary ``f(v)`` of ``node``."""
        self._check(node)
        return self._attrs[node]

    def label(self, node: int) -> Any:
        """The ``"label"`` attribute, or None when absent."""
        self._check(node)
        return self._attrs[node].get("label")

    def successors(self, node: int) -> list[int]:
        """Children of ``node`` (PC relationship targets)."""
        self._check(node)
        return self._succ[node]

    def predecessors(self, node: int) -> list[int]:
        """Parents of ``node``."""
        self._check(node)
        return self._pred[node]

    def out_degree(self, node: int) -> int:
        self._check(node)
        return len(self._succ[node])

    def in_degree(self, node: int) -> int:
        self._check(node)
        return len(self._pred[node])

    def has_edge(self, source: int, target: int) -> bool:
        self._check(source)
        self._check(target)
        return target in self._succ[source]

    def roots(self) -> list[int]:
        """Nodes without incoming edges."""
        return [node for node in self.nodes() if not self._pred[node]]

    def leaves(self) -> list[int]:
        """Nodes without outgoing edges."""
        return [node for node in self.nodes() if not self._succ[node]]

    # ------------------------------------------------------------------
    # Candidate-matching support
    # ------------------------------------------------------------------
    def nodes_with_label(self, label: Any) -> tuple[int, ...]:
        """All nodes whose ``"label"`` attribute equals ``label``.

        Backed by a lazily built inverted index, mirroring how the paper's
        implementations stream ``mat(u)`` per query node without a full
        graph scan per query.  Returns the stored (immutable) posting
        tuple itself — repeated candidate scans share one object instead
        of copying the list per call; the index is rebuilt only after a
        mutation.
        """
        if self._label_index is None:
            lists: dict[Any, list[int]] = {}
            for node, attrs in enumerate(self._attrs):
                node_label = attrs.get("label")
                if node_label is not None:
                    lists.setdefault(node_label, []).append(node)
            self._label_index = {
                node_label: tuple(nodes) for node_label, nodes in lists.items()
            }
        return self._label_index.get(label, ())

    def distinct_labels(self) -> set[Any]:
        """The set of distinct ``"label"`` values present in the graph."""
        return {
            attrs["label"] for attrs in self._attrs if attrs.get("label") is not None
        }

    def __repr__(self) -> str:
        return f"DataGraph(nodes={self.num_nodes}, edges={self.num_edges})"
