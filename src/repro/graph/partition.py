"""Candidate partitioning: routing per-node candidate sets to shards.

The downward prune of one query node (Procedure 6) evaluates ``fext``
independently per candidate once the refined child sets are fixed, so a
candidate set can be split across shards, refined concurrently, and the
shard survivor sets merged before the upward pass — the sharding seam
the parallel executor of :mod:`repro.engine.parallel` exploits.

Two routing strategies:

* ``"hash"`` (default) — shard by ``node_id % num_shards``.  Balances
  skewed candidate sets (e.g. all candidates drawn from one label's
  contiguous posting range) without knowing the graph size.
* ``"range"`` — contiguous node-id ranges of width
  ``ceil(num_nodes / num_shards)``.  Keeps shard members adjacent in
  node-id order, which clusters them on few 3-hop chains (cheaper chain
  scans per shard) at the price of balance on skewed sets.

Determinism contract: :meth:`GraphPartition.split` preserves the input
order inside each shard, and :func:`merge_survivors` sorts the merged
output by node id — so a sharded run produces byte-identical survivor
sets to a single-shard run regardless of shard count, routing strategy,
or the order shards complete in.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .digraph import DataGraph

#: routing strategies :class:`GraphPartition` accepts.
STRATEGIES = ("hash", "range")


class GraphPartition:
    """Routes data-node ids to shards.

    Args:
        num_shards: default shard count (``split`` may be asked for
            fewer, never more).
        strategy: one of :data:`STRATEGIES`.
        num_nodes: graph size; required by the ``"range"`` strategy to
            size its contiguous ranges (see :meth:`for_graph`).
    """

    __slots__ = ("num_shards", "strategy", "num_nodes")

    def __init__(self, num_shards: int, strategy: str = "hash", num_nodes: int | None = None):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown partition strategy {strategy!r}; expected one of {STRATEGIES}")
        if strategy == "range" and (num_nodes is None or num_nodes < 1):
            raise ValueError("the 'range' strategy needs num_nodes >= 1")
        self.num_shards = num_shards
        self.strategy = strategy
        self.num_nodes = num_nodes

    @classmethod
    def for_graph(cls, graph: DataGraph, num_shards: int, strategy: str = "hash") -> "GraphPartition":
        """A partition sized for ``graph`` (single-node graphs included)."""
        return cls(num_shards, strategy=strategy, num_nodes=max(1, graph.num_nodes))

    def shard_of(self, node: int, num_shards: int | None = None) -> int:
        """The shard ``node`` routes to, under ``num_shards`` shards."""
        shards = self.num_shards if num_shards is None else num_shards
        if shards <= 1:
            return 0
        if self.strategy == "hash":
            return node % shards
        span = -(-self.num_nodes // shards)  # ceil division
        return min(node // span, shards - 1)

    def split(self, candidates: Sequence[int], num_shards: int | None = None) -> list[list[int]]:
        """Split ``candidates`` into shard lists (some may be empty).

        Input order is preserved inside each shard; ascending inputs
        yield ascending shards.  Always returns exactly ``num_shards``
        lists — callers decide whether empty shards are worth a task.
        """
        shards = self.num_shards if num_shards is None else num_shards
        if shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {shards}")
        parts: list[list[int]] = [[] for _ in range(shards)]
        for node in candidates:
            parts[self.shard_of(node, shards)].append(node)
        return parts


def merge_survivors(shard_results: Iterable[Sequence[int]]) -> list[int]:
    """Merge per-shard survivor lists into one deterministic set.

    Sorted by node id: shards partition the candidates (no duplicates),
    and the serial downward prune preserves the ascending order of
    :func:`repro.query.naive.candidate_nodes`, so the sorted merge is
    byte-identical to the single-shard survivor list no matter how many
    shards ran or in which order they completed.
    """
    merged: list[int] = []
    for survivors in shard_results:
        merged.extend(survivors)
    merged.sort()
    return merged
