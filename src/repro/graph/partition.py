"""Candidate partitioning: routing per-node candidate sets to shards.

The downward prune of one query node (Procedure 6) evaluates ``fext``
independently per candidate once the refined child sets are fixed, so a
candidate set can be split across shards, refined concurrently, and the
shard survivor sets merged before the upward pass — the sharding seam
the parallel executor of :mod:`repro.engine.parallel` exploits.

Three routing strategies:

* ``"hash"`` — shard by ``node_id % num_shards``.  Balances skewed
  candidate sets (e.g. all candidates drawn from one label's contiguous
  posting range) without knowing the graph size, but scatters chain
  neighbours, so every shard re-scans overlapping 3-hop chain regions
  (mitigated by :class:`ContourProbeCache` below).
* ``"range"`` — contiguous node-id ranges of width
  ``ceil(num_nodes / num_shards)``.  Keeps shard members adjacent in
  node-id order, which clusters them on few 3-hop chains (cheaper chain
  scans per shard) at the price of balance on skewed sets.
* ``"hybrid"`` — decides per candidate set: :meth:`GraphPartition.route_for`
  measures how the set would land across the range shards and keeps
  ``"range"`` (chain locality) unless the largest shard exceeds
  :data:`HYBRID_SKEW_THRESHOLD` times the ideal share, in which case the
  set is skewed onto few ranges and ``"hash"`` balances it instead.

Determinism contract: :meth:`GraphPartition.split` preserves the input
order inside each shard, and :func:`merge_survivors` sorts the merged
output by node id — so a sharded run produces byte-identical survivor
sets to a single-shard run regardless of shard count, routing strategy,
or the order shards complete in.  (Hybrid routing is a pure function of
the candidate set, so it is deterministic too.)
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .digraph import DataGraph

#: routing strategies :class:`GraphPartition` accepts.
STRATEGIES = ("hash", "range", "hybrid")

#: ``"hybrid"`` keeps range routing until the largest range shard holds
#: more than this multiple of the ideal per-shard share.
HYBRID_SKEW_THRESHOLD = 2.0


class GraphPartition:
    """Routes data-node ids to shards.

    Args:
        num_shards: default shard count (``split`` may be asked for
            fewer, never more).
        strategy: one of :data:`STRATEGIES`.
        num_nodes: graph size; required by the ``"range"`` strategy to
            size its contiguous ranges (see :meth:`for_graph`).
    """

    __slots__ = ("num_shards", "strategy", "num_nodes")

    def __init__(self, num_shards: int, strategy: str = "hash", num_nodes: int | None = None):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown partition strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if strategy in ("range", "hybrid") and (num_nodes is None or num_nodes < 1):
            raise ValueError(f"the {strategy!r} strategy needs num_nodes >= 1")
        self.num_shards = num_shards
        self.strategy = strategy
        self.num_nodes = num_nodes

    @classmethod
    def for_graph(
        cls, graph: DataGraph, num_shards: int, strategy: str = "hash"
    ) -> "GraphPartition":
        """A partition sized for ``graph`` (single-node graphs included)."""
        return cls(num_shards, strategy=strategy, num_nodes=max(1, graph.num_nodes))

    def shard_of(
        self, node: int, num_shards: int | None = None, strategy: str | None = None
    ) -> int:
        """The shard ``node`` routes to, under ``num_shards`` shards.

        ``"hybrid"`` has no per-node answer without a candidate set to
        observe — a bare lookup routes like ``"range"`` (its preferred
        mode); :meth:`split` applies the per-set decision.
        """
        shards = self.num_shards if num_shards is None else num_shards
        if shards <= 1:
            return 0
        if (strategy or self.strategy) == "hash":
            return node % shards
        span = -(-self.num_nodes // shards)  # ceil division
        return min(node // span, shards - 1)

    def route_for(self, candidates: Sequence[int], num_shards: int | None = None) -> str:
        """The concrete strategy one candidate set splits under.

        For ``"hash"`` and ``"range"`` this is the configured strategy.
        ``"hybrid"`` observes the set's skew across the range shards:
        it keeps ``"range"`` (chain-local scans) unless the largest
        range shard would exceed :data:`HYBRID_SKEW_THRESHOLD` times the
        ideal ``len(candidates) / num_shards`` share, and balances with
        ``"hash"`` otherwise.  Pure in the candidate set, so sharded
        runs stay deterministic.
        """
        if self.strategy != "hybrid":
            return self.strategy
        shards = self.num_shards if num_shards is None else num_shards
        if shards <= 1 or not candidates:
            return "range"
        counts = [0] * shards
        for node in candidates:
            counts[self.shard_of(node, shards, "range")] += 1
        ideal = len(candidates) / shards
        return "hash" if max(counts) > HYBRID_SKEW_THRESHOLD * ideal else "range"

    def split(self, candidates: Sequence[int], num_shards: int | None = None) -> list[list[int]]:
        """Split ``candidates`` into shard lists (some may be empty).

        Input order is preserved inside each shard; ascending inputs
        yield ascending shards.  Always returns exactly ``num_shards``
        lists — callers decide whether empty shards are worth a task.
        """
        shards = self.num_shards if num_shards is None else num_shards
        if shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {shards}")
        strategy = self.route_for(candidates, shards)
        parts: list[list[int]] = [[] for _ in range(shards)]
        for node in candidates:
            parts[self.shard_of(node, shards, strategy)].append(node)
        return parts

    def wave_cache(self) -> "ContourProbeCache":
        """A fresh :class:`ContourProbeCache` for one shard wave."""
        return ContourProbeCache()


def merge_survivors(shard_results: Iterable[Sequence[int]]) -> list[int]:
    """Merge per-shard survivor lists into one deterministic set.

    Sorted by node id: shards partition the candidates (no duplicates),
    and the serial downward prune preserves the ascending order of
    :func:`repro.query.naive.candidate_nodes`, so the sorted merge is
    byte-identical to the single-shard survivor list no matter how many
    shards ran or in which order they completed.
    """
    merged: list[int] = []
    for survivors in shard_results:
        merged.extend(survivors)
    merged.sort()
    return merged


class ContourProbeCache:
    """Shares 3-hop chain scans between the shards of one prune wave.

    Hash routing balances a skewed candidate set but scatters chain
    neighbours across shards, so every shard re-walks the same chain
    regions of the index against the same child contours.  The downward
    valuation at a component is a pure function of (chain, sequence
    number, child contours): it reflects exactly the ``Lout`` entries of
    the chain region at-or-below that sequence number.  One cache
    instance therefore lives for exactly one wave — one query node's
    dispatch, where the child contours are fixed — and shards record
    per-component valuation snapshots other shards resume from instead
    of re-scanning the region a sibling already covered.

    Entries are immutable once published (writers snapshot, readers
    copy), and the dict/list operations are atomic under the GIL, so the
    thread backend shares one instance without locking; a lost race
    costs a duplicate scan, never a wrong bit.  The process backend
    cannot share driver memory and passes no cache.  Cached bits are
    value-identical to freshly computed ones, so survivor sets stay
    byte-identical with or without the cache — only the
    ``entries_scanned`` counter (legitimately) drops.
    """

    __slots__ = ("_snapshots", "hits", "misses")

    def __init__(self):
        #: chain -> list of (sid, valuation snapshot), append-only.
        self._snapshots: dict[int, list[tuple[int, dict]]] = {}
        self.hits = 0
        self.misses = 0

    def seed(self, chain: int, sid: int) -> tuple[int, dict] | None:
        """Best snapshot to resume from for a component at ``sid``.

        A snapshot taken at sequence number ``s`` covers the chain
        region with sequence numbers ``>= s``; it seeds a component at
        ``sid`` only when ``s >= sid`` (a deeper snapshot would carry
        bits the shallower component is not entitled to).  Among the
        valid snapshots the lowest ``s`` covers the most.
        """
        best: tuple[int, dict] | None = None
        for snap_sid, valuation in self._snapshots.get(chain, ()):
            if snap_sid >= sid and (best is None or snap_sid < best[0]):
                best = (snap_sid, valuation)
        if best is None:
            self.misses += 1
        else:
            self.hits += 1
        return best

    def publish(self, chain: int, sid: int, valuation: dict) -> None:
        """Record the (pre-cyclic-adjust) valuation scanned down to ``sid``."""
        self._snapshots.setdefault(chain, []).append((sid, dict(valuation)))
