"""Benchmark support (S9 in DESIGN.md)."""

from .harness import (
    AdaptiveMeasurement,
    AlgorithmSuite,
    Measurement,
    ParallelMeasurement,
    ParallelScalePoint,
    WarmColdMeasurement,
    format_table,
    mean,
    measure_adaptive,
    measure_parallel,
    measure_warm_cold,
)

__all__ = [
    "AdaptiveMeasurement",
    "AlgorithmSuite",
    "Measurement",
    "ParallelMeasurement",
    "ParallelScalePoint",
    "WarmColdMeasurement",
    "format_table",
    "mean",
    "measure_adaptive",
    "measure_parallel",
    "measure_warm_cold",
]
