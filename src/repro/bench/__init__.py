"""Benchmark support (S9 in DESIGN.md)."""

from .harness import (
    AlgorithmSuite,
    Measurement,
    WarmColdMeasurement,
    format_table,
    mean,
    measure_warm_cold,
)

__all__ = [
    "AlgorithmSuite",
    "Measurement",
    "WarmColdMeasurement",
    "format_table",
    "mean",
    "measure_warm_cold",
]
