"""Benchmark support (S9 in DESIGN.md)."""

from .harness import (
    AdaptiveMeasurement,
    AlgorithmSuite,
    CodegenMeasurement,
    CodegenQueryPoint,
    Measurement,
    ParallelMeasurement,
    ParallelScalePoint,
    WarmColdMeasurement,
    format_table,
    mean,
    measure_adaptive,
    measure_codegen,
    measure_index_choice,
    measure_parallel,
    measure_warm_cold,
)

__all__ = [
    "AdaptiveMeasurement",
    "AlgorithmSuite",
    "CodegenMeasurement",
    "CodegenQueryPoint",
    "Measurement",
    "ParallelMeasurement",
    "ParallelScalePoint",
    "WarmColdMeasurement",
    "format_table",
    "mean",
    "measure_adaptive",
    "measure_codegen",
    "measure_index_choice",
    "measure_parallel",
    "measure_warm_cold",
]
