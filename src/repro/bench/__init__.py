"""Benchmark support (S9 in DESIGN.md)."""

from .harness import (
    AdaptiveMeasurement,
    AlgorithmSuite,
    Measurement,
    WarmColdMeasurement,
    format_table,
    mean,
    measure_adaptive,
    measure_warm_cold,
)

__all__ = [
    "AdaptiveMeasurement",
    "AlgorithmSuite",
    "Measurement",
    "WarmColdMeasurement",
    "format_table",
    "mean",
    "measure_adaptive",
    "measure_warm_cold",
]
