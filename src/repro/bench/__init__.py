"""Benchmark support (S9 in DESIGN.md)."""

from .harness import AlgorithmSuite, Measurement, format_table, mean

__all__ = ["AlgorithmSuite", "Measurement", "format_table", "mean"]
