"""Benchmark harness: pre-built algorithm suites and table printing.

Timing discipline follows the paper: reachability indexes and interval
labelings are built once per dataset *outside* the measured region (they
are query-independent), while everything an algorithm does per query —
including TwigStackD's pre-filtering sweeps and HGJoin+'s plan sweep — is
measured.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from ..baselines import (
    CrossAwareTreeSolver,
    DecomposingEvaluator,
    HGJoinPlus,
    HGJoinStar,
    TreeDecomposedEvaluator,
    Twig2Stack,
    TwigStack,
    TwigStackD,
    decompose_at_cross_edges,
)
from ..engine import GTEA, QuerySession
from ..engine.stats import EvaluationStats
from ..graph.digraph import DataGraph
from ..query.gtpq import GTPQ


@dataclass
class Measurement:
    """One algorithm run: answer, wall time, collected statistics."""

    algorithm: str
    seconds: float
    result_count: int
    stats: EvaluationStats | None = None
    answer: set = field(default_factory=set, repr=False)

    @property
    def millis(self) -> float:
        return self.seconds * 1e3


class AlgorithmSuite:
    """All evaluators over one dataset, index structures pre-built.

    Args:
        graph: the data graph.
        forest_edges: the document-tree edges (enables the tree-algorithm
            members; omit for general DAGs like arXiv).
        cross_children_of: per-query callable returning the reference
            children at which tree algorithms must split the query.
    """

    def __init__(
        self,
        graph: DataGraph,
        forest_edges: set[tuple[int, int]] | None = None,
        cross_children_of: Callable[[GTPQ], set[str]] | None = None,
    ):
        self.graph = graph
        # Paper fidelity: the experiment figures measure the raw GTEA
        # pipeline; Algorithm-1 minimization is a separate contribution
        # (benchmarked in benchmarks/bench_planner.py), so the suite
        # compiles without it.  Graph statistics and the (lazily built)
        # index are query-independent planner inputs — forced here,
        # outside the measured region.
        self.gtea = GTEA(graph, optimize=False)
        self.gtea.graph_statistics()
        self.gtea.reachability
        self.twigstackd = TwigStackD(graph)
        self.hgjoin_plus = HGJoinPlus(graph)
        self.hgjoin_star = HGJoinStar(graph)
        self.cross_children_of = cross_children_of or (lambda query: set())
        self.tree_runners: dict[str, TreeDecomposedEvaluator] = {}
        if forest_edges is not None:
            self.tree_runners["TwigStack"] = TreeDecomposedEvaluator(
                graph, TwigStack, forest_edges=forest_edges
            )
            self.tree_runners["Twig2Stack"] = TreeDecomposedEvaluator(
                graph, Twig2Stack, forest_edges=forest_edges
            )

    # ------------------------------------------------------------------
    def algorithms(self) -> list[str]:
        return ["GTEA", "TwigStackD", "HGJoin+", "HGJoin*", *self.tree_runners]

    def run(self, algorithm: str, query: GTPQ) -> Measurement:
        """Evaluate ``query`` with ``algorithm`` and time it.

        Conjunctive queries run natively everywhere; GTPQs with logical
        operators run natively on GTEA and through the decompose-and-merge
        wrapper on the baselines (the paper's Appendix C.2 set-up).
        """
        conjunctive = query.is_conjunctive()
        if algorithm == "GTEA":
            # Compile outside the timed region (the session layer caches
            # plans, so serving never recompiles a repeated query), and
            # pin the executor: this row must measure GTEA itself even on
            # workloads the cost model would hand to the baseline.
            plan = self.gtea.compile(query)
            if plan.physical.executor != "gtea":
                plan = replace(
                    plan, physical=replace(plan.physical, executor="gtea")
                )
            runner = lambda: self.gtea.evaluate_with_stats(query, plan=plan)
        elif algorithm in ("TwigStackD", "HGJoin+", "HGJoin*"):
            evaluator = {
                "TwigStackD": self.twigstackd,
                "HGJoin+": self.hgjoin_plus,
                "HGJoin*": self.hgjoin_star,
            }[algorithm]
            if conjunctive:
                runner = lambda: evaluator.evaluate_with_stats(query)
            elif algorithm == "TwigStackD":
                wrapper = DecomposingEvaluator(evaluator)
                runner = lambda: wrapper.evaluate_with_stats(query)
            else:
                raise ValueError(f"{algorithm} cannot evaluate GTPQs")
        elif algorithm in self.tree_runners:
            tree_runner = self.tree_runners[algorithm]
            crosses = self.cross_children_of(query)
            if conjunctive:
                decomposed = decompose_at_cross_edges(query, crosses)
                runner = lambda: tree_runner.evaluate_with_stats(decomposed)
            else:
                solver = CrossAwareTreeSolver(tree_runner, crosses)
                wrapper = DecomposingEvaluator(solver)
                runner = lambda: wrapper.evaluate_with_stats(query)
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        started = time.perf_counter()
        answer, stats = runner()
        elapsed = time.perf_counter() - started
        if algorithm == "HGJoin+" and "best_plan" in stats.phase_seconds:
            # Paper convention: report the best plan's time only.
            elapsed = stats.phase_seconds["best_plan"] + (
                elapsed - stats.phase_seconds["all_plans"]
            )
        if isinstance(answer, dict):  # multi-output-structure result
            count = sum(len(a) for a in answer.values())
            flat: set = set()
        else:
            count = len(answer)
            flat = answer
        return Measurement(algorithm, elapsed, count, stats, flat)


@dataclass
class WarmColdMeasurement:
    """Warm-vs-cold comparison of a repeated workload on one graph.

    ``cold_seconds`` is the wall time of serving the workload through a
    session whose result cache is disabled (plan/candidate caches start
    empty too), ``warm_seconds`` the time of the *second* pass over an
    identical session with every cache enabled and primed by a first
    pass.  ``stats`` is the aggregate of the warm pass, so the cache
    hit counters quantify where the speedup comes from.
    """

    cold_seconds: float
    warm_seconds: float
    queries: int
    stats: EvaluationStats

    @property
    def speedup(self) -> float:
        return self.cold_seconds / self.warm_seconds if self.warm_seconds else 0.0

    def row(self) -> dict[str, float]:
        return {
            "queries": self.queries,
            "cold_ms": self.cold_seconds * 1e3,
            "warm_ms": self.warm_seconds * 1e3,
            "speedup": self.speedup,
            "result_hits": self.stats.result_cache_hits,
            "candidate_hits": self.stats.candidate_cache_hits,
            "plan_hits": self.stats.plan_cache_hits,
        }


def measure_warm_cold(
    graph: DataGraph,
    queries: list[GTPQ],
    index: str = "auto",
) -> WarmColdMeasurement:
    """Serve ``queries`` cold and warm through :class:`QuerySession`.

    Index construction happens outside both measured regions (indexes are
    query-independent, following the paper's timing discipline); the
    comparison isolates what the session's caches buy on repeated
    traffic.
    """
    cold_session = QuerySession(
        graph,
        index=index,
        plan_cache_size=0,
        candidate_cache_size=0,
        result_cache_size=0,
    )
    # Build the index and planner statistics outside the measured region
    # (both are query-independent, following the paper's discipline).
    cold_session.engine()
    cold_session.graph_statistics()
    started = time.perf_counter()
    for query in queries:
        cold_session.evaluate(query)
    cold_seconds = time.perf_counter() - started

    warm_session = QuerySession(graph, index=index)
    warm_session.engine()
    warm_session.graph_statistics()
    warm_session.evaluate_many(queries)  # priming pass
    started = time.perf_counter()
    batch = warm_session.evaluate_many(queries)
    warm_seconds = time.perf_counter() - started
    return WarmColdMeasurement(
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        queries=len(queries),
        stats=batch.stats,
    )


def format_table(
    title: str, columns: list[str], rows: list[list[Any]]
) -> str:
    """Render an aligned text table (the bench reports' output format)."""
    header = [str(c) for c in columns]
    body = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    for row in body:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass
class AdaptiveMeasurement:
    """Static-vs-adaptive executor comparison on one workload.

    Every query is compiled once; the same plans run through the static
    operator pipeline (compile-time prune order) and the adaptive one
    (runtime reordering + backbone-empty early exit).  Answers are
    compared exactly; ``mismatches`` must be zero.
    """

    queries: int
    prune_ops_static: int
    prune_ops_adaptive: int
    reordered_queries: int  #: executed order differs from the static one
    early_exits: int  #: adaptive runs that skipped downward operators
    static_seconds: float
    adaptive_seconds: float
    mismatches: int

    @property
    def prune_ops_saved(self) -> float:
        if not self.prune_ops_static:
            return 0.0
        return 1.0 - self.prune_ops_adaptive / self.prune_ops_static

    def row(self) -> dict[str, float]:
        return {
            "queries": self.queries,
            "ops_static": self.prune_ops_static,
            "ops_adaptive": self.prune_ops_adaptive,
            "ops_saved": round(self.prune_ops_saved, 3),
            "reordered": self.reordered_queries,
            "early_exits": self.early_exits,
            "static_ms": round(self.static_seconds * 1e3, 2),
            "adaptive_ms": round(self.adaptive_seconds * 1e3, 2),
        }


def measure_adaptive(graph: DataGraph, queries: list[GTPQ]) -> AdaptiveMeasurement:
    """Run ``queries`` through both executors and compare prune work.

    Plans are compiled once outside both measured regions (the executors
    share them), following the paper's timing discipline.
    """
    from ..engine.operators import executed_downward_order

    engine = GTEA(graph, index="auto")
    engine.reachability  # build outside the measured regions
    plans = [engine.compile(query) for query in queries]

    ops_static = ops_adaptive = reordered = early_exits = mismatches = 0
    static_seconds = adaptive_seconds = 0.0
    for query, plan in zip(queries, plans):
        started = time.perf_counter()
        static_results, static_stats = engine.execute(plan, adaptive=False)
        static_seconds += time.perf_counter() - started

        started = time.perf_counter()
        adaptive_results, adaptive_stats = engine.execute(plan, adaptive=True)
        adaptive_seconds += time.perf_counter() - started

        mismatches += static_results != adaptive_results
        ops_static += static_stats.downward_prune_ops
        ops_adaptive += adaptive_stats.downward_prune_ops
        static_order = executed_downward_order(static_stats)
        adaptive_order = executed_downward_order(adaptive_stats)
        reordered += adaptive_order != static_order[: len(adaptive_order)]
        early_exits += len(adaptive_order) < len(static_order)
    return AdaptiveMeasurement(
        queries=len(queries),
        prune_ops_static=ops_static,
        prune_ops_adaptive=ops_adaptive,
        reordered_queries=reordered,
        early_exits=early_exits,
        static_seconds=static_seconds,
        adaptive_seconds=adaptive_seconds,
        mismatches=mismatches,
    )


@dataclass
class ParallelScalePoint:
    """One worker count of a :class:`ParallelMeasurement` sweep."""

    workers: int
    prune_seconds: float  #: summed ``prune_downward`` phase time.
    wall_seconds: float  #: end-to-end workload wall time.
    shard_tasks: int  #: downward pool tasks dispatched across the workload.
    candidates_seconds: float = 0.0  #: summed ``candidates`` phase time.
    upward_seconds: float = 0.0  #: summed ``prune_upward`` phase time.
    upward_tasks: int = 0  #: upward pool tasks dispatched.
    steals: int = 0  #: tasks drained from the pending deque by completions.


@dataclass
class ParallelMeasurement:
    """End-to-end scaling of the sharded executor on one workload.

    The same compiled plans run through a
    :class:`~repro.engine.parallel.ParallelExecutor` at each worker
    count (shards = workers) with the full sharded pipeline — sharded
    downward *and* upward prune, overlapped candidate scan, work
    stealing.  Every worker count is compared against the serial
    engine: answers exactly, per-node survivor sets after both prune
    phases, and the downward prune-op count — ``mismatches`` and
    ``survivor_mismatches`` must both be zero (the determinism contract
    of :mod:`repro.graph.partition`).
    """

    queries: int
    backend: str
    strategy: str
    points: list[ParallelScalePoint]
    mismatches: int
    survivor_mismatches: int

    def speedup(self, workers: int) -> float:
        """Prune-phase speedup of ``workers`` over the 1-worker run."""
        base = next(p for p in self.points if p.workers == 1)
        point = next(p for p in self.points if p.workers == workers)
        return base.prune_seconds / point.prune_seconds if point.prune_seconds else 0.0

    def wall_speedup(self, workers: int) -> float:
        """End-to-end wall speedup of ``workers`` over the 1-worker run."""
        base = next(p for p in self.points if p.workers == 1)
        point = next(p for p in self.points if p.workers == workers)
        return base.wall_seconds / point.wall_seconds if point.wall_seconds else 0.0

    def rows(self) -> list[dict[str, float]]:
        prune_base = self.points[0].prune_seconds if self.points else 0.0
        wall_base = self.points[0].wall_seconds if self.points else 0.0
        return [
            {
                "workers": point.workers,
                "scan_ms": round(point.candidates_seconds * 1e3, 2),
                "prune_ms": round(point.prune_seconds * 1e3, 2),
                "upward_ms": round(point.upward_seconds * 1e3, 2),
                "wall_ms": round(point.wall_seconds * 1e3, 2),
                "speedup": round(prune_base / point.prune_seconds, 3)
                if point.prune_seconds
                else 0.0,
                "wall_speedup": round(wall_base / point.wall_seconds, 3)
                if point.wall_seconds
                else 0.0,
                "shard_tasks": point.shard_tasks,
                "upward_tasks": point.upward_tasks,
                "steals": point.steals,
            }
            for point in self.points
        ]


def measure_parallel(
    graph: DataGraph,
    queries: list[GTPQ],
    worker_counts: tuple[int, ...] = (1, 2, 4),
    backend: str = "auto",
    strategy: str = "hybrid",
) -> ParallelMeasurement:
    """Sweep worker counts over ``queries`` with full sharded execution.

    Plans are compiled and the index is built outside every measured
    region; each worker count gets one unmeasured warmup pass (pool
    spin-up, worker-side query caches) before its timed pass.  The
    ``"hybrid"`` strategy is the default: it keeps each shard's
    candidates on few 3-hop chains (range routing, cheap chain scans)
    unless a candidate set is skewed onto few ranges, where it balances
    with hash routing instead.
    """
    from ..engine.parallel import ParallelExecutor

    engine = GTEA(graph, index="auto")
    engine.reachability  # build outside the measured regions
    plans = [engine.compile(query) for query in queries]
    reference = []
    for plan in plans:
        results, stats = engine.execute(plan)
        reference.append(
            (
                results,
                dict(stats.candidates_after_downward),
                dict(stats.candidates_after_upward),
                stats.downward_prune_ops,
            )
        )

    mismatches = survivor_mismatches = 0
    points: list[ParallelScalePoint] = []
    resolved_backend = backend
    for workers in worker_counts:
        executor = ParallelExecutor(
            engine, workers, backend=backend, shards=workers,
            strategy=strategy, min_shard_size=1,
        )
        try:
            resolved_backend = executor.backend
            for plan in plans:  # warmup: pool spin-up, worker caches
                executor.execute(plan)
            point = ParallelScalePoint(workers=workers, prune_seconds=0.0, wall_seconds=0.0, shard_tasks=0)
            started = time.perf_counter()
            for plan, (expected, down, up, prune_ops) in zip(plans, reference):
                results, stats = executor.execute(plan)
                mismatches += results != expected
                survivor_mismatches += (
                    dict(stats.candidates_after_downward) != down
                    or dict(stats.candidates_after_upward) != up
                    or stats.downward_prune_ops != prune_ops
                )
                point.candidates_seconds += stats.phase_seconds.get("candidates", 0.0)
                point.prune_seconds += stats.phase_seconds.get("prune_downward", 0.0)
                point.upward_seconds += stats.phase_seconds.get("prune_upward", 0.0)
                point.shard_tasks += stats.parallel_shard_tasks
                point.upward_tasks += stats.parallel_upward_tasks
                point.steals += stats.parallel_steals
            point.wall_seconds = time.perf_counter() - started
        finally:
            executor.close()
        points.append(point)
    return ParallelMeasurement(
        queries=len(queries),
        backend=resolved_backend,
        strategy=strategy,
        points=points,
        mismatches=mismatches,
        survivor_mismatches=survivor_mismatches,
    )


@dataclass
class CodegenQueryPoint:
    """One query's interpreted-vs-codegen warm comparison."""

    name: str
    interpreted_ms: float
    codegen_ms: float
    results: int

    @property
    def speedup(self) -> float:
        return self.interpreted_ms / self.codegen_ms if self.codegen_ms else 0.0


@dataclass
class CodegenMeasurement:
    """Interpreted-pipeline vs specialized-function comparison.

    Warm, engine-level: plans are compiled once and specialized once
    outside both measured regions, then the same plans run through
    ``GTEA.execute`` with and without their compiled function.  Answers
    are compared exactly per round; ``mismatches`` must be zero, and
    ``uncompiled`` counts plans the backend could not specialize
    (expected zero on the planner workload).
    """

    points: list[CodegenQueryPoint]
    mode: str
    mismatches: int
    uncompiled: int

    @property
    def speedup(self) -> float:
        """Aggregate warm speedup: total interpreted time / total codegen."""
        codegen_ms = sum(p.codegen_ms for p in self.points)
        if not codegen_ms:
            return 0.0
        return sum(p.interpreted_ms for p in self.points) / codegen_ms

    def rows(self) -> list[dict[str, float]]:
        return [
            {
                "query": point.name,
                "interpreted_ms": round(point.interpreted_ms, 3),
                "codegen_ms": round(point.codegen_ms, 3),
                "speedup": round(point.speedup, 2),
                "results": point.results,
            }
            for point in self.points
        ]


def _trimmed_mean_ms(samples: list[float]) -> float:
    """Mean in ms after dropping the min and max sample (noise guard)."""
    ordered = sorted(samples)
    if len(ordered) > 3:
        ordered = ordered[1:-1]
    return 1e3 * sum(ordered) / len(ordered)


def measure_codegen(
    graph: DataGraph,
    queries: list[tuple[str, GTPQ]],
    rounds: int = 7,
    mode: str = "auto",
) -> CodegenMeasurement:
    """Compare warm plan execution with and without plan codegen.

    Plans are compiled once and specialized once outside both measured
    regions (the paper's timing discipline: per-query work only), with
    one unmeasured warmup execution per arm, then ``rounds`` timed
    executions each; per-query times are min/max trimmed means.  This is
    exactly what a warm ``QuerySession(codegen=...)`` executes per
    evaluation once its caches hold the plan and the function.
    """
    from ..plan.codegen import CodegenError, compile_plan

    engine = GTEA(graph, index="3hop")
    engine.reachability  # build outside the measured regions
    compile_mode = "closure" if mode == "closure" else "source"

    mismatches = uncompiled = 0
    points: list[CodegenQueryPoint] = []
    for name, query in queries:
        plan = engine.compile(query)
        try:
            fn = compile_plan(plan, mode=compile_mode)
        except CodegenError:
            uncompiled += 1
            fn = None
        expected, _ = engine.execute(plan)  # warmup + reference
        if fn is not None:
            engine.execute(plan, codegen=fn)  # warmup the specialized arm
        interpreted_samples: list[float] = []
        codegen_samples: list[float] = []
        for _ in range(rounds):
            started = time.perf_counter()
            base_answer, _ = engine.execute(plan)
            interpreted_samples.append(time.perf_counter() - started)
            started = time.perf_counter()
            answer, _ = engine.execute(plan, codegen=fn)
            codegen_samples.append(time.perf_counter() - started)
            mismatches += answer != expected
            mismatches += base_answer != expected
        points.append(
            CodegenQueryPoint(
                name=name,
                interpreted_ms=_trimmed_mean_ms(interpreted_samples),
                codegen_ms=_trimmed_mean_ms(codegen_samples),
                results=len(expected),
            )
        )
    return CodegenMeasurement(
        points=points, mode=mode, mismatches=mismatches, uncompiled=uncompiled
    )


# ----------------------------------------------------------------------
# Per-query index choice (partial vs full builds)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IndexChoicePoint:
    """Cold first-answer times of one query under both index arms."""

    name: str
    partial_ms: float  #: cold evaluation through per-query costing
    full_ms: float  #: cold evaluation with the ladder's full index pinned
    results: int
    partial_builds: int
    partial_hits: int
    footprint: int | None

    @property
    def speedup(self) -> float:
        return self.full_ms / self.partial_ms if self.partial_ms else 0.0


@dataclass
class IndexChoiceMeasurement:
    """Result of :func:`measure_index_choice`."""

    points: list[IndexChoicePoint]
    full_index: str
    mismatches: int = 0
    fallbacks: int = 0

    @property
    def speedup(self) -> float:
        """Aggregate cold first-answer speedup (total full over partial)."""
        partial_ms = sum(p.partial_ms for p in self.points)
        if partial_ms == 0.0:
            return 0.0
        return sum(p.full_ms for p in self.points) / partial_ms

    @property
    def partial_picked(self) -> int:
        """Queries whose cold run actually built or reused a partial index."""
        return sum(1 for p in self.points if p.partial_builds or p.partial_hits)

    def rows(self) -> list[dict[str, float]]:
        return [
            {
                "query": point.name,
                "full_ms": round(point.full_ms, 3),
                "partial_ms": round(point.partial_ms, 3),
                "speedup": round(point.speedup, 2),
                "footprint": point.footprint or 0,
                "results": point.results,
            }
            for point in self.points
        ]


def measure_index_choice(
    graph: DataGraph,
    queries: list[tuple[str, GTPQ]],
    rounds: int = 3,
) -> IndexChoiceMeasurement:
    """Cold first answers: per-query partial indexes vs a full build.

    Each round evaluates every query on *fresh* sessions — one letting
    the per-query costing pick its arm (and pay any partial build), one
    pinned to the graph-shape ladder's full index (paying the full
    build) — so both timings are true cold first answers including index
    construction.  Per-query times are min/max trimmed means; answers
    are asserted identical across arms every round.
    """
    from ..graph.stats import graph_stats
    from ..plan import choose_index

    full_name = choose_index(graph_stats(graph))
    mismatches = fallbacks = 0
    points: list[IndexChoicePoint] = []
    for name, query in queries:
        partial_samples: list[float] = []
        full_samples: list[float] = []
        expected = None
        builds = hits = 0
        footprint = None
        for _ in range(rounds):
            session = QuerySession(graph)
            started = time.perf_counter()
            answer, stats = session.evaluate_with_stats(query)
            partial_samples.append(time.perf_counter() - started)
            builds += stats.partial_builds
            hits += stats.partial_hits
            fallbacks += stats.partial_fallbacks
            physical = session._plan_for(query).compiled.physical
            if physical.footprint_estimate is not None:
                footprint = physical.footprint_estimate
            session.close()

            pinned = QuerySession(graph, index=full_name)
            started = time.perf_counter()
            full_answer = pinned.evaluate(query)
            full_samples.append(time.perf_counter() - started)
            pinned.close()

            if expected is None:
                expected = answer
            mismatches += answer != expected
            mismatches += full_answer != expected
        points.append(
            IndexChoicePoint(
                name=name,
                partial_ms=_trimmed_mean_ms(partial_samples),
                full_ms=_trimmed_mean_ms(full_samples),
                results=len(expected),
                partial_builds=builds,
                partial_hits=hits,
                footprint=footprint,
            )
        )
    return IndexChoiceMeasurement(
        points=points, full_index=full_name, mismatches=mismatches, fallbacks=fallbacks
    )
