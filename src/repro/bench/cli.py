"""``repro-bench`` — command-line front end for the bench harness.

Subcommands:

* ``session-cache`` — the warm-vs-cold session comparison of
  ``benchmarks/bench_session_cache.py`` on a generated XMark-like graph;
* ``stats`` — dataset statistics (Table 1 style) for a generated graph;
* ``explain`` — the compiled plan (normalize → logical → physical) of a
  paper workload query, or of a serialized GTPQ passed as JSON;
* ``shared`` — batch evaluation through the shared-plan DAG vs the
  per-query path on a synthetic overlapping workload, plus the batch's
  sharing structure (``QuerySession.explain_batch``);
* ``adaptive`` — the adaptive operator pipeline (runtime prune
  reordering + backbone-empty early exit) vs the static plan order on
  the skewed workload whose label statistics mislead the estimates;
* ``codegen`` — specialized plan functions (``repro.plan.codegen``)
  vs the interpreted operator pipeline, warm, on the Fig. 7 queries,
  with exact-answer checks and an optional speedup floor;
* ``index-choice`` — per-query index costing (``repro.plan.cost``)
  building lazily-pooled partial indexes over the query's candidate
  footprint vs a pinned full-graph build, cold first answer on the
  enclave workload, with exact-answer checks and an optional speedup
  floor;
* ``parallel`` — sharded, concurrent downward-prune execution
  (``repro.engine.parallel``) swept over worker counts on the funnel
  workload, with exact-answer and byte-identical-survivor checks
  against the single-shard run;
* ``serving`` — the persistence + serving tier: a cross-process
  warm-restart race through ``python -m repro.store.restart`` (cold
  process persists, warm process rehydrates; answers must be
  digest-identical) followed by a concurrent Fig. 7 burst against a
  :class:`repro.serve.QueryServer` pool, reporting qps and p50/p99
  latency, with an optional first-answer speedup floor.

Installed as a console script by ``pip install .``; run ``repro-bench
--help`` for options.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import random
import subprocess
import sys
import tempfile
import time

from ..datasets import (
    fig7_query,
    funnel_workload,
    generate_xmark,
    index_choice_workload,
    random_labeled_graph,
    random_query_batch,
    skewed_workload,
)
from ..engine import QuerySession
from ..graph import graph_stats
from ..reachability import select_auto_index
from .harness import (
    format_table,
    measure_adaptive,
    measure_codegen,
    measure_index_choice,
    measure_parallel,
    measure_warm_cold,
)


def _build_workload(repeats: int):
    """Fig. 7 queries, repeated — the heavy-repeated-traffic shape."""
    variants = [
        fig7_query("q1", person_group=2, item_group=4, seller_group=6),
        fig7_query("q2", person_group=2, item_group=4, seller_group=6),
        fig7_query("q3", person_group=2, item_group=4, seller_group=6),
    ]
    return [variants[i % len(variants)] for i in range(repeats * len(variants))]


def _cmd_session_cache(args: argparse.Namespace) -> int:
    if args.repeats < 1:
        print("repro-bench: error: --repeats must be >= 1", file=sys.stderr)
        return 2
    dataset = generate_xmark(scale=args.scale, seed=args.seed)
    workload = _build_workload(args.repeats)
    try:
        measurement = measure_warm_cold(dataset.graph, workload, index=args.index)
    except ValueError as error:  # e.g. an unknown --index name
        print(f"repro-bench: error: {error}", file=sys.stderr)
        return 2
    row = measurement.row()
    print(format_table(
        f"QuerySession warm vs cold ({len(workload)} queries, "
        f"XMark scale {args.scale})",
        list(row),
        [list(row.values())],
    ))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    dataset = generate_xmark(scale=args.scale, seed=args.seed)
    stats = graph_stats(dataset.graph)
    row = stats.row()
    row["auto_index"] = select_auto_index(stats)
    print(format_table(
        f"XMark-like dataset, scale {args.scale}",
        list(row),
        [list(row.values())],
    ))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    dataset = generate_xmark(scale=args.scale, seed=args.seed)
    session = QuerySession(dataset.graph, index=args.index)
    if args.query_json is not None:
        try:
            with open(args.query_json, encoding="utf-8") as handle:
                query = handle.read()
        except OSError as error:
            print(f"repro-bench: error: {error}", file=sys.stderr)
            return 2
    else:
        query = fig7_query(
            args.variant, person_group=2, item_group=4, seller_group=6
        )
    try:
        text = session.explain(query)
    except (ValueError, KeyError, TypeError) as error:
        print(f"repro-bench: error: cannot compile query: {error}", file=sys.stderr)
        return 2
    title = (
        f"compiled plan ({args.query_json or f'Fig. 7 {args.variant}'}, "
        f"XMark scale {args.scale}, index={args.index})"
    )
    print(title)
    print("-" * len(title))
    print(text)
    return 0


def _cmd_shared(args: argparse.Namespace) -> int:
    if args.batch < 1 or args.nodes < 2 or not 0.0 <= args.overlap <= 1.0:
        print(
            "repro-bench: error: --batch must be >= 1, --nodes >= 2, "
            "and --overlap in [0, 1]",
            file=sys.stderr,
        )
        return 2
    rng = random.Random(args.seed)
    graph = random_labeled_graph(
        args.nodes, rng, labels="abcdef", edge_prob=2.2 / args.nodes
    )
    batch = random_query_batch(
        graph, rng, batch_size=args.batch, size_range=(3, 6), overlap=args.overlap
    )

    shared_session = QuerySession(graph, result_cache_size=0)
    started = time.perf_counter()
    shared = shared_session.evaluate_many(batch)
    shared_ms = 1e3 * (time.perf_counter() - started)
    started = time.perf_counter()
    isolated = QuerySession(graph, result_cache_size=0).evaluate_many(
        batch, share=False
    )
    isolated_ms = 1e3 * (time.perf_counter() - started)
    if shared.results != isolated.results:
        print(
            "repro-bench: error: shared and per-query paths disagree "
            "(this is a bug — please report the seed)",
            file=sys.stderr,
        )
        return 1

    ops_shared = shared.stats.downward_prune_ops
    ops_isolated = isolated.stats.downward_prune_ops
    saved = 1.0 - ops_shared / ops_isolated if ops_isolated else 0.0
    print(format_table(
        f"Shared-plan batch vs per-query compilation "
        f"({args.batch} queries, overlap {args.overlap:.0%}, n={args.nodes})",
        ["path", "prune_ops", "shared_occ", "subtree_hits", "ms"],
        [
            ["per-query", ops_isolated, 0, 0, round(isolated_ms, 2)],
            [
                "shared-dag",
                ops_shared,
                shared.stats.batch_shared_subtrees,
                shared.stats.subtree_cache_hits,
                round(shared_ms, 2),
            ],
        ],
    ))
    print(f"prune work saved: {saved:.0%}")
    if args.explain:
        # The timed session's plan cache already holds every compiled
        # plan, so this renders without re-running the optimizer.
        print()
        print(shared_session.explain_batch(batch))
    return 0


def _cmd_adaptive(args: argparse.Namespace) -> int:
    if args.workload_scale < 1 or args.repeats < 1:
        print(
            "repro-bench: error: --workload-scale and --repeats must be >= 1",
            file=sys.stderr,
        )
        return 2
    graph, queries = skewed_workload(
        scale=args.workload_scale, repeats=args.repeats, seed=args.seed
    )
    measurement = measure_adaptive(graph, queries)
    if measurement.mismatches:
        print(
            "repro-bench: error: adaptive and static executors disagree "
            "(this is a bug — please report the seed)",
            file=sys.stderr,
        )
        return 1
    row = measurement.row()
    print(format_table(
        f"Adaptive vs static prune order ({len(queries)} skewed queries, "
        f"n={graph.num_nodes})",
        list(row),
        [list(row.values())],
    ))
    print(f"prune ops saved: {measurement.prune_ops_saved:.0%}")
    return 0


def _cmd_codegen(args: argparse.Namespace) -> int:
    if args.rounds < 1:
        print("repro-bench: error: --rounds must be >= 1", file=sys.stderr)
        return 2
    graph = generate_xmark(scale=args.scale, seed=args.seed).graph
    queries = [
        (variant, fig7_query(variant, person_group=2, item_group=4, seller_group=6))
        for variant in ("q1", "q2", "q3")
    ]
    measurement = measure_codegen(graph, queries, rounds=args.rounds, mode=args.mode)
    if measurement.mismatches:
        print(
            "repro-bench: error: codegen and interpreted execution disagree "
            "(this is a bug — please report the seed)",
            file=sys.stderr,
        )
        return 1
    if measurement.uncompiled:
        print(
            f"repro-bench: error: {measurement.uncompiled} quer(ies) fell back "
            "to the interpreted pipeline on the planner workload",
            file=sys.stderr,
        )
        return 1
    rows = measurement.rows()
    print(format_table(
        f"Plan codegen vs interpreted pipeline (warm, Fig. 7 queries, "
        f"n={graph.num_nodes}, mode={measurement.mode})",
        list(rows[0]),
        [list(row.values()) for row in rows],
    ))
    print(f"aggregate warm speedup: {measurement.speedup:.2f}x")
    if args.enforce_floor and measurement.speedup < args.floor:
        print(
            f"repro-bench: error: aggregate speedup {measurement.speedup:.2f}x "
            f"is below the floor ({args.floor:.2f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_index_choice(args: argparse.Namespace) -> int:
    if args.rounds < 1 or args.workload_scale < 1 or args.queries < 1:
        print(
            "repro-bench: error: --rounds, --workload-scale and --queries "
            "must be >= 1",
            file=sys.stderr,
        )
        return 2
    graph, queries = index_choice_workload(
        scale=args.workload_scale, queries=args.queries, seed=args.seed
    )
    named = [(f"q{position}", query) for position, query in enumerate(queries)]
    measurement = measure_index_choice(graph, named, rounds=args.rounds)
    if measurement.mismatches:
        print(
            "repro-bench: error: partial and full-index sessions disagree "
            "(this is a bug — please report the seed)",
            file=sys.stderr,
        )
        return 1
    if measurement.fallbacks:
        print(
            f"repro-bench: error: {measurement.fallbacks} evaluation(s) fell "
            "back to a full index on the enclave workload",
            file=sys.stderr,
        )
        return 1
    rows = measurement.rows()
    print(format_table(
        f"Partial vs full index, cold first answer (enclave workload, "
        f"n={graph.num_nodes}, full={measurement.full_index})",
        list(rows[0]),
        [list(row.values()) for row in rows],
    ))
    print(f"aggregate cold first-answer speedup: {measurement.speedup:.2f}x")
    if args.enforce_floor and measurement.speedup < args.floor:
        print(
            f"repro-bench: error: aggregate speedup {measurement.speedup:.2f}x "
            f"is below the floor ({args.floor:.2f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_parallel(args: argparse.Namespace) -> int:
    if args.workload_scale < 1 or args.queries < 1:
        print(
            "repro-bench: error: --workload-scale and --queries must be >= 1",
            file=sys.stderr,
        )
        return 2
    workers = tuple(dict.fromkeys(args.workers))  # dedupe, keep order
    if any(count < 1 for count in workers) or 1 not in workers:
        print(
            "repro-bench: error: --workers must be positive and include 1 "
            "(the single-shard baseline)",
            file=sys.stderr,
        )
        return 2
    if args.floor_slack < 0.0:
        print("repro-bench: error: --floor-slack must be >= 0", file=sys.stderr)
        return 2
    graph, queries = funnel_workload(
        scale=args.workload_scale, queries=args.queries, seed=args.seed
    )
    try:
        measurement = measure_parallel(
            graph, queries, worker_counts=workers, backend=args.backend
        )
    except ValueError as error:  # e.g. an unknown --backend name
        print(f"repro-bench: error: {error}", file=sys.stderr)
        return 2
    if measurement.mismatches or measurement.survivor_mismatches:
        print(
            "repro-bench: error: sharded and serial execution disagree "
            "(this is a bug — please report the seed)",
            file=sys.stderr,
        )
        return 1
    rows = measurement.rows()
    print(format_table(
        f"Sharded pipeline, end to end ({len(queries)} funnel queries, "
        f"n={graph.num_nodes}, backend={measurement.backend}, "
        f"strategy={measurement.strategy})",
        list(rows[0]),
        [list(row.values()) for row in rows],
    ))
    top = max(workers)
    print(f"prune-phase speedup at {top} workers: {measurement.speedup(top):.2f}x")
    print(f"end-to-end wall speedup at {top} workers: {measurement.wall_speedup(top):.2f}x")
    if args.enforce_floor:
        if top >= 4 and _usable_cores() >= 4 and measurement.backend != "serial":
            # Real-concurrency floor: on a >= 4-core runner with a real
            # pool backend, the full sharded pipeline must clear an
            # end-to-end wall speedup at the top worker count.
            if measurement.wall_speedup(top) < args.floor:
                print(
                    f"repro-bench: error: end-to-end wall speedup at {top} "
                    f"workers ({measurement.wall_speedup(top):.2f}x) is below "
                    f"the {args.floor}x floor",
                    file=sys.stderr,
                )
                return 1
        else:
            # Fallback sanity floor: where real speedup is unattainable
            # (serial backend, few cores), concurrency must not *cost*
            # wall time beyond the slack.
            base = next(p for p in measurement.points if p.workers == 1)
            point = next(p for p in measurement.points if p.workers == top)
            budget = base.wall_seconds * (1.0 + args.floor_slack)
            if point.wall_seconds > budget:
                print(
                    f"repro-bench: error: wall time at {top} workers "
                    f"({point.wall_seconds * 1e3:.1f} ms) exceeds the "
                    f"single-shard budget ({budget * 1e3:.1f} ms)",
                    file=sys.stderr,
                )
                return 1
        if not _steal_sanity(graph, queries, top, args.backend):
            print(
                "repro-bench: error: no steals observed with shards > workers "
                "(the work-stealing deque is not draining)",
                file=sys.stderr,
            )
            return 1
    return 0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _steal_sanity(graph, queries, workers: int, backend: str) -> bool:
    """Do completions drain the pending deque when waves overflow?

    With ``shards = 2 * workers`` every non-inline prune wave enqueues
    more tasks than the in-flight cap, so ``parallel_steals`` must come
    out positive — deterministically, on every backend including
    ``"serial"``.
    """
    from ..engine import GTEA
    from ..engine.parallel import ParallelExecutor

    engine = GTEA(graph, index="auto")
    steals = 0
    executor = ParallelExecutor(
        engine, workers, backend=backend, shards=workers * 2, min_shard_size=1
    )
    try:
        for query in queries:
            _, stats = executor.execute(engine.compile(query))
            steals += stats.parallel_steals
    finally:
        executor.close()
    return steals > 0


def _restart_process(args: argparse.Namespace, store: str, *, persist: bool) -> dict:
    """One leg of the warm-restart race (a fresh interpreter); its report."""
    import repro

    env = dict(os.environ)
    package_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable, "-m", "repro.store.restart",
        "--store", store,
        "--scale", str(args.scale),
        "--seed", str(args.seed),
        "--codegen",
    ]
    if persist:
        command.append("--persist")
    result = subprocess.run(
        command, env=env, capture_output=True, text=True, check=True
    )
    return json.loads(result.stdout)


def _cmd_serving(args: argparse.Namespace) -> int:
    if args.workers < 1 or args.requests < 1:
        print(
            "repro-bench: error: --workers and --requests must be >= 1",
            file=sys.stderr,
        )
        return 2
    from ..serve import QueryServer
    from ..store.restart import fig7_workload

    store = args.store or tempfile.mkdtemp(prefix="repro-serving-")

    # Leg 1: the cross-process warm-restart race.  Each leg is a fresh
    # interpreter so the comparison measures real process start-up, not
    # an in-process cache.
    try:
        cold = _restart_process(args, store, persist=True)
        warm = _restart_process(args, store, persist=False)
    except subprocess.CalledProcessError as error:
        print(
            f"repro-bench: error: restart driver failed:\n{error.stderr}",
            file=sys.stderr,
        )
        return 1
    if warm["answer_digests"] != cold["answer_digests"]:
        print(
            "repro-bench: error: warm restart answered differently from the "
            "cold build (this is a bug — please report the seed)",
            file=sys.stderr,
        )
        return 1
    speedup = cold["first_answer_seconds"] / warm["first_answer_seconds"]

    # Leg 2: concurrent burst against the worker pool over the same store.
    graph = generate_xmark(scale=args.scale, seed=args.seed).graph
    queries = fig7_workload()

    async def burst() -> dict:
        server = QueryServer(
            graph, workers=args.workers, store=store, codegen="auto"
        )
        await server.start()
        for query in queries:  # warmup: compile/prime outside the timed burst
            await server.submit(query)
        server.stats.latencies.clear()
        server.stats.requests = 0
        started = time.perf_counter()
        await asyncio.gather(
            *[
                server.submit(queries[i % len(queries)])
                for i in range(args.requests)
            ]
        )
        wall = time.perf_counter() - started
        summary = server.stats.summary()
        await server.stop()
        summary["qps"] = round(summary["requests"] / wall, 1)
        return summary

    summary = asyncio.run(burst())
    if summary["errors"]:
        print(
            f"repro-bench: error: {summary['errors']} request(s) failed",
            file=sys.stderr,
        )
        return 1
    print(format_table(
        f"Serving tier ({args.workers} workers, {args.requests} concurrent "
        f"Fig. 7 requests, XMark scale {args.scale})",
        ["workers", "requests", "qps", "p50_ms", "p99_ms",
         "cold_first_ms", "warm_first_ms", "restart_speedup"],
        [[
            args.workers,
            summary["requests"],
            summary["qps"],
            summary["p50_ms"],
            summary["p99_ms"],
            round(cold["first_answer_seconds"] * 1e3, 1),
            round(warm["first_answer_seconds"] * 1e3, 1),
            round(speedup, 2),
        ]],
    ))
    rehydrated = sum(warm["rehydrated"].values())
    print(f"warm restart rehydrated {rehydrated} artifacts; "
          f"first answer {speedup:.2f}x faster than cold")
    if args.enforce_floor and speedup < args.floor:
        print(
            f"repro-bench: error: warm-restart speedup {speedup:.2f}x is "
            f"below the floor ({args.floor:.2f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark harness for the GTPQ/GTEA reproduction.",
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="XMark scale factor (default 0.05)")
    parser.add_argument("--seed", type=int, default=97)
    subparsers = parser.add_subparsers(dest="command", required=True)

    session = subparsers.add_parser(
        "session-cache", help="warm-vs-cold QuerySession comparison"
    )
    session.add_argument("--repeats", type=int, default=5,
                         help="repetitions of the Fig. 7 query triple")
    session.add_argument("--index", default="auto",
                         help="reachability index name (default: auto)")
    session.set_defaults(func=_cmd_session_cache)

    stats = subparsers.add_parser("stats", help="dataset statistics")
    stats.set_defaults(func=_cmd_stats)

    explain = subparsers.add_parser(
        "explain", help="compiled plan of a query (normalize/logical/physical)"
    )
    explain.add_argument("--variant", default="q3", choices=["q1", "q2", "q3"],
                         help="Fig. 7 query variant (default: q3)")
    explain.add_argument("--index", default="auto",
                         help="reachability index name (default: auto)")
    explain.add_argument("--query-json", metavar="FILE",
                         help="explain a serialized GTPQ (JSON file) instead")
    explain.set_defaults(func=_cmd_explain)

    shared = subparsers.add_parser(
        "shared", help="shared-plan batch evaluation vs per-query compilation"
    )
    shared.add_argument("--batch", type=int, default=24,
                        help="workload size (default 24)")
    shared.add_argument("--overlap", type=float, default=0.6,
                        help="subtree graft probability (default 0.6)")
    shared.add_argument("--nodes", type=int, default=400,
                        help="random graph size (default 400)")
    shared.add_argument("--explain", action="store_true",
                        help="also print the batch's shared-plan DAG")
    shared.set_defaults(func=_cmd_shared)

    adaptive = subparsers.add_parser(
        "adaptive", help="adaptive prune reordering vs static plan order"
    )
    adaptive.add_argument("--workload-scale", type=int, default=4,
                          help="skewed-graph scale factor (default 4)")
    adaptive.add_argument("--repeats", type=int, default=8,
                          help="copies of each skewed query shape (default 8)")
    adaptive.set_defaults(func=_cmd_adaptive)

    codegen = subparsers.add_parser(
        "codegen", help="specialized plan functions vs the interpreted pipeline"
    )
    codegen.add_argument("--rounds", type=int, default=7,
                         help="timed warm evaluations per query (default 7)")
    codegen.add_argument("--mode", default="auto", choices=["auto", "closure"],
                         help="codegen backend mode (default: auto = source)")
    codegen.add_argument("--enforce-floor", action="store_true",
                         help="fail unless the aggregate warm speedup reaches "
                              "--floor")
    codegen.add_argument("--floor", type=float, default=1.5,
                         help="speedup floor for --enforce-floor (default 1.5)")
    codegen.set_defaults(func=_cmd_codegen)

    index_choice = subparsers.add_parser(
        "index-choice",
        help="per-query partial indexes vs a full build, cold first answer",
    )
    index_choice.add_argument("--workload-scale", type=int, default=2,
                              help="enclave-graph scale factor (default 2)")
    index_choice.add_argument("--queries", type=int, default=4,
                              help="enclave queries in the workload (default 4)")
    index_choice.add_argument("--rounds", type=int, default=3,
                              help="cold evaluations per query per arm "
                                   "(default 3)")
    index_choice.add_argument("--enforce-floor", action="store_true",
                              help="fail unless the aggregate cold "
                                   "first-answer speedup reaches --floor")
    index_choice.add_argument("--floor", type=float, default=1.5,
                              help="speedup floor for --enforce-floor "
                                   "(default 1.5)")
    index_choice.set_defaults(func=_cmd_index_choice)

    parallel = subparsers.add_parser(
        "parallel", help="sharded concurrent prune execution vs single-shard"
    )
    parallel.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4],
                          help="worker counts to sweep; must include 1 "
                               "(default: 1 2 4)")
    parallel.add_argument("--workload-scale", type=int, default=2,
                          help="funnel-graph scale factor (default 2)")
    parallel.add_argument("--queries", type=int, default=4,
                          help="funnel queries in the workload (default 4)")
    parallel.add_argument("--backend", default="auto",
                          help="pool backend: auto, process, thread or serial "
                               "(default: auto)")
    parallel.add_argument("--enforce-floor", action="store_true",
                          help="fail unless the end-to-end wall speedup at the "
                               "top worker count reaches --floor (>= 4 cores "
                               "and a real pool backend), or — where real "
                               "speedup is unattainable — wall time stays "
                               "within the single-shard budget; also runs the "
                               "work-stealing sanity probe")
    parallel.add_argument("--floor", type=float, default=1.5,
                          help="end-to-end wall speedup floor for "
                               "--enforce-floor (default 1.5)")
    parallel.add_argument("--floor-slack", type=float, default=0.25,
                          help="budget slack for --enforce-floor on few-core "
                               "or serial-backend runs (default 0.25)")
    parallel.set_defaults(func=_cmd_parallel)

    serving = subparsers.add_parser(
        "serving", help="warm-store restart race + concurrent serving burst"
    )
    serving.add_argument("--store", metavar="DIR",
                         help="store directory (default: a fresh temp dir)")
    serving.add_argument("--workers", type=int, default=4,
                         help="server worker sessions (default 4)")
    serving.add_argument("--requests", type=int, default=96,
                         help="concurrent requests in the burst (default 96)")
    serving.add_argument("--enforce-floor", action="store_true",
                         help="fail unless the warm-restart first-answer "
                              "speedup reaches --floor")
    serving.add_argument("--floor", type=float, default=3.0,
                         help="speedup floor for --enforce-floor (default 3.0)")
    serving.set_defaults(func=_cmd_serving)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
