"""LRU caches with hit/miss accounting for the query-session layer.

Deliberately tiny and dependency-free: an ordered-dict LRU whose counters
feed the ``*_cache_hits`` / ``*_cache_misses`` fields of
:class:`repro.engine.stats.EvaluationStats`, so cache effectiveness shows
up in the same reports as the paper's I/O metrics.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator

_MISSING = object()


class CacheCounters:
    """Mutable hit/miss/eviction counters of one cache."""

    __slots__ = ("hits", "misses", "evictions", "invalidations")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:
        return (
            f"CacheCounters(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, invalidations={self.invalidations})"
        )


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``capacity <= 0`` disables the cache entirely (every lookup misses,
    nothing is stored) — handy for cold-path benchmarking without
    branching at call sites.
    """

    __slots__ = ("capacity", "counters", "_data")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.counters = CacheCounters()
        self._data: dict[Hashable, Any] = {}

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, counting the hit/miss and refreshing recency."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.counters.misses += 1
            return default
        self.counters.hits += 1
        # dicts preserve insertion order; re-inserting marks recency.
        del self._data[key]
        self._data[key] = value
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but without touching the hit/miss counters.

        Recency is still refreshed.  For callers that probe several keys
        for one logical operation and do their own accounting (the
        session's plan lookup probes an alias key and a fingerprint key).
        """
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            return default
        del self._data[key]
        self._data[key] = value
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/replace ``key``, evicting the least recent on overflow."""
        if self.capacity <= 0:
            return
        if key in self._data:
            del self._data[key]
        elif len(self._data) >= self.capacity:
            oldest = next(iter(self._data))
            del self._data[oldest]
            self.counters.evictions += 1
        self._data[key] = value

    def items(self) -> list[tuple[Hashable, Any]]:
        """A recency-ordered (oldest first) snapshot of the contents.

        Does not touch counters or recency — used by the warm store to
        persist a cache wholesale.
        """
        return list(self._data.items())

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        dropped = len(self._data)
        self._data.clear()
        if dropped:
            self.counters.invalidations += 1
        return dropped
