"""The maximal matching graph — compact graph-shaped results (Section 4.3).

After pruning, the matches of the *shrunk prime subtree* are materialized
as a graph ``Qg(G) = (Vr, Er)``: one vertex per surviving candidate, one
edge per matched query edge.  Every data node appears at most once and
every structural relationship is a single edge — the paper's alternative
to exponential tuple sets (space at most quadratic).

Each vertex keeps one *branch list* per query-child, holding the vertices
matching that child (Example 12's ``bch`` lists).
"""

from __future__ import annotations

from ..query.gtpq import EdgeType
from ..reachability.contour import merge_succ_lists
from .prune import MatSets, PruningContext


class MatchingGraph:
    """Matches of a (shrunk) prime subtree in graph form.

    Attributes:
        roots: the fragment roots (query-node ids of subtree fragments).
        vertices: per query node, the list of matched data nodes.
        branches: ``branches[(query_node, data_node)][child_id]`` is the
            list of data nodes matching ``child_id`` reachable from
            ``data_node`` under the edge's semantics.
    """

    def __init__(self):
        self.roots: list[str] = []
        self.children: dict[str, list[str]] = {}
        self.vertices: dict[str, list[int]] = {}
        self.branches: dict[tuple[str, int], dict[str, list[int]]] = {}

    @property
    def num_vertices(self) -> int:
        return sum(len(nodes) for nodes in self.vertices.values())

    @property
    def num_edges(self) -> int:
        return sum(
            len(targets)
            for branch_lists in self.branches.values()
            for targets in branch_lists.values()
        )


def build_matching_graph(
    context: PruningContext,
    mats: MatSets,
    fragments: list[list[str]],
) -> MatchingGraph:
    """Compute matches for every query edge of the shrunk prime subtree.

    Args:
        context: pruning context (graph, query, 3-hop index).
        mats: fully pruned candidate sets.
        fragments: each fragment is a pre-order node list of one connected
            piece of the shrunk prime subtree.
    """
    query, graph = context.query, context.graph
    result = MatchingGraph()
    for fragment in fragments:
        fragment_set = set(fragment)
        result.roots.append(fragment[0])
        for node_id in fragment:
            child_ids = [
                c for c in query.children[node_id] if c in fragment_set
            ]
            result.children[node_id] = child_ids
            result.vertices.setdefault(node_id, list(mats[node_id]))
            if not child_ids:
                continue
            for child_id in child_ids:
                result.vertices.setdefault(child_id, list(mats[child_id]))
                if query.edge_type(child_id) is EdgeType.CHILD:
                    _pc_edges(graph, result, node_id, child_id, mats)
                else:
                    _ad_edges(context, result, node_id, child_id, mats)
    return result


def _pc_edges(graph, result: MatchingGraph, parent_id, child_id, mats) -> None:
    child_set = set(mats[child_id])
    for source in mats[parent_id]:
        targets = [t for t in graph.successors(source) if t in child_set]
        result.branches.setdefault((parent_id, source), {})[child_id] = targets


def _ad_edges(
    context: PruningContext, result: MatchingGraph, parent_id, child_id, mats
) -> None:
    """AD edge matches via per-source successor contours.

    For each source the candidates of the child are grouped by chain in
    ascending order: once one chain member is reachable all deeper members
    are, so the tail of each chain is filled without index probes (the
    optimization the paper describes for reusing PruneUpward's technique).
    """
    index, reach = context.index, context.reach
    if index is None:
        _ad_edges_generic(context, result, parent_id, child_id, mats)
        return
    cover = index.cover
    by_component: dict[int, list[int]] = {}
    for candidate in mats[child_id]:
        by_component.setdefault(reach.component_of(candidate), []).append(candidate)
    by_chain: dict[int, list[int]] = {}
    for component in by_component:
        by_chain.setdefault(cover.cid[component], []).append(component)
    for members in by_chain.values():
        members.sort(key=lambda c: cover.sid[c])

    from ..reachability.contour import contour_reaches_node

    for source in mats[parent_id]:
        source_component = reach.component_of(source)
        contour = merge_succ_lists(index, [source_component])
        targets: list[int] = []
        for members in by_chain.values():
            confirmed = False
            for component in members:
                if confirmed:
                    targets.extend(by_component[component])
                    continue
                if component == source_component:
                    # Own component: included only when cyclic; everything
                    # deeper on this chain is reachable via real edges.
                    if reach.is_cyclic_component(component):
                        targets.extend(by_component[component])
                    confirmed = True
                    continue
                if contour_reaches_node(index, component, contour):
                    confirmed = True
                    targets.extend(by_component[component])
        result.branches.setdefault((parent_id, source), {})[child_id] = targets


def _ad_edges_generic(
    context: PruningContext, result: MatchingGraph, parent_id, child_id, mats
) -> None:
    """AD edge matches via plain index probes (non-3-hop indexes).

    Target lists are memoized per source component — all sources in one
    component strictly reach the same candidates.
    """
    reach = context.reach
    dag_index = reach.index
    by_component: dict[int, list[int]] = {}
    for candidate in mats[child_id]:
        by_component.setdefault(reach.component_of(candidate), []).append(candidate)
    targets_of: dict[int, list[int]] = {}
    for source in mats[parent_id]:
        source_component = reach.component_of(source)
        targets = targets_of.get(source_component)
        if targets is None:
            targets = []
            for component, members in by_component.items():
                if component == source_component:
                    if reach.is_cyclic_component(component):
                        targets.extend(members)
                elif dag_index.reaches(source_component, component):
                    targets.extend(members)
            targets_of[source_component] = targets
        result.branches.setdefault((parent_id, source), {})[child_id] = list(targets)
