"""GTEA — the paper's GTPQ evaluation algorithm (Section 4).

Evaluation runs in four explicit phases (see :mod:`repro.plan`):

1. **normalize** — simplify structural predicates, decide Theorem-1
   satisfiability, shrink the query with Algorithm-1 minimization;
2. **logical plan** — candidate sources, prune obligations, prune order;
3. **physical plan** — reachability index, and an explicit ordered
   *operator list* (:mod:`repro.engine.operators`): CandidateScan →
   DownwardPrune per node → UpwardPrune → BuildMatchingGraph →
   CollectResults, or BaselineDelegate / ConstantEmpty for plans routed
   away from GTEA;
4. **execute** — this module: a thin driver that instantiates the
   plan's operators and runs them through
   :func:`repro.engine.operators.run_pipeline`, optionally with
   adaptive prune reordering (re-sorting the remaining downward
   obligations by actual post-prune set sizes mid-flight).

:class:`repro.engine.parallel.ParallelExecutor` replaces phases of this
driver with sharded pool execution — the candidate scan, the downward
prune and the upward prune; BuildMatchingGraph and CollectResults (and
the batch path's whole plan suffix) always run through the serial
pipeline here, because the matching graph joins *across* the merged
survivor sets and has no per-candidate independence to shard on.

Usage::

    engine = GTEA(graph)                  # builds the 3-hop index once
    answer = engine.evaluate(query)       # compile + execute
    answer, stats = engine.evaluate_with_stats(query)
    plan = engine.compile(query)          # inspect: plan.explain()
    answer, stats = engine.execute(plan)  # repeated execution
    adaptive = GTEA(graph, adaptive=True) # runtime prune reordering
"""

from __future__ import annotations

from typing import Callable

from ..graph.digraph import DataGraph
from ..graph.stats import GraphStats, graph_stats
from ..plan import CompiledPlan, compile_query
from ..query.gtpq import GTPQ
from ..reachability.base import GraphReachability
from ..reachability.factory import build_reachability
from .operators import (
    BuildMatchingGraph,
    CollectResults,
    ExecutionState,
    Operator,
    UpwardPrune,
    build_gtea_operators,
    instantiate_operators,
    run_pipeline,
)
from .prune import MatSets
from .results import ResultSet
from .stats import EvaluationStats

#: type of the optional ``mat(u)`` source the session layer injects.
CandidateProvider = Callable[[GTPQ, str], list[int]]


class GTEA:
    """The GTPQ evaluation engine.

    The reachability index is built once per graph and shared across
    queries (indexes are query-independent, unlike the R-join index the
    paper criticizes in Section 4.1).
    """

    def __init__(
        self,
        graph: DataGraph,
        index: str = "3hop",
        reachability: GraphReachability | None = None,
        optimize: bool = True,
        adaptive: bool = False,
    ):
        """Args:
            graph: the data graph.
            index: reachability index name, or ``"auto"`` for the
                cost-based choice of the physical planner
                (:func:`repro.plan.cost.choose_index`).  The 3-hop index
                enables the paper's chain/contour pruning fast path; any
                other index runs through the generic set-reachability
                fallback in :mod:`repro.engine.prune`.
            reachability: pre-built reachability service to reuse.
            optimize: run Algorithm-1 minimization when compiling
                queries inline; the simplification and satisfiability
                phases always run.
            adaptive: re-sort the remaining downward prune obligations
                by actual post-prune candidate-set sizes after every
                :class:`~repro.engine.operators.DownwardPrune` step
                (with the backbone-empty early exit), instead of the
                compile-time estimate order.  Answers are identical;
                only the executed operator order (and count, on empty
                answers) changes.
        """
        self.graph = graph
        self._reachability = reachability
        self._index_request = index
        self._resolved_index: str | None = (
            reachability.index.name if reachability is not None else None
        )
        self.optimize = optimize
        self.adaptive = adaptive
        self._baseline = None
        self._stats_cache: tuple[int, GraphStats] | None = None

    @property
    def reachability(self) -> GraphReachability:
        """The reachability service, built lazily on first use.

        Laziness keeps plans that never probe an index — unsatisfiable
        queries, baseline-routed queries — from paying index
        construction.
        """
        if self._reachability is None:
            self._reachability = build_reachability(
                self.graph, self._index_request
            )
            self._resolved_index = self._reachability.index.name
        return self._reachability

    def resolved_index(self) -> str:
        """The concrete index name, resolved without building the index."""
        if self._resolved_index is None:
            if self._index_request == "auto":
                from ..plan.cost import choose_index

                self._resolved_index = choose_index(self.graph_statistics())
            else:
                self._resolved_index = self._index_request
        return self._resolved_index

    def baseline(self):
        """The lazily built TwigStackD delegate of the baseline route."""
        if self._baseline is None:
            from ..baselines.twigstackd import TwigStackD

            self._baseline = TwigStackD(self.graph)
        return self._baseline

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def graph_statistics(self) -> GraphStats:
        """Graph statistics for the planner, cached per graph version."""
        version = self.graph.version
        if self._stats_cache is None or self._stats_cache[0] != version:
            self._stats_cache = (version, graph_stats(self.graph))
        return self._stats_cache[1]

    def compile(self, query: GTPQ) -> CompiledPlan:
        """Compile ``query`` against this engine's index and graph."""
        return compile_query(
            self.graph,
            query,
            index=self.resolved_index(),
            minimize=self.optimize,
            stats=self.graph_statistics(),
        )

    # ------------------------------------------------------------------
    # Evaluation entry points
    # ------------------------------------------------------------------
    def evaluate(self, query: GTPQ, group_nodes: tuple[str, ...] = ()) -> ResultSet:
        """Evaluate ``query``; returns tuples aligned with its outputs."""
        results, _ = self.evaluate_with_stats(query, group_nodes=group_nodes)
        return results

    def evaluate_with_stats(
        self,
        query: GTPQ,
        group_nodes: tuple[str, ...] = (),
        output_structures: list[list[str]] | None = None,
        candidate_provider: CandidateProvider | None = None,
        plan: CompiledPlan | None = None,
    ) -> tuple[ResultSet | dict[int, ResultSet], EvaluationStats]:
        """Compile (unless given a plan) and execute, with counters.

        Args:
            query: the query.
            group_nodes: output nodes evaluated with the group operator.
            output_structures: optional list of alternative output-node
                lists (Appendix D); when given, the result is a dict
                mapping the structure's position to its answer set.
            candidate_provider: optional ``(query, node_id) -> mat(u)``
                source for candidate sets; defaults to a fresh
                :func:`~repro.query.naive.candidate_nodes` scan.  The
                session layer injects its shared candidate cache here.
            plan: a pre-compiled plan for ``query`` (the session layer
                caches these); compiled inline when omitted.
        """
        stats = EvaluationStats()
        if plan is None:
            with stats.time_phase("compile"):
                plan = self.compile(query)
        return self.execute(
            plan,
            group_nodes=group_nodes,
            output_structures=output_structures,
            candidate_provider=candidate_provider,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Plan execution — a thin driver over the plan's operator list
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: CompiledPlan,
        group_nodes: tuple[str, ...] = (),
        output_structures: list[list[str]] | None = None,
        candidate_provider: CandidateProvider | None = None,
        stats: EvaluationStats | None = None,
        adaptive: bool | None = None,
        codegen=None,
    ) -> tuple[ResultSet | dict[int, ResultSet], EvaluationStats]:
        """Run a compiled plan; see :meth:`evaluate_with_stats` for args.

        Unsatisfiable plans return empty without touching the graph or
        the reachability index (zero candidate fetches, zero lookups).
        Group nodes and alternative output structures are evaluated
        against the *original* query — their node ids may reference
        nodes the rewrite dropped or relocated.  ``adaptive`` overrides
        the engine-level flag for this execution.

        ``codegen`` optionally carries a specialized
        :class:`~repro.plan.codegen.CompiledPlanFunction` for this plan
        (the session layer caches them per fingerprint).  It is used
        only when it actually applies — plain GTEA routing, no group
        nodes or output structures, no adaptive reordering, and an
        index match — so passing one is always safe; anything else
        falls back to the interpreted operator pipeline.
        """
        if stats is None:
            stats = EvaluationStats()
        if adaptive is None:
            adaptive = self.adaptive

        if (
            codegen is not None
            and not adaptive
            and not group_nodes
            and output_structures is None
            and plan.physical.executor == "gtea"
            and plan.physical.covers_query(plan.query)
            and codegen.index_name == self.resolved_index()
        ):
            state = ExecutionState(
                self, plan.query, stats, candidate_provider=candidate_provider
            )
            codegen(state)
            return state.answer, stats

        query, operators = self._instantiate(plan, group_nodes, output_structures)
        state = ExecutionState(
            self,
            query,
            stats,
            group_nodes=tuple(group_nodes),
            output_structures=output_structures,
            candidate_provider=candidate_provider,
        )
        run_pipeline(state, operators, adaptive=adaptive)
        return state.answer, stats

    def _instantiate(
        self,
        plan: CompiledPlan,
        group_nodes: tuple[str, ...],
        output_structures: list[list[str]] | None,
    ) -> tuple[GTPQ, list[Operator]]:
        """The query to run and its operator pipeline, from the plan.

        The plan's operator list (``plan.physical.operators``, the one
        ``explain()`` renders) is instantiated directly.  Two documented
        exceptions rebuild the GTEA pipeline instead: group nodes and
        alternative output structures run the *original* query (their
        node ids may reference relocated nodes), and a plan whose
        downward order no longer covers the query's nodes falls back to
        the default bottom-up order.
        """
        if group_nodes or output_structures:
            if plan.unsatisfiable:
                return plan.query, instantiate_operators(plan.physical.operators)
            query = plan.original
            return query, build_gtea_operators(query.bottom_up())
        query = plan.query
        if plan.physical.executor == "gtea" and not plan.physical.covers_query(query):
            return query, build_gtea_operators(query.bottom_up())
        return query, instantiate_operators(plan.physical.operators)

    def execute_from_downward(
        self,
        plan: CompiledPlan,
        mats: MatSets,
        stats: EvaluationStats | None = None,
    ) -> tuple[ResultSet, EvaluationStats]:
        """Resume a compiled plan *after* the downward prune phase.

        The shared batch executor (:mod:`repro.engine.shared`) computes
        downward-pruned candidate sets once per distinct subtree across a
        batch and hands each query its per-node slices here; this method
        runs the remaining operator suffix (UpwardPrune →
        BuildMatchingGraph → CollectResults) against the plan's rewritten
        query.  ``mats`` must hold the downward match set of every node
        of ``plan.query``.
        """
        if stats is None:
            stats = EvaluationStats()
        state = ExecutionState(self, plan.query, stats)
        state.down = dict(mats)
        stats.candidates_after_downward = {
            node_id: len(nodes) for node_id, nodes in mats.items()
        }
        run_pipeline(state, [UpwardPrune(), BuildMatchingGraph(), CollectResults()])
        return state.answer, stats


def evaluate_gtea(graph: DataGraph, query: GTPQ, index: str = "3hop") -> ResultSet:
    """One-shot convenience wrapper: build the engine and evaluate."""
    return GTEA(graph, index=index).evaluate(query)
