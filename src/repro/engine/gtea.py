"""GTEA — the paper's GTPQ evaluation algorithm (Section 4).

Evaluation runs in four explicit phases (see :mod:`repro.plan`):

1. **normalize** — simplify structural predicates, decide Theorem-1
   satisfiability, shrink the query with Algorithm-1 minimization;
2. **logical plan** — candidate sources, prune obligations, prune order;
3. **physical plan** — reachability index, executor and cost estimates;
4. **execute** — this module: run a :class:`~repro.plan.CompiledPlan`
   through the paper's pipeline (candidates → PruneDownward →
   PruneUpward → matching graph → CollectResults), or through the
   TwigStackD baseline when the cost model routed there, or through the
   O(1) constant-empty path for unsatisfiable queries.

Usage::

    engine = GTEA(graph)                  # builds the 3-hop index once
    answer = engine.evaluate(query)       # compile + execute
    answer, stats = engine.evaluate_with_stats(query)
    plan = engine.compile(query)          # inspect: plan.explain()
    answer, stats = engine.execute(plan)  # repeated execution
"""

from __future__ import annotations

from typing import Callable

from ..graph.digraph import DataGraph
from ..graph.stats import GraphStats, graph_stats
from ..plan import CompiledPlan, compile_query
from ..query.gtpq import GTPQ
from ..query.naive import candidate_nodes
from ..reachability.base import GraphReachability
from ..reachability.factory import build_reachability
from .matching_graph import build_matching_graph
from .prime import compute_prime_subtree, shrink_prime_subtree
from .prune import MatSets, PruningContext, prune_downward, prune_upward
from .results import ResultSet, collect_results
from .stats import EvaluationStats

#: type of the optional ``mat(u)`` source the session layer injects.
CandidateProvider = Callable[[GTPQ, str], list[int]]


class GTEA:
    """The GTPQ evaluation engine.

    The reachability index is built once per graph and shared across
    queries (indexes are query-independent, unlike the R-join index the
    paper criticizes in Section 4.1).
    """

    def __init__(
        self,
        graph: DataGraph,
        index: str = "3hop",
        reachability: GraphReachability | None = None,
        optimize: bool = True,
    ):
        """Args:
            graph: the data graph.
            index: reachability index name, or ``"auto"`` for the
                cost-based choice of the physical planner
                (:func:`repro.plan.cost.choose_index`).  The 3-hop index
                enables the paper's chain/contour pruning fast path; any
                other index runs through the generic set-reachability
                fallback in :mod:`repro.engine.prune`.
            reachability: pre-built reachability service to reuse.
            optimize: run Algorithm-1 minimization when compiling
                queries inline; the simplification and satisfiability
                phases always run.
        """
        self.graph = graph
        self._reachability = reachability
        self._index_request = index
        self._resolved_index: str | None = (
            reachability.index.name if reachability is not None else None
        )
        self.optimize = optimize
        self._baseline = None
        self._stats_cache: tuple[int, GraphStats] | None = None

    @property
    def reachability(self) -> GraphReachability:
        """The reachability service, built lazily on first use.

        Laziness keeps plans that never probe an index — unsatisfiable
        queries, baseline-routed queries — from paying index
        construction.
        """
        if self._reachability is None:
            self._reachability = build_reachability(
                self.graph, self._index_request
            )
            self._resolved_index = self._reachability.index.name
        return self._reachability

    def resolved_index(self) -> str:
        """The concrete index name, resolved without building the index."""
        if self._resolved_index is None:
            if self._index_request == "auto":
                from ..plan.cost import choose_index

                self._resolved_index = choose_index(self.graph_statistics())
            else:
                self._resolved_index = self._index_request
        return self._resolved_index

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def graph_statistics(self) -> GraphStats:
        """Graph statistics for the planner, cached per graph version."""
        version = self.graph.version
        if self._stats_cache is None or self._stats_cache[0] != version:
            self._stats_cache = (version, graph_stats(self.graph))
        return self._stats_cache[1]

    def compile(self, query: GTPQ) -> CompiledPlan:
        """Compile ``query`` against this engine's index and graph."""
        return compile_query(
            self.graph,
            query,
            index=self.resolved_index(),
            minimize=self.optimize,
            stats=self.graph_statistics(),
        )

    # ------------------------------------------------------------------
    # Evaluation entry points
    # ------------------------------------------------------------------
    def evaluate(self, query: GTPQ, group_nodes: tuple[str, ...] = ()) -> ResultSet:
        """Evaluate ``query``; returns tuples aligned with its outputs."""
        results, _ = self.evaluate_with_stats(query, group_nodes=group_nodes)
        return results

    def evaluate_with_stats(
        self,
        query: GTPQ,
        group_nodes: tuple[str, ...] = (),
        output_structures: list[list[str]] | None = None,
        candidate_provider: CandidateProvider | None = None,
        plan: CompiledPlan | None = None,
    ) -> tuple[ResultSet | dict[int, ResultSet], EvaluationStats]:
        """Compile (unless given a plan) and execute, with counters.

        Args:
            query: the query.
            group_nodes: output nodes evaluated with the group operator.
            output_structures: optional list of alternative output-node
                lists (Appendix D); when given, the result is a dict
                mapping the structure's position to its answer set.
            candidate_provider: optional ``(query, node_id) -> mat(u)``
                source for candidate sets; defaults to a fresh
                :func:`~repro.query.naive.candidate_nodes` scan.  The
                session layer injects its shared candidate cache here.
            plan: a pre-compiled plan for ``query`` (the session layer
                caches these); compiled inline when omitted.
        """
        stats = EvaluationStats()
        if plan is None:
            with stats.time_phase("compile"):
                plan = self.compile(query)
        return self.execute(
            plan,
            group_nodes=group_nodes,
            output_structures=output_structures,
            candidate_provider=candidate_provider,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Plan execution
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: CompiledPlan,
        group_nodes: tuple[str, ...] = (),
        output_structures: list[list[str]] | None = None,
        candidate_provider: CandidateProvider | None = None,
        stats: EvaluationStats | None = None,
    ) -> tuple[ResultSet | dict[int, ResultSet], EvaluationStats]:
        """Run a compiled plan; see :meth:`evaluate_with_stats` for args.

        Unsatisfiable plans return empty without touching the graph or
        the reachability index (zero candidate fetches, zero lookups).
        Group nodes and alternative output structures are evaluated
        against the *original* query — their node ids may reference
        nodes the rewrite dropped or relocated.
        """
        if stats is None:
            stats = EvaluationStats()
        if plan.unsatisfiable:
            return self._empty_answer(stats, output_structures)

        if group_nodes or output_structures:
            query = plan.original
        else:
            query = plan.query

        if (
            plan.physical.executor == "twigstackd"
            and not group_nodes
            and not output_structures
        ):
            return self._execute_baseline(query, stats, candidate_provider)

        order = plan.physical.downward_order
        if set(order) != set(query.nodes):
            order = None  # plan order describes the rewritten query only
        return self._execute_gtea(
            query, stats, group_nodes, output_structures, candidate_provider, order
        )

    def _execute_gtea(
        self,
        query: GTPQ,
        stats: EvaluationStats,
        group_nodes: tuple[str, ...],
        output_structures: list[list[str]] | None,
        candidate_provider: CandidateProvider | None,
        order: tuple[str, ...] | None,
    ) -> tuple[ResultSet | dict[int, ResultSet], EvaluationStats]:
        """The paper's pipeline (Section 4.1, "Algorithm outline")."""
        reach = self.reachability
        reach.counters.reset()
        context = PruningContext(self.graph, query, reach)

        with stats.time_phase("candidates"):
            mats: MatSets = {}
            for node_id in query.nodes:
                if candidate_provider is not None:
                    mats[node_id] = list(candidate_provider(query, node_id))
                else:
                    mats[node_id] = candidate_nodes(self.graph, query, node_id)
                stats.candidates_initial[node_id] = len(mats[node_id])
            stats.input_nodes = sum(stats.candidates_initial.values())

        empty: ResultSet = set()
        if not mats[query.root]:
            return self._finish(empty, stats, output_structures)

        with stats.time_phase("prune_downward"):
            mats = prune_downward(context, mats, order=order)
            stats.candidates_after_downward = {
                node_id: len(nodes) for node_id, nodes in mats.items()
            }
        stats.downward_prune_ops += context.downward_ops
        return self._execute_after_downward(
            query, context, mats, stats, group_nodes, output_structures
        )

    def execute_from_downward(
        self,
        plan: CompiledPlan,
        mats: MatSets,
        stats: EvaluationStats | None = None,
    ) -> tuple[ResultSet, EvaluationStats]:
        """Resume a compiled plan *after* the downward prune phase.

        The shared batch executor (:mod:`repro.engine.shared`) computes
        downward-pruned candidate sets once per distinct subtree across a
        batch and hands each query its per-node slices here; this method
        runs the remaining pipeline (upward prune → matching graph →
        CollectResults) against the plan's rewritten query.  ``mats`` must
        hold the downward match set of every node of ``plan.query``.
        """
        if stats is None:
            stats = EvaluationStats()
        query = plan.query
        reach = self.reachability
        reach.counters.reset()
        context = PruningContext(self.graph, query, reach)
        stats.candidates_after_downward = {
            node_id: len(nodes) for node_id, nodes in mats.items()
        }
        return self._execute_after_downward(query, context, dict(mats), stats, (), None)

    def _execute_after_downward(
        self,
        query: GTPQ,
        context: PruningContext,
        mats: MatSets,
        stats: EvaluationStats,
        group_nodes: tuple[str, ...],
        output_structures: list[list[str]] | None,
    ) -> tuple[ResultSet | dict[int, ResultSet], EvaluationStats]:
        """Upward prune → matching graph → CollectResults."""
        empty: ResultSet = set()
        # The paper's Procedure 6 reads candidates a second time during the
        # bottom-up sweep; mirror that in the #input metric.
        stats.input_nodes += sum(stats.candidates_after_downward.values())
        if not mats[query.root] or any(not mats[o] for o in query.outputs):
            return self._finish(empty, stats, output_structures)

        structure_outputs = (
            [o for outputs in (output_structures or []) for o in outputs]
            if output_structures
            else []
        )
        prime_outputs = list(dict.fromkeys(query.outputs + structure_outputs))

        with stats.time_phase("prune_upward"):
            prime = compute_prime_subtree(query, mats, prime_outputs)
            mats = prune_upward(context, mats, prime)
            stats.candidates_after_upward = {
                node_id: len(nodes) for node_id, nodes in mats.items()
            }
        if any(not mats[o] for o in prime_outputs):
            return self._finish(empty, stats, output_structures)

        with stats.time_phase("matching_graph"):
            fragments = shrink_prime_subtree(query, prime, mats, prime_outputs)
            matching_graph = build_matching_graph(context, mats, fragments)
            stats.matching_graph_nodes = matching_graph.num_vertices
            stats.matching_graph_edges = matching_graph.num_edges

        with stats.time_phase("collect_results"):
            if output_structures:
                answers: dict[int, ResultSet] = {}
                for position, outputs in enumerate(output_structures):
                    answers[position] = collect_results(
                        query, matching_graph, mats,
                        outputs=outputs, group_nodes=group_nodes,
                    )
                self._record_index_counters(stats)
                stats.result_count = sum(len(a) for a in answers.values())
                return answers, stats
            results = collect_results(
                query, matching_graph, mats, group_nodes=group_nodes
            )
        return self._finish(results, stats, None)

    def _execute_baseline(
        self,
        query: GTPQ,
        stats: EvaluationStats,
        candidate_provider: CandidateProvider | None,
    ) -> tuple[ResultSet, EvaluationStats]:
        """Run the TwigStackD baseline the cost model routed to."""
        from ..baselines.twigstackd import TwigStackD

        if self._baseline is None:
            self._baseline = TwigStackD(self.graph)
        baseline = self._baseline
        baseline.candidate_provider = candidate_provider
        try:
            with stats.time_phase("baseline"):
                results, baseline_stats = baseline.evaluate_with_stats(query)
        finally:
            baseline.candidate_provider = None
        stats.input_nodes += baseline_stats.input_nodes
        stats.index_lookups += baseline_stats.index_lookups
        stats.index_entries += baseline_stats.index_entries
        stats.intermediate_tuples += baseline_stats.intermediate_tuples
        stats.result_count = len(results)
        for name, seconds in baseline_stats.phase_seconds.items():
            stats.phase_seconds[name] = (
                stats.phase_seconds.get(name, 0.0) + seconds
            )
        return results, stats

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------
    def _record_index_counters(self, stats: EvaluationStats) -> None:
        """Fold the reachability counters (reset at execute entry) into
        ``stats``.  Accumulating (rather than assigning) lets the shared
        batch executor attribute DAG-phase lookups to the same object."""
        counters = self.reachability.counters.snapshot()
        stats.index_lookups += counters["lookups"]
        stats.index_entries += counters["entries_scanned"]

    @staticmethod
    def _empty_answer(stats: EvaluationStats, output_structures):
        """The constant-empty result (unsatisfiable plans): no I/O at all."""
        if output_structures:
            answers: dict[int, ResultSet] = {
                position: set() for position in range(len(output_structures))
            }
            return answers, stats
        return set(), stats

    def _finish(self, results, stats: EvaluationStats, output_structures):
        self._record_index_counters(stats)
        if output_structures:
            answers = {i: set() for i in range(len(output_structures))}
            stats.result_count = 0
            return answers, stats
        stats.result_count = len(results)
        return results, stats


def evaluate_gtea(graph: DataGraph, query: GTPQ, index: str = "3hop") -> ResultSet:
    """One-shot convenience wrapper: build the engine and evaluate."""
    return GTEA(graph, index=index).evaluate(query)
