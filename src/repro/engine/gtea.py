"""GTEA — the paper's GTPQ evaluation algorithm (Section 4).

Pipeline (Section 4.1, "Algorithm outline"):

1. fetch candidate matching nodes ``mat(u)`` per query node;
2. ``PruneDownward`` — drop candidates violating downward constraints;
3. build the prime subtree, ``PruneUpward`` along it;
4. shrink the prime subtree, build the maximal matching graph;
5. ``CollectResults`` — enumerate output tuples from the graph.

Usage::

    engine = GTEA(graph)                  # builds the 3-hop index once
    answer = engine.evaluate(query)       # a set of output tuples
    answer, stats = engine.evaluate_with_stats(query)
"""

from __future__ import annotations

from typing import Callable

from ..graph.digraph import DataGraph
from ..query.gtpq import GTPQ
from ..query.naive import candidate_nodes
from ..reachability.base import GraphReachability
from ..reachability.factory import build_reachability
from .matching_graph import build_matching_graph
from .prime import compute_prime_subtree, shrink_prime_subtree
from .prune import MatSets, PruningContext, prune_downward, prune_upward
from .results import ResultSet, collect_results
from .stats import EvaluationStats


class GTEA:
    """The GTPQ evaluation engine.

    The reachability index is built once per graph and shared across
    queries (indexes are query-independent, unlike the R-join index the
    paper criticizes in Section 4.1).
    """

    def __init__(
        self,
        graph: DataGraph,
        index: str = "3hop",
        reachability: GraphReachability | None = None,
    ):
        """Args:
            graph: the data graph.
            index: reachability index name, or ``"auto"`` for the
                cost-based choice of
                :func:`repro.reachability.factory.select_auto_index`.
                The 3-hop index enables the paper's chain/contour pruning
                fast path; any other index runs through the generic
                set-reachability fallback in :mod:`repro.engine.prune`.
            reachability: pre-built reachability service to reuse.
        """
        self.graph = graph
        self.reachability = (
            reachability
            if reachability is not None
            else build_reachability(graph, index)
        )

    # ------------------------------------------------------------------
    def evaluate(self, query: GTPQ, group_nodes: tuple[str, ...] = ()) -> ResultSet:
        """Evaluate ``query``; returns tuples aligned with its outputs."""
        results, _ = self.evaluate_with_stats(query, group_nodes=group_nodes)
        return results

    def evaluate_with_stats(
        self,
        query: GTPQ,
        group_nodes: tuple[str, ...] = (),
        output_structures: list[list[str]] | None = None,
        candidate_provider: Callable[[GTPQ, str], list[int]] | None = None,
    ) -> tuple[ResultSet | dict[int, ResultSet], EvaluationStats]:
        """Evaluate with counters (Appendix C.1 metrics).

        Args:
            query: the query.
            group_nodes: output nodes evaluated with the group operator.
            output_structures: optional list of alternative output-node
                lists (Appendix D); when given, the result is a dict
                mapping the structure's position to its answer set.
            candidate_provider: optional ``(query, node_id) -> mat(u)``
                source for candidate sets; defaults to a fresh
                :func:`~repro.query.naive.candidate_nodes` scan.  The
                session layer injects its shared candidate cache here.
        """
        stats = EvaluationStats()
        reach = self.reachability
        reach.counters.reset()
        context = PruningContext(self.graph, query, reach)

        with stats.time_phase("candidates"):
            mats: MatSets = {}
            for node_id in query.nodes:
                if candidate_provider is not None:
                    mats[node_id] = list(candidate_provider(query, node_id))
                else:
                    mats[node_id] = candidate_nodes(self.graph, query, node_id)
                stats.candidates_initial[node_id] = len(mats[node_id])
            stats.input_nodes = sum(stats.candidates_initial.values())

        empty: ResultSet = set()
        if not mats[query.root]:
            return self._finish(empty, stats, output_structures)

        with stats.time_phase("prune_downward"):
            mats = prune_downward(context, mats)
            stats.candidates_after_downward = {
                node_id: len(nodes) for node_id, nodes in mats.items()
            }
        # The paper's Procedure 6 reads candidates a second time during the
        # bottom-up sweep; mirror that in the #input metric.
        stats.input_nodes += sum(stats.candidates_after_downward.values())
        if not mats[query.root] or any(not mats[o] for o in query.outputs):
            return self._finish(empty, stats, output_structures)

        structure_outputs = (
            [o for outputs in (output_structures or []) for o in outputs]
            if output_structures
            else []
        )
        prime_outputs = list(dict.fromkeys(query.outputs + structure_outputs))

        with stats.time_phase("prune_upward"):
            prime = compute_prime_subtree(query, mats, prime_outputs)
            mats = prune_upward(context, mats, prime)
            stats.candidates_after_upward = {
                node_id: len(nodes) for node_id, nodes in mats.items()
            }
        if any(not mats[o] for o in prime_outputs):
            return self._finish(empty, stats, output_structures)

        with stats.time_phase("matching_graph"):
            fragments = shrink_prime_subtree(query, prime, mats, prime_outputs)
            matching_graph = build_matching_graph(context, mats, fragments)
            stats.matching_graph_nodes = matching_graph.num_vertices
            stats.matching_graph_edges = matching_graph.num_edges

        with stats.time_phase("collect_results"):
            if output_structures:
                answers: dict[int, ResultSet] = {}
                for position, outputs in enumerate(output_structures):
                    answers[position] = collect_results(
                        query, matching_graph, mats,
                        outputs=outputs, group_nodes=group_nodes,
                    )
                counters = reach.counters.snapshot()
                stats.index_lookups = counters["lookups"]
                stats.index_entries = counters["entries_scanned"]
                stats.result_count = sum(len(a) for a in answers.values())
                return answers, stats
            results = collect_results(
                query, matching_graph, mats, group_nodes=group_nodes
            )
        return self._finish(results, stats, None)

    def _finish(self, results, stats: EvaluationStats, output_structures):
        counters = self.reachability.counters.snapshot()
        stats.index_lookups = counters["lookups"]
        stats.index_entries = counters["entries_scanned"]
        if output_structures:
            answers = {i: set() for i in range(len(output_structures))}
            stats.result_count = 0
            return answers, stats
        stats.result_count = len(results)
        return results, stats


def evaluate_gtea(graph: DataGraph, query: GTPQ, index: str = "3hop") -> ResultSet:
    """One-shot convenience wrapper: build the engine and evaluate."""
    return GTEA(graph, index=index).evaluate(query)
