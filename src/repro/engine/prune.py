"""The two-round pruning process (paper Procedures 6 and 7).

``prune_downward`` keeps, per query node, only candidates satisfying the
*downward* structural constraints (the subtree pattern rooted at the node);
``prune_upward`` then walks the prime subtree top-down and keeps candidates
reachable from the refined parent sets.

Chain mechanics (Section 4.2.2): candidates are grouped by 3-hop chain and
processed in descending sequence order.  Along one chain the reach-set only
grows as the sequence number shrinks, so child valuations are inherited
monotonically (0 -> 1) and each chain region of the index is scanned once —
the ``visited`` bookkeeping of the paper's expanded Procedure 6.

Deviations documented in DESIGN.md:

* PC children are evaluated *exactly* with parent/successor set lookups
  (the paper's Section 4.4 "first strategy"), so negation over PC edges
  needs no special casing;
* upward pruning also refines across parents with singleton candidate
  sets — required for correctness of the Cartesian assembly when shrinking
  disconnects the prime subtree (see the analysis in DESIGN.md).
"""

from __future__ import annotations

from ..graph.digraph import DataGraph
from ..logic import Const, evaluate
from ..query.gtpq import GTPQ, EdgeType
from ..reachability.base import GraphReachability
from ..reachability.contour import Contour, merge_pred_lists, merge_succ_lists
from ..reachability.three_hop import ThreeHopIndex

#: Candidate sets per query node (data-node ids).
MatSets = dict[str, list[int]]


class PruningContext:
    """Shared state between the two pruning rounds.

    The chain/contour machinery (Section 4.2) applies when the reachability
    service is backed by the 3-hop index; :attr:`index` then holds it.  Any
    other :class:`~repro.reachability.base.DagIndex` works too — the
    pruning passes fall back to memoized set-reachability probes against
    the generic ``reaches`` interface (the paper's "flexible for our
    framework to use other labeling schemes" remark, Section 4.1).
    """

    def __init__(self, graph: DataGraph, query: GTPQ, reach: GraphReachability):
        self.graph = graph
        self.query = query
        self.reach = reach
        #: the 3-hop index when available, else None (generic fallback).
        self.index: ThreeHopIndex | None = (
            reach.index if isinstance(reach.index, ThreeHopIndex) else None
        )
        self.pred_contours: dict[str, Contour] = {}
        #: optional :class:`~repro.graph.partition.ContourProbeCache`
        #: shared between the candidate shards of one prune wave; see
        #: :func:`_ad_valuations_by_component`.  ``None`` (the default)
        #: keeps every chain scan local to this context.
        self.probe_cache = None
        #: node-level downward refinements executed through this context
        #: (one per Procedure-6 node visit; the shared batch executor
        #: counts its per-subtree evaluations the same way, so the two
        #: paths are directly comparable in ``EvaluationStats``).
        self.downward_ops = 0

    def dag_images(self, nodes: list[int]) -> list[int]:
        """Distinct DAG components of a set of data nodes."""
        scc_of = self.reach.condensation.scc_of
        return sorted({scc_of[node] for node in nodes})

    def component_reaches_any(
        self, component: int, target_components: list[int]
    ) -> bool:
        """Generic strict set-reachability: ``component`` to any target.

        Cyclic same-component hits are included (a node of a cyclic
        component strictly reaches every node of it).  Used by the
        fallback paths when :attr:`index` is None.
        """
        dag_index = self.reach.index
        for target in target_components:
            if target == component:
                if self.reach.is_cyclic_component(component):
                    return True
            elif dag_index.reaches(component, target):
                return True
        return False


def prune_downward(
    context: PruningContext,
    mats: MatSets,
    order: tuple[str, ...] | None = None,
) -> MatSets:
    """Procedure 6: keep candidates satisfying downward constraints.

    Predecessor contours are only materialized for nodes entered through
    an AD edge — PC children are checked with exact successor lookups, so
    their contours would never be read (a large saving on the paper's
    PC-heavy XMark workloads).

    Args:
        context: shared pruning state.
        mats: initial candidate sets.
        order: node visit order; any children-before-parents permutation
            is valid (only refined child sets are read).  The physical
            planner passes a selectivity-sorted order; the default is
            :meth:`~repro.query.gtpq.GTPQ.bottom_up`.
    """
    query = context.query
    refined: MatSets = {}
    for node_id in order if order is not None else query.bottom_up():
        refined[node_id] = downward_step(context, node_id, mats[node_id], refined)
        if needs_pred_contour(context, node_id):
            context.pred_contours[node_id] = build_pred_contour(
                context, refined[node_id]
            )
    return refined


def downward_step(
    context: PruningContext,
    node_id: str,
    candidates: list[int],
    refined_children: MatSets,
) -> list[int]:
    """One node of Procedure 6, fed with already-refined child sets.

    The shared batch executor (:mod:`repro.engine.shared`) discharges one
    downward obligation per *distinct* subtree; the refined child sets it
    passes come from shared sub-plans rather than the same query's sweep.
    For AD children the caller must have installed predecessor contours
    via :func:`build_pred_contour` (3-hop index only; other indexes use
    the generic fallback, which needs no contours).
    """
    context.downward_ops += 1
    fext = context.query.fext(node_id)
    if isinstance(fext, Const):
        # Constant fext decides the whole candidate set at once: every
        # leaf (normally TRUE, but rewrites can leave a constant FALSE
        # behind — a dropped subtree substituted to 0), and any internal
        # node whose obligations folded away.  Hoisting the check here
        # skips the per-candidate valuation loop entirely.
        return list(candidates) if fext.value else []
    return _filter_downward(context, node_id, list(candidates), refined_children, fext)


def needs_pred_contour(context: PruningContext, node_id: str) -> bool:
    """Will a later parent visit read this node's predecessor contour?

    Only AD-entered non-root nodes, and only under the 3-hop index (the
    generic fallback probes ``reaches`` directly and needs no contours).
    Shared by the full sweep above and the per-node
    :class:`~repro.engine.operators.DownwardPrune` operator.
    """
    query = context.query
    return (
        context.index is not None
        and node_id != query.root
        and query.edge_type(node_id) is EdgeType.DESCENDANT
    )


def build_pred_contour(context: PruningContext, nodes: list[int]) -> Contour | None:
    """Predecessor contour of a refined candidate set (3-hop index only)."""
    if context.index is None:
        return None
    return merge_pred_lists(context.index, context.dag_images(list(nodes)))


def _filter_downward(
    context: PruningContext,
    node_id: str,
    candidates: list[int],
    refined: MatSets,
    fext,
) -> list[int]:
    """Evaluate ``fext(node_id)`` for every candidate; keep the satisfied."""
    query, graph = context.query, context.graph
    ad_children = [
        c for c in query.children[node_id]
        if query.edge_type(c) is EdgeType.DESCENDANT
    ]
    pc_children = [
        c for c in query.children[node_id]
        if query.edge_type(c) is EdgeType.CHILD
    ]
    # Section 4.4: "merge the set of parents of mat(u') for each child u'
    # into P_{u'}" — one pass over the child candidates, O(1) per check.
    pc_parent_sets = {
        c: {p for w in refined[c] for p in graph.predecessors(w)}
        for c in pc_children
    }

    # The chain-shared contour machinery only pays off when there are AD
    # children to valuate; PC-only nodes (common in XMark patterns) skip
    # it entirely.
    if not ad_children:
        ad_valuations = {}
    elif context.index is not None:
        ad_valuations = _ad_valuations_by_component(
            context,
            candidates,
            {c: context.pred_contours[c] for c in ad_children},
            {c: refined[c] for c in ad_children},
        )
    else:
        ad_valuations = _ad_valuations_generic(
            context, candidates, {c: refined[c] for c in ad_children}
        )

    survivors: list[int] = []
    for candidate in candidates:
        component = context.reach.component_of(candidate)
        valuation = dict(ad_valuations.get(component, {}))
        for child_id, parent_set in pc_parent_sets.items():
            valuation[child_id] = candidate in parent_set
        if evaluate(fext, valuation, default=False):
            survivors.append(candidate)
    return survivors


def _ad_valuations_generic(
    context: PruningContext,
    candidates: list[int],
    child_mats: dict[str, list[int]],
) -> dict[int, dict[str, bool]]:
    """AD child valuations via plain index probes (non-3-hop indexes).

    One valuation per DAG component, as in the chain-shared variant, but
    each bit is decided by probing ``reaches`` against the child's
    component set directly.
    """
    child_components = {
        child_id: context.dag_images(nodes)
        for child_id, nodes in child_mats.items()
    }
    result: dict[int, dict[str, bool]] = {}
    for component in {context.reach.component_of(c) for c in candidates}:
        result[component] = {
            child_id: context.component_reaches_any(component, components)
            for child_id, components in child_components.items()
        }
    return result


def _ad_valuations_by_component(
    context: PruningContext,
    candidates: list[int],
    contours: dict[str, Contour],
    child_mats: dict[str, list[int]],
) -> dict[int, dict[str, bool]]:
    """AD child valuations, computed once per DAG component.

    Implements the shared chain scan of Procedure 6: components grouped by
    chain, processed in descending sequence order; a valuation set to true
    at a deep component is inherited by every shallower component on the
    chain, and index regions are never re-scanned.

    When ``context.probe_cache`` is set (the parallel executor's shard
    waves), the inheritance extends *across* candidate shards: each
    component's pre-cyclic valuation is published as a (chain, sid)
    snapshot, and a shard meeting a chain another shard already scanned
    seeds its running valuation from the deepest applicable snapshot
    instead of re-walking that region.  Cached bits are value-identical
    to recomputed ones, so the survivor sets are unchanged.
    """
    index, reach = context.index, context.reach
    probe_cache = context.probe_cache
    cover = index.cover
    components = sorted(
        {reach.component_of(candidate) for candidate in candidates}
    )
    # Cyclic same-component hits: candidate's component contains a child
    # match and is cyclic -> the candidate strictly reaches that match.
    child_component_sets = {
        child_id: set(context.dag_images(nodes))
        for child_id, nodes in child_mats.items()
    }

    by_chain: dict[int, list[int]] = {}
    for component in components:
        by_chain.setdefault(cover.cid[component], []).append(component)

    result: dict[int, dict[str, bool]] = {}
    child_ids = list(contours)
    for chain, members in by_chain.items():
        members.sort(key=lambda c: cover.sid[c], reverse=True)
        valuation = {child_id: False for child_id in child_ids}
        pending = {
            child_id for child_id in child_ids if len(contours[child_id]) > 0
        }
        scanned_up_to: int | None = None  # smallest sid already scanned
        for component in members:
            sid = cover.sid[component]
            if probe_cache is not None and pending:
                seeded = probe_cache.seed(chain, sid)
                if seeded is not None and (
                    scanned_up_to is None or seeded[0] < scanned_up_to
                ):
                    for child_id, bit in seeded[1].items():
                        if bit and not valuation[child_id]:
                            valuation[child_id] = True
                            pending.discard(child_id)
                    scanned_up_to = seeded[0]
            if pending:
                for child_id in list(pending):
                    upper = contours[child_id].get(chain)
                    if upper is not None and sid <= upper:
                        valuation[child_id] = True
                        pending.discard(child_id)
                if pending:
                    for entry_chain, entry_sid in index.iter_out_entries(
                        component, stop_sid=scanned_up_to
                    ):
                        for child_id in list(pending):
                            upper = contours[child_id].get(entry_chain)
                            if upper is not None and entry_sid <= upper:
                                valuation[child_id] = True
                                pending.discard(child_id)
                        if not pending:
                            break
                scanned_up_to = sid
            if probe_cache is not None:
                probe_cache.publish(chain, sid, valuation)
            entry = dict(valuation)
            if context.reach.is_cyclic_component(component):
                for child_id in child_ids:
                    if not entry[child_id] and component in child_component_sets[child_id]:
                        entry[child_id] = True
            result[component] = entry
        # Components with every valuation known still record their entry.
    return result


def prune_upward(
    context: PruningContext, mats: MatSets, prime: list[str]
) -> MatSets:
    """Procedure 7: keep candidates reachable from refined parent sets.

    Traverses the prime subtree top-down.  AD edges use successor contours
    with the ascending-chain early exit ("once a node is confirmed, all
    larger nodes on the chain satisfy the condition"); PC edges use exact
    parent-set membership.
    """
    query, index, reach = context.query, context.index, context.reach
    graph = context.graph
    prime_set = set(prime)
    refined = {node_id: list(nodes) for node_id, nodes in mats.items()}
    succ_contours: dict[str, Contour] = {}
    for node_id in prime:  # pre-order: parents first
        children = [c for c in query.children[node_id] if c in prime_set]
        if not children:
            continue
        parent_nodes = refined[node_id]
        parent_components = context.dag_images(parent_nodes)
        parent_component_set = set(parent_components)
        contour: Contour | None = None
        if index is not None:
            contour = succ_contours.get(node_id)
            if contour is None:
                contour = merge_succ_lists(index, parent_components)
                succ_contours[node_id] = contour
        parent_data_set = set(parent_nodes)
        for child_id in children:
            if query.edge_type(child_id) is EdgeType.CHILD:
                refined[child_id] = [
                    candidate
                    for candidate in refined[child_id]
                    if any(
                        p in parent_data_set
                        for p in graph.predecessors(candidate)
                    )
                ]
            elif index is not None:
                refined[child_id] = _filter_upward_ad(
                    context, refined[child_id], contour, parent_component_set
                )
            else:
                refined[child_id] = _filter_upward_ad_generic(
                    context, refined[child_id], parent_components
                )
            if index is not None:
                succ_contours[child_id] = merge_succ_lists(
                    index, context.dag_images(refined[child_id])
                )
    return refined


def _filter_upward_ad_generic(
    context: PruningContext,
    candidates: list[int],
    parent_components: list[int],
) -> list[int]:
    """Generic upward AD filter: keep candidates some parent reaches.

    Memoized per DAG component; probes the index's plain ``reaches``.
    """
    reach = context.reach
    dag_index = reach.index
    reached: dict[int, bool] = {}
    survivors: list[int] = []
    for candidate in candidates:
        component = reach.component_of(candidate)
        hit = reached.get(component)
        if hit is None:
            hit = any(
                dag_index.reaches(parent, component)
                if parent != component
                else reach.is_cyclic_component(component)
                for parent in parent_components
            )
            reached[component] = hit
        if hit:
            survivors.append(candidate)
    return survivors


def _filter_upward_ad(
    context: PruningContext,
    candidates: list[int],
    contour: Contour,
    parent_components: set[int],
) -> list[int]:
    """Keep candidates the parent set strictly reaches (Proposition 7)."""
    index, reach = context.index, context.reach
    cover = index.cover
    by_component: dict[int, list[int]] = {}
    for candidate in candidates:
        by_component.setdefault(reach.component_of(candidate), []).append(candidate)
    by_chain: dict[int, list[int]] = {}
    for component in by_component:
        by_chain.setdefault(cover.cid[component], []).append(component)

    reachable_components: set[int] = set()
    for chain, members in by_chain.items():
        members.sort(key=lambda c: cover.sid[c])  # ascending
        confirmed = False
        for component in members:
            if not confirmed:
                # Once one chain member is reached, all deeper members are
                # reached through the chain (real-edge chains), including
                # the cyclic same-component case.
                confirmed = _component_reached(
                    index, component, chain, contour
                ) or (
                    component in parent_components
                    and reach.is_cyclic_component(component)
                )
            if confirmed:
                reachable_components.add(component)
    return [
        candidate
        for candidate in candidates
        if reach.component_of(candidate) in reachable_components
    ]


def _component_reached(
    index: ThreeHopIndex, component: int, chain: int, contour: Contour
) -> bool:
    """Does the contour (strict successor) reach ``component``?"""
    index.counters.lookups += 1
    cover = index.cover
    lower = contour.get(chain)
    if lower is not None and lower <= cover.sid[component]:
        return True
    for entry_chain, entry_sid in index.iter_in_entries(component):
        bound = contour.get(entry_chain)
        if bound is not None and bound <= entry_sid:
            return True
    return False
