"""Query sessions: index pooling, caching, and batch evaluation.

The paper's GTEA engine assumes a query-independent reachability index
built once and amortized over many queries (Section 4.1).  A
:class:`QuerySession` takes that idea to a serving setting: it owns one
data graph plus a lazily built pool of reachability indexes, and reuses
three kinds of evaluation artifacts across queries:

* a **plan cache** — parsed and *compiled* queries (the full
  normalize → logical → physical artifact of :mod:`repro.plan`) keyed by
  the canonical fingerprint of
  :func:`repro.query.serialize.query_fingerprint`, so JSON workloads and
  repeated query objects skip re-parsing, re-analysis and the optimizer;
* a **candidate cache** — ``mat(u)`` sets keyed by the node's attribute
  predicate (:func:`repro.query.serialize.predicate_key`), shared across
  *different* queries whose nodes carry overlapping predicates;
* a **subtree cache** — downward-pruned candidate sets keyed by the
  canonical *subtree* fingerprint of
  :func:`repro.query.serialize.subtree_fingerprints`, filled by the
  shared batch path of :meth:`QuerySession.evaluate_many` and reused
  across batches;
* a **result cache** — full answer sets per ``(fingerprint, group
  nodes)``, invalidated when the graph mutates.

Batch workloads additionally share *prune work*:
:meth:`QuerySession.evaluate_many` compiles the batch's cold queries
into a :class:`~repro.plan.shared.SharedPlanDAG` (one sub-plan per
distinct rooted subtree) and executes it through
:class:`~repro.engine.shared.SharedExecutor`, so a subtree appearing in
five queries is pruned once, not five times.

Staleness is detected through :attr:`repro.graph.digraph.DataGraph.version`:
any ``add_node``/``add_edge`` after session creation invalidates every
cache and index on the next use.  Cache activity is surfaced through the
``*_cache_hits``/``*_cache_misses`` counters of
:class:`~repro.engine.stats.EvaluationStats`, next to the paper's I/O
metrics.

Usage::

    session = QuerySession(graph)             # index="auto"
    answer = session.evaluate(query)          # cold: compiles + caches
    answer = session.evaluate(query)          # warm: result-cache hit
    batch = session.evaluate_many(queries)    # deduplicates fingerprints
    batch.stats.result_cache_hits             # aggregate counters
    print(session.explain(query))             # compiled-plan stages
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..graph.digraph import DataGraph
from ..graph.stats import GraphStats, graph_stats
from ..plan import (
    CodegenError,
    CompiledPlan,
    CompiledPlanFunction,
    CostProfile,
    choose_index,
    compile_batch,
    compile_plan,
    compile_query,
    rehydrate_plan_function,
    should_share,
)
from ..query.gtpq import GTPQ
from ..query.naive import candidate_nodes
from ..query.serialize import (
    predicate_key,
    query_fingerprint,
    query_from_dict,
    query_from_json,
)
from ..plan.cost import PARTIAL_FOOTPRINT_FRACTION
from ..reachability.base import GraphReachability
from ..reachability.factory import build_reachability, resolve_index
from ..reachability.partial import Footprint, build_partial_reachability
from ..store import ArtifactStore, graph_fingerprint, seed_profile_from_reports
from .cache import LRUCache
from .gtea import GTEA
from .operators import OperatorStats
from .parallel import ParallelExecutor, ParallelOptions
from .results import ResultSet
from .shared import SharedExecutor
from .stats import EvaluationStats

#: anything :meth:`QuerySession.evaluate` accepts as a query.
QueryLike = GTPQ | dict | str


@dataclass(frozen=True)
class QueryPlan:
    """A parsed and *compiled* query, ready for repeated execution.

    Attributes:
        query: the parsed :class:`~repro.query.gtpq.GTPQ`.
        fingerprint: canonical content hash (the plan-cache key).
        predicate_keys: per query node, the candidate-cache key of its
            attribute predicate.
        compiled: the full :class:`~repro.plan.CompiledPlan` — normalize
            rewrites, logical IR and physical decisions; what
            :meth:`QuerySession.explain` renders and what the executor
            runs (baseline routing lives in ``compiled.physical``).
    """

    query: GTPQ
    fingerprint: str
    predicate_keys: dict[str, str]
    compiled: CompiledPlan


@dataclass
class BatchResult:
    """Outcome of :meth:`QuerySession.evaluate_many`.

    Attributes:
        results: one answer set per input query, in input order.
        stats: aggregate :class:`~repro.engine.stats.EvaluationStats`
            across the whole batch, including cache counters and the
            ``batch_queries`` / ``batch_unique_queries`` dedup accounting.
        fingerprints: the canonical fingerprint of each input query.
        per_query: one :class:`~repro.engine.stats.EvaluationStats` per
            input query, in input order, so cache activity (including
            subtree-cache hits) is attributable to individual queries.
            Shared prune work is charged to the query that first demanded
            the subtree; other consumers record ``batch_shared_subtrees``
            credits.  A duplicate of an earlier input carries only its
            plan-cache probe and the result count (the batch dedup served
            it without evaluation).
    """

    results: list[ResultSet]
    stats: EvaluationStats
    fingerprints: list[str]
    per_query: list[EvaluationStats] = field(default_factory=list)


class QuerySession:
    """A long-lived evaluation context over one data graph.

    Args:
        graph: the data graph to serve queries against.
        index: default reachability index name, or ``"auto"`` (default)
            for the cost-based pick of the physical planner
            (:func:`repro.plan.cost.choose_index`).
        plan_cache_size: LRU capacity of the plan cache.
        candidate_cache_size: LRU capacity of the shared ``mat(u)`` cache
            (entries are predicates, not queries).
        result_cache_size: LRU capacity of the full-result cache.  Pass
            ``0`` to disable result caching (candidate and plan reuse
            still apply) — useful for cold-path measurements.
        subtree_cache_size: LRU capacity of the shared subtree-result
            cache (downward-pruned candidate sets keyed by canonical
            subtree fingerprint).  Pass ``0`` to disable cross-batch
            subtree reuse; within-batch sharing still applies.
        adaptive: run the engines with adaptive prune reordering — the
            remaining downward obligations are re-sorted by actual
            post-prune candidate-set sizes mid-flight (see
            :mod:`repro.engine.operators`).  Answers are identical to
            the static order.
        parallel: shard the downward prune phase across a worker pool
            (see :mod:`repro.engine.parallel`).  Accepts a worker count
            or a :class:`~repro.engine.parallel.ParallelOptions`;
            ``None`` (default) keeps execution serial.  Applies to
            GTEA-routed, non-group evaluations and to the shared batch
            path of :meth:`evaluate_many`; answers, survivor sets and
            prune-op counts are identical to serial execution.  Call
            :meth:`close` (or use the session as a context manager) to
            release the worker pools.
        codegen: compile GTEA-routed plans to specialized Python
            (:mod:`repro.plan.codegen`) and execute through the compiled
            function, cached per plan fingerprint next to the plan cache
            and invalidated with the graph version.  ``"auto"`` (or
            ``True``) tries codegen and falls back silently to the
            interpreted operator pipeline wherever it does not apply —
            baseline-routed plans, parallel-sharded execution, group
            evaluation, adaptive sessions — recording the
            ``codegen_hits`` / ``codegen_misses`` /
            ``codegen_fallbacks`` counters; ``"closure"`` uses the
            debuggable closure backend instead of emitted source;
            ``False`` (default) never specializes.  Answers are
            identical in every mode.  Compiled executions are filed in
            the cost profile under the dedicated ``"gtea-codegen"``
            executor key (their wall time describes the generated loop,
            not the interpreted arm the calibration compares), so the
            interpreted estimates are unchanged by compiled runs.
        store: a warm store to rehydrate from and persist to — an
            :class:`~repro.store.ArtifactStore` or a directory path
            (``None``, the default, keeps the session purely in-memory).
            On construction the session loads every artifact the store
            holds for this graph's **content fingerprint** — pooled
            reachability indexes, compiled plans, subtree-result sets,
            specialized codegen functions (rebuilt from persisted
            analysis + source), and cost-profile calibration — so a
            fresh process starts warm; :attr:`store_rehydrated` records
            what was found.  Call :meth:`persist` to publish the
            session's current artifacts back.  A corrupt, stale or
            missing store is never an error: affected kinds simply
            cold-build.
        partial_pool_size: LRU capacity of the partial-index pool — the
            budgeted set of footprint-restricted reachability services
            per-query costing builds lazily
            (:mod:`repro.reachability.partial`), keyed by
            ``(scoped index name, domain fingerprint)`` so equal
            footprints share one build.  Entries persist through the
            warm store (kind ``"partial-indexes"``) and rehydrate on
            restart.  Pass ``0`` to disable pooling (each partial plan
            rebuilds its index).

    Every execution's observed per-operator stats feed the session-held
    :attr:`cost_profile` (:class:`~repro.plan.feedback.CostProfile`),
    which subsequent compilations consult to calibrate the executor
    inequality and the index ladder; :meth:`explain` renders the latest
    observed stats next to the compile-time estimates.
    """

    def __init__(
        self,
        graph: DataGraph,
        index: str = "auto",
        *,
        plan_cache_size: int = 256,
        candidate_cache_size: int = 4096,
        result_cache_size: int = 1024,
        subtree_cache_size: int = 4096,
        adaptive: bool = False,
        parallel: int | ParallelOptions | None = None,
        codegen: bool | str = False,
        store: ArtifactStore | str | os.PathLike | None = None,
        partial_pool_size: int = 8,
    ):
        self.graph = graph
        self.default_index = index
        self.adaptive = adaptive
        if codegen not in (False, True, "auto", "closure"):
            raise ValueError(
                f"unknown codegen setting {codegen!r}; "
                "expected False, True, 'auto' or 'closure'"
            )
        self.codegen = codegen
        if parallel is None or isinstance(parallel, ParallelOptions):
            self.parallel_options = parallel
        else:
            self.parallel_options = ParallelOptions(workers=int(parallel))
        self.plan_cache = LRUCache(plan_cache_size)
        self.candidate_cache = LRUCache(candidate_cache_size)
        self.result_cache = LRUCache(result_cache_size)
        self.subtree_cache = LRUCache(subtree_cache_size)
        # Specialized plan functions (repro.plan.codegen) per fingerprint;
        # non-specializable plans cache their fallback reason so the
        # analysis never re-runs.  Same key space and lifetime as the
        # plan cache.
        self.codegen_cache = LRUCache(plan_cache_size)
        self.cost_profile = CostProfile()
        # Latest observed operator records per fingerprint (for
        # explain()'s estimated-vs-observed view), bounded like the plan
        # cache so a stream of distinct queries cannot grow it forever.
        self._observed_ops = LRUCache(plan_cache_size)
        self._reach_pool: dict[str, GraphReachability] = {}
        # Footprint-restricted reachability services, LRU-evicted so the
        # pool stays a bounded budget of small artifacts; keys are
        # (scoped index name, domain fingerprint).
        self.partial_pool = LRUCache(partial_pool_size)
        # Computed footprints per plan fingerprint (False = the cone
        # blew the budget; the plan permanently falls back to full).
        self._footprint_cache = LRUCache(plan_cache_size)
        self._engines: dict[str, GTEA] = {}
        self._parallel_pool: dict[str, ParallelExecutor] = {}
        self._resolved_auto: str | None = None
        self._graph_stats: GraphStats | None = None
        self._graph_version = graph.version
        if store is None or isinstance(store, ArtifactStore):
            self.store = store
        else:
            self.store = ArtifactStore(store)
        #: content fingerprint used by the last store interaction.
        self.store_fingerprint: str | None = None
        #: per-kind entry counts loaded from the store at construction.
        self.store_rehydrated: dict[str, int] = {}
        self._store_indexes_pending = False
        if self.store is not None:
            self._rehydrate_from_store()

    # ------------------------------------------------------------------
    # Index pool
    # ------------------------------------------------------------------
    @property
    def resolved_index(self) -> str:
        """The concrete index name the default engine uses."""
        self._ensure_fresh()
        return self._resolve(self.default_index)

    def _resolve(self, index: str) -> str:
        if index != "auto":
            return resolve_index(self.graph, index)
        if self._resolved_auto is None:
            # Same ladder as resolve_index(graph, "auto"), but fed from
            # the session's cached statistics (one graph walk, not two)
            # and open to cost-profile overrides.
            self._resolved_auto = choose_index(
                self.graph_statistics(), self.cost_profile, self._graph_version
            )
        return self._resolved_auto

    def reachability(self, index: str | None = None) -> GraphReachability:
        """The pooled reachability service for ``index`` (built lazily)."""
        self._ensure_fresh()
        self._load_indexes_from_store()
        name = self._resolve(index or self.default_index)
        service = self._reach_pool.get(name)
        if service is None:
            service = build_reachability(self.graph, name)
            self._reach_pool[name] = service
        return service

    def engine(self, index: str | None = None) -> GTEA:
        """The pooled :class:`~repro.engine.gtea.GTEA` for ``index``."""
        self._ensure_fresh()
        name = self._resolve(index or self.default_index)
        engine = self._engines.get(name)
        if engine is None:
            engine = GTEA(
                self.graph,
                reachability=self.reachability(name),
                adaptive=self.adaptive,
            )
            self._engines[name] = engine
        return engine

    def parallel_executor(self, index: str | None = None) -> ParallelExecutor | None:
        """The pooled sharded executor for ``index``, or None when the
        session was created without ``parallel=``."""
        if self.parallel_options is None:
            return None
        self._ensure_fresh()
        name = self._resolve(index or self.default_index)
        executor = self._parallel_pool.get(name)
        if executor is None:
            executor = ParallelExecutor.from_options(
                self.engine(name), self.parallel_options
            )
            self._parallel_pool[name] = executor
        return executor

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every cache and pooled index.

        Called automatically when :attr:`DataGraph.version` moves (the
        graph gained nodes or edges); call it explicitly after in-place
        attribute mutations, which the version counter cannot see.  The
        warm store does **not** share this blind spot: its key is the
        graph *content* fingerprint (:func:`~repro.store.graph_fingerprint`),
        so an in-place edit moves :meth:`persist` and rehydration to a
        different key without any explicit call.
        """
        self.plan_cache.clear()
        self.candidate_cache.clear()
        self.result_cache.clear()
        self.subtree_cache.clear()
        self.codegen_cache.clear()
        # The cost profile survives: its entries are keyed by graph
        # version, so stale observations simply stop being consulted.
        self._observed_ops.clear()
        self._reach_pool.clear()
        self.partial_pool.clear()
        self._footprint_cache.clear()
        self._engines.clear()
        # Parallel executors are pinned to the graph version their
        # process workers forked with; a fresh pool is rebuilt lazily.
        for executor in self._parallel_pool.values():
            executor.close()
        self._parallel_pool.clear()
        self._resolved_auto = None
        self._graph_stats = None
        self._graph_version = self.graph.version
        # Any still-pending lazy index load was keyed by the pre-mutation
        # content fingerprint; it no longer describes this graph.
        self._store_indexes_pending = False

    def close(self) -> None:
        """Release the worker pools of ``parallel=`` execution.

        Idempotent; the session remains usable (pools rebuild lazily).
        Serial sessions have nothing to release.
        """
        for executor in self._parallel_pool.values():
            executor.close()
        self._parallel_pool.clear()

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_fresh(self) -> None:
        if self.graph.version != self._graph_version:
            self.invalidate()

    # ------------------------------------------------------------------
    # Persistence (repro.store)
    # ------------------------------------------------------------------
    def _rehydrate_from_store(self) -> None:
        """Load every artifact the store holds for this graph's content.

        The store key is :func:`~repro.store.graph_fingerprint` — full
        graph *content*, not the version counter — so artifacts written
        before any mutation (including an in-place attribute edit the
        counter cannot see) are simply never found.  Each kind loads
        independently; a missing, stale or corrupt artifact leaves that
        kind cold.
        """
        store = self.store
        assert store is not None
        fingerprint = graph_fingerprint(self.graph)
        self.store_fingerprint = fingerprint
        counts = dict.fromkeys(
            (
                "indexes",
                "partial_indexes",
                "plans",
                "candidates",
                "subtrees",
                "results",
                "codegen",
                "profile_executions",
            ),
            0,
        )

        # The index artifact is by far the heaviest (its unpickle rivals
        # a rebuild on small graphs) and a warm restart serving known
        # traffic answers straight from the rehydrated result/plan
        # caches without ever probing an index — so indexes load lazily,
        # on the first reachability() demand (see _load_indexes_from_store).
        self._store_indexes_pending = True

        plans = store.load(fingerprint, "plans")
        if isinstance(plans, list):
            for key, plan in plans:
                self.plan_cache.put(key, plan)
            counts["plans"] = len(plans)

        candidates = store.load(fingerprint, "candidates")
        if isinstance(candidates, dict):
            for key, nodes in candidates.items():
                self.candidate_cache.put(key, nodes)
            counts["candidates"] = len(candidates)

        subtrees = store.load(fingerprint, "subtrees")
        if isinstance(subtrees, dict):
            for key, survivors in subtrees.items():
                self.subtree_cache.put(key, survivors)
            counts["subtrees"] = len(subtrees)

        # Full answer sets are safe to serve across processes: the store
        # key guarantees the graph content is identical, and the cache
        # key carries the query fingerprint + group nodes.
        results = store.load(fingerprint, "results")
        if isinstance(results, dict):
            for key, answer in results.items():
                self.result_cache.put(key, answer)
            counts["results"] = len(results)

        if self.codegen:
            compiled = store.load(fingerprint, "codegen")
            if isinstance(compiled, dict):
                mode = "closure" if self.codegen == "closure" else "source"
                for key, payload in compiled.items():
                    if isinstance(payload, str):
                        # A persisted fallback reason is as reusable as a
                        # persisted function: the analysis never re-runs.
                        self.codegen_cache.put(key, payload)
                        counts["codegen"] += 1
                        continue
                    try:
                        entry = rehydrate_plan_function(
                            payload["analysis"],
                            mode=mode,
                            source=payload.get("source"),
                        )
                    except Exception:
                        continue  # cold-compile on first use instead
                    self.codegen_cache.put(key, entry)
                    counts["codegen"] += 1

        counts["profile_executions"] = self.cost_profile.import_state(
            store.load(fingerprint, "profile"), self._graph_version
        )
        self.store_rehydrated = counts

    def _load_indexes_from_store(self) -> None:
        """Deferred half of rehydration: pooled reachability services.

        Runs at most once per (store, fingerprint) pairing, on the first
        :meth:`reachability` demand; a result/plan-cache-served warm
        restart never pays the unpickle at all.
        """
        if not self._store_indexes_pending:
            return
        self._store_indexes_pending = False
        indexes = self.store.load(self.store_fingerprint, "indexes")
        if isinstance(indexes, dict):
            for name, service in indexes.items():
                # The pickle deliberately drops the graph reference
                # (GraphReachability.__getstate__); attach the live one.
                service.graph = self.graph
                self._reach_pool.setdefault(name, service)
            self.store_rehydrated["indexes"] = len(indexes)
        partial = self.store.load(self.store_fingerprint, "partial-indexes")
        if isinstance(partial, dict):
            # Oldest-first insertion keeps the persisted LRU recency;
            # entries beyond the pool budget evict naturally.
            for key, service in partial.items():
                service.graph = self.graph
                self.partial_pool.put(key, service)
            self.store_rehydrated["partial_indexes"] = len(partial)

    def persist(self) -> dict[str, int]:
        """Publish this session's warm artifacts to the store.

        The content fingerprint is recomputed here — not reused from
        construction — so artifacts learned after an in-place attribute
        mutation land under the *mutated* content's key.  Each kind is
        best-effort: an unpicklable entry (possible for exotic attribute
        values) skips that kind rather than failing the call.  Returns
        the per-kind entry counts actually persisted.
        """
        if self.store is None:
            raise ValueError("session was created without store=; nothing to persist to")
        self._ensure_fresh()
        fingerprint = graph_fingerprint(self.graph)
        self.store_fingerprint = fingerprint
        persisted: dict[str, int] = {}

        if self._reach_pool and self._try_save(fingerprint, "indexes", dict(self._reach_pool)):
            persisted["indexes"] = len(self._reach_pool)

        partial = dict(self.partial_pool.items())
        if partial and self._try_save(fingerprint, "partial-indexes", partial):
            persisted["partial_indexes"] = len(partial)

        plans = self.plan_cache.items()
        if plans and self._try_save(fingerprint, "plans", plans):
            persisted["plans"] = len(plans)

        candidates = dict(self.candidate_cache.items())
        if candidates and self._try_save(fingerprint, "candidates", candidates):
            persisted["candidates"] = len(candidates)

        subtrees = dict(self.subtree_cache.items())
        if subtrees and self._try_save(fingerprint, "subtrees", subtrees):
            persisted["subtrees"] = len(subtrees)

        results = dict(self.result_cache.items())
        if results and self._try_save(fingerprint, "results", results):
            persisted["results"] = len(results)

        compiled: dict[str, object] = {}
        for key, entry in self.codegen_cache.items():
            if isinstance(entry, CompiledPlanFunction):
                # The exec'd function object cannot pickle; its analysis
                # and emitted source can, and rebuild it exactly.
                compiled[key] = {
                    "mode": entry.mode,
                    "source": entry.source,
                    "analysis": entry.analysis,
                }
            else:
                compiled[key] = entry
        if compiled and self._try_save(fingerprint, "codegen", compiled):
            persisted["codegen"] = len(compiled)

        # Emitted source rides along under its own kind so the generated
        # functions are inspectable on disk (and survive restarts) even
        # where the function entries themselves fail to rebuild.
        sources = {
            key: entry.source
            for key, entry in self.codegen_cache.items()
            if isinstance(entry, CompiledPlanFunction) and entry.source
        }
        if sources and self._try_save(fingerprint, "codegen-src", sources):
            persisted["codegen_src"] = len(sources)

        state = self.cost_profile.export_state()
        if state is not None and self._try_save(fingerprint, "profile", state):
            persisted["profile_keys"] = len(state["keys"])
        return persisted

    def _try_save(self, fingerprint: str, kind: str, payload) -> bool:
        try:
            self.store.save(fingerprint, kind, payload)
        except Exception:
            return False
        return True

    def seed_cost_profile(self, reports: str | os.PathLike) -> int:
        """Fold ``cost_profile`` snapshots from bench reports (a JSON
        file or a directory of them, e.g. ``benchmarks/reports``) into
        this session's profile; returns executions imported."""
        return seed_profile_from_reports(self.cost_profile, reports, self._graph_version)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def graph_statistics(self) -> GraphStats:
        """Graph statistics for the planner, cached per graph version."""
        self._ensure_fresh()
        if self._graph_stats is None:
            self._graph_stats = graph_stats(self.graph)
        return self._graph_stats

    def plan(self, query: QueryLike) -> QueryPlan:
        """Parse and *compile* ``query`` through the plan cache.

        Accepts a :class:`~repro.query.gtpq.GTPQ`, a dictionary in the
        :func:`~repro.query.serialize.query_to_dict` format, or its JSON
        text.  Serialized inputs are additionally keyed by their raw
        content hash, so a repeated JSON query skips parsing entirely.
        The cached artifact includes the full compiled plan (normalize
        rewrites, logical IR, physical decisions), so repeated queries
        skip the optimizer as well as the parser.
        """
        self._ensure_fresh()
        return self._plan_for(query)

    def explain(self, query: QueryLike) -> str:
        """The compiled plan of ``query``, rendered stage by stage.

        When the session has already executed the query, the physical
        section shows each operator's compile-time estimate next to its
        latest observed runtime stats (set sizes, wall time, index
        probes), including any adaptive reordering.  Codegen sessions
        append a ``[codegen]`` note: the specialized function that will
        run (mode, node count, const-folded steps), or why the plan
        falls back to the interpreted pipeline.
        """
        self._ensure_fresh()
        plan = self._plan_for(query)
        rendered = plan.compiled.explain(observed=self._observed_ops.peek(plan.fingerprint))
        if self.codegen:
            rendered += "\n" + self._codegen_note(plan)
        if self.parallel_options is not None:
            rendered += "\n" + self._parallel_note(plan)
        return rendered

    def _parallel_note(self, plan: QueryPlan) -> str:
        """The ``[parallel]`` line of :meth:`explain` for one plan."""
        options = self.parallel_options
        if plan.compiled.physical.executor != "gtea":
            return "[parallel] serial (plan not routed to the GTEA executor)"
        phases = ["downward"] + (["upward"] if options.upward else [])
        extras = [f"strategy={options.strategy}"]
        if options.overlap_scan:
            extras.append("overlap-scan")
        if options.steal:
            extras.append("steal")
        return (
            f"[parallel] {'+'.join(phases)} sharded across "
            f"{options.workers} workers ({options.backend} backend, "
            f"{', '.join(extras)})"
        )

    def _codegen_note(self, plan: QueryPlan) -> str:
        """The ``[codegen]`` line of :meth:`explain` for one plan."""
        if self.adaptive:
            return "[codegen] interpreted fallback (adaptive sessions reorder at runtime)"
        if self.parallel_options is not None and plan.compiled.physical.executor == "gtea":
            return "[codegen] interpreted fallback (parallel-sharded execution)"
        entry, _ = self._codegen_entry(plan)
        if isinstance(entry, str):
            return f"[codegen] interpreted fallback ({entry})"
        return f"[codegen] {entry.describe()}"

    def _plan_for(self, query: QueryLike) -> QueryPlan:
        # One planning operation counts exactly one plan-cache hit or miss,
        # even though serialized inputs probe two keys (raw-content alias
        # first, canonical fingerprint second) — hence peek() + manual
        # accounting instead of get().
        counters = self.plan_cache.counters
        alias: str | None = None
        if isinstance(query, GTPQ):
            parsed = query
        elif isinstance(query, str):
            alias = "json:" + hashlib.sha256(query.encode("utf-8")).hexdigest()
            cached = self.plan_cache.peek(alias)
            if cached is not None:
                counters.hits += 1
                return cached
            parsed = query_from_json(query)
        elif isinstance(query, dict):
            payload = json.dumps(query, sort_keys=True, default=str)
            alias = "dict:" + hashlib.sha256(payload.encode("utf-8")).hexdigest()
            cached = self.plan_cache.peek(alias)
            if cached is not None:
                counters.hits += 1
                return cached
            parsed = query_from_dict(query)
        else:
            raise TypeError(
                f"cannot plan a {type(query).__name__}; expected GTPQ, dict, or JSON str"
            )
        fingerprint = query_fingerprint(parsed)
        plan = self.plan_cache.peek(fingerprint)
        if plan is None:
            counters.misses += 1
            plan = QueryPlan(
                query=parsed,
                fingerprint=fingerprint,
                predicate_keys={
                    node_id: predicate_key(parsed.attribute(node_id))
                    for node_id in parsed.nodes
                },
                compiled=compile_query(
                    self.graph,
                    parsed,
                    index=self.default_index,
                    stats=self.graph_statistics(),
                    profile=self.cost_profile,
                    pooled=tuple(self._reach_pool),
                ),
            )
            self.plan_cache.put(fingerprint, plan)
        else:
            counters.hits += 1
        if alias is not None:
            self.plan_cache.put(alias, plan)
        return plan

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, query: QueryLike, group_nodes: Sequence[str] = ()
    ) -> ResultSet:
        """Evaluate ``query``, reusing every applicable cache."""
        results, _ = self.evaluate_with_stats(query, group_nodes)
        return results

    def evaluate_with_stats(
        self, query: QueryLike, group_nodes: Sequence[str] = ()
    ) -> tuple[ResultSet, EvaluationStats]:
        """Evaluate with counters; cache activity lands in the stats."""
        self._ensure_fresh()
        plan_hits = self.plan_cache.counters.hits
        plan_misses = self.plan_cache.counters.misses
        plan = self._plan_for(query)
        results, stats = self._evaluate_plan(plan, tuple(group_nodes))
        stats.plan_cache_hits += self.plan_cache.counters.hits - plan_hits
        stats.plan_cache_misses += self.plan_cache.counters.misses - plan_misses
        return results, stats

    def _evaluate_plan(
        self, plan: QueryPlan, group_nodes: tuple[str, ...]
    ) -> tuple[ResultSet, EvaluationStats]:
        probed = self._probe_result_cache(plan, group_nodes)
        if probed is not None:
            return probed
        return self._execute_plan(plan, group_nodes)

    def _probe_result_cache(
        self, plan: QueryPlan, group_nodes: tuple[str, ...]
    ) -> tuple[ResultSet, EvaluationStats] | None:
        """Serve from the result cache or the constant-empty path."""
        result_key = (plan.fingerprint, group_nodes)
        cached = self.result_cache.get(result_key)
        if cached is not None:
            stats = EvaluationStats()
            stats.result_cache_hits = 1
            stats.result_count = len(cached)
            return set(cached), stats

        if plan.compiled.unsatisfiable:
            # Constant-empty plan: answer without materializing an index
            # or even touching an engine.
            stats = EvaluationStats()
            stats.result_cache_misses = 1
            self.result_cache.put(result_key, frozenset())
            return set(), stats
        return None

    def _execute_plan(
        self, plan: QueryPlan, group_nodes: tuple[str, ...]
    ) -> tuple[ResultSet, EvaluationStats]:
        """Run one cold plan through its engine (no result-cache probe)."""
        stats = EvaluationStats()
        physical = plan.compiled.physical
        actual_index: str | None = None
        partial_service = None
        if physical.index_scope == "partial" and physical.executor == "gtea":
            if group_nodes:
                # Group evaluation runs the original, pre-rewrite query,
                # whose candidates may fall outside the rewritten
                # footprint; run it on a full index.
                stats.partial_fallbacks = 1
            else:
                partial_service = self._partial_service(plan, stats)
                if partial_service is None:
                    stats.partial_fallbacks = 1
        if partial_service is not None:
            # A per-footprint engine: construction is trivial (the
            # reachability service is prebuilt); sharded execution is
            # skipped — its pools pin full-scope engines by index name.
            engine = GTEA(
                self.graph, reachability=partial_service, adaptive=self.adaptive
            )
            parallel = None
        elif physical.index_scope == "partial":
            # Fallback runs resolve the session default (the ladder
            # pick) — never the partial inner, whose name (e.g. "tc")
            # must not become a whole-graph build.
            engine = self.engine(None)
            actual_index = engine.resolved_index()
            parallel = None
            if not group_nodes:
                parallel = self.parallel_executor(None)
        else:
            index_name = physical.index_name
            engine = self.engine(index_name)
            parallel = None
            if not group_nodes and physical.executor == "gtea":
                parallel = self.parallel_executor(index_name)
        codegen_fn = None
        if self.codegen:
            if parallel is not None or group_nodes or self.adaptive:
                # Sharded, group and adaptive executions stay interpreted.
                stats.codegen_fallbacks = 1
            else:
                entry, was_cached = self._codegen_entry(plan)
                if isinstance(entry, str):
                    stats.codegen_fallbacks = 1
                else:
                    codegen_fn = entry
                    if was_cached:
                        stats.codegen_hits = 1
                    else:
                        stats.codegen_misses = 1
        started = time.perf_counter()
        with stats.record_candidate_cache(self.candidate_cache.counters):
            if parallel is not None:
                results, stats = parallel.execute(
                    plan.compiled,
                    candidate_provider=self._candidate_provider(plan),
                    stats=stats,
                )
            else:
                results, stats = engine.execute(
                    plan.compiled,
                    group_nodes=group_nodes,
                    candidate_provider=self._candidate_provider(plan),
                    stats=stats,
                    codegen=codegen_fn,
                )
        elapsed = time.perf_counter() - started
        stats.result_cache_misses = 1
        self.result_cache.put((plan.fingerprint, group_nodes), frozenset(results))
        if not group_nodes:
            # Group evaluation runs the GTEA pipeline over the *original*
            # query regardless of the routed executor; recording it would
            # file GTEA operator stats under the baseline's calibration
            # arm (and against the rewritten query's estimates).  Sharded
            # executions file under "gtea-parallel": their wall times
            # reflect pool scheduling, not the serial cost model the
            # calibration arms compare.
            if codegen_fn is not None:
                self._record_codegen_feedback(plan, stats, elapsed)
            else:
                self._record_feedback(
                    plan,
                    stats,
                    executor="gtea-parallel" if parallel is not None else None,
                    index_name=actual_index,
                )
        return results, stats

    def _partial_service(self, plan: QueryPlan, stats: EvaluationStats):
        """The pooled partial reachability service for ``plan``, or None.

        Pool hits (including warm-store rehydrations) are free; a miss
        computes the query's footprint — the union of its candidate sets
        closed under reachability — and builds the plan's inner index
        over just that cone, filing the build time as a synthetic
        ``PartialIndexBuild`` operator record so calibration prices the
        cold partial arm honestly.  Returns None when the real cone
        blows the footprint budget (the costing-time estimate was an
        upper bound on seeds, not on the cone).
        """
        self._load_indexes_from_store()
        physical = plan.compiled.physical
        footprint = self._footprint_for(plan)
        if footprint is None:
            return None
        key = (physical.scoped_index_name, footprint.fingerprint)
        service = self.partial_pool.get(key)
        if service is not None:
            stats.partial_hits = 1
            return service
        started = time.perf_counter()
        service = build_partial_reachability(
            self.graph, footprint, physical.index_name
        )
        elapsed = time.perf_counter() - started
        stats.partial_builds = 1
        stats.phase_seconds["partial_build"] = (
            stats.phase_seconds.get("partial_build", 0.0) + elapsed
        )
        stats.operator_stats.append(
            OperatorStats(
                op="PartialIndexBuild",
                target=None,
                input_size=len(footprint),
                output_size=service.index.index_size(),
                seconds=elapsed,
                index_lookups=0,
                index_entries=0,
            )
        )
        self.partial_pool.put(key, service)
        return service

    def _footprint_for(self, plan: QueryPlan) -> Footprint | None:
        """The plan's candidate footprint, cached per fingerprint.

        Seeds are the rewritten query's candidate sets — fetched through
        the same predicate-keyed cache the execution uses, so the fetch
        is paid once — closed under reachability with a hard budget of
        :data:`~repro.plan.cost.PARTIAL_FOOTPRINT_FRACTION` of the
        graph.  A budget blowout caches ``False`` so the plan falls back
        to full scope permanently (until invalidation).
        """
        cached = self._footprint_cache.get(plan.fingerprint)
        if cached is not None:
            return cached or None
        query = plan.compiled.query
        provider = self._candidate_provider(plan)
        seeds: set[int] = set()
        for node_id in query.nodes:
            seeds.update(provider(query, node_id))
        budget = max(1, int(PARTIAL_FOOTPRINT_FRACTION * self.graph.num_nodes))
        footprint = Footprint.from_seeds(self.graph, seeds, budget=budget)
        self._footprint_cache.put(
            plan.fingerprint, footprint if footprint is not None else False
        )
        return footprint

    def _record_codegen_feedback(
        self, plan: QueryPlan, stats: EvaluationStats, elapsed: float
    ) -> None:
        """File one compiled execution under the ``"gtea-codegen"`` key.

        Compiled runs skip per-operator instrumentation, so without this
        they never reach the profile and calibration silently starves
        under ``codegen=True``.  They must not feed the interpreted arms
        either — the generated loop's seconds-per-element would skew the
        executor inequality — so the record goes to its own executor key,
        which the calibration reads exactly like the ``"gtea-parallel"``
        exclusion (volume counts, interpreted estimates untouched).  The
        synthetic record bypasses :meth:`_record_feedback` so the
        ``explain()`` estimated-vs-observed view keeps showing genuine
        interpreted operator stats only.

        Alongside the whole-execution record, the compiled prune loop's
        wall time (the ``prune_downward`` phase the generated function
        books) files as a ``CodegenPrune`` record — so the profile
        snapshot can compare the specialized loop against the
        interpreted ``DownwardPrune`` arm per phase, not just end to
        end.
        """
        records = [
            OperatorStats(
                op="CodegenExecute",
                target=None,
                input_size=stats.input_nodes,
                output_size=stats.result_count,
                seconds=elapsed,
                index_lookups=stats.index_lookups,
                index_entries=stats.index_entries,
            )
        ]
        prune_seconds = stats.phase_seconds.get("prune_downward")
        if prune_seconds is not None:
            records.append(
                OperatorStats(
                    op="CodegenPrune",
                    target=None,
                    input_size=stats.input_nodes,
                    output_size=sum(stats.candidates_after_downward.values()),
                    seconds=prune_seconds,
                    index_lookups=0,
                    index_entries=0,
                )
            )
        self.cost_profile.record(
            index_name=plan.compiled.physical.index_name,
            executor="gtea-codegen",
            graph_version=self._graph_version,
            operator_stats=records,
        )

    def _codegen_entry(self, plan: QueryPlan) -> tuple[object, bool]:
        """The codegen-cache entry for ``plan``, compiling on a miss.

        Returns ``(entry, was_cached)`` where ``entry`` is a
        :class:`~repro.plan.codegen.CompiledPlanFunction`, or the
        fallback reason (a string) when the backend cannot specialize
        the plan — negative outcomes are cached too, so the analysis
        runs once per fingerprint.
        """
        cached = self.codegen_cache.get(plan.fingerprint)
        if cached is not None:
            return cached, True
        mode = "closure" if self.codegen == "closure" else "source"
        try:
            entry: object = compile_plan(plan.compiled, mode=mode)
        except CodegenError as error:
            entry = str(error)
        self.codegen_cache.put(plan.fingerprint, entry)
        return entry, False

    def _record_feedback(
        self,
        plan: QueryPlan,
        stats: EvaluationStats,
        executor: str | None = None,
        index_name: str | None = None,
    ) -> None:
        """Fold one execution's operator records into the cost profile.

        Partial-scope executions file under the *scoped* index name
        ("tc@partial"), so full-index calibration is never diluted by
        partial-build economics — and per-query costing reads the scoped
        key back to learn when partial beats full.
        """
        if not stats.operator_stats:
            return
        self.cost_profile.record(
            index_name=index_name or plan.compiled.physical.scoped_index_name,
            executor=executor or plan.compiled.physical.executor,
            graph_version=self._graph_version,
            operator_stats=stats.operator_stats,
        )
        self._observed_ops.put(plan.fingerprint, list(stats.operator_stats))

    def _candidate_provider(self, plan: QueryPlan):
        """A ``(query, node_id) -> mat(u)`` source backed by the cache."""

        def provider(query: GTPQ, node_id: str) -> list[int]:
            key = plan.predicate_keys[node_id]
            nodes = self.candidate_cache.get(key)
            if nodes is None:
                nodes = tuple(candidate_nodes(self.graph, query, node_id))
                self.candidate_cache.put(key, nodes)
            return list(nodes)

        return provider

    # ------------------------------------------------------------------
    # Batch evaluation
    # ------------------------------------------------------------------
    def evaluate_many(
        self,
        queries: Iterable[QueryLike],
        group_nodes: Sequence[str] = (),
        *,
        share: bool | str = "auto",
    ) -> BatchResult:
        """Evaluate a workload, sharing plans *and* prune work.

        Queries are planned first (one plan per distinct fingerprint) and
        each *unique* fingerprint is evaluated once — through the result
        cache, so a warm session may evaluate nothing at all.  With
        sharing on, the remaining cold plans are batch compiled into a
        :class:`~repro.plan.shared.SharedPlanDAG` and run by
        :class:`~repro.engine.shared.SharedExecutor`: every *distinct
        rooted subtree* across the batch is downward-pruned exactly once
        (or zero times, on a subtree-cache hit from an earlier batch) and
        its post-prune candidate set feeds every consuming query.

        ``share`` accepts three values: ``"auto"`` (the default) shares
        unless the tiny-batch guard of
        :func:`repro.plan.shared.should_share` finds nothing worthwhile —
        no subtree consumed by ≥ 2 queries, negligible estimated
        savings, and no subtree-cache entry to reuse — in which case the
        batch runs the isolated per-query path and the
        ``batch_share_skipped`` counter records the fallback;
        ``share=True`` forces the DAG path; ``share=False`` always runs
        the isolated path — useful as a baseline when measuring the
        sharing win.  Batches with group nodes always use the per-query
        path (group evaluation runs the original, pre-rewrite queries,
        which the DAG does not describe).

        Candidate fetching is shared across the whole batch via the
        predicate-keyed cache in either mode, and the answers are fanned
        back out to input order.
        """
        self._ensure_fresh()
        group_key = tuple(group_nodes)
        plan_counters = self.plan_cache.counters

        plans: list[QueryPlan] = []
        plan_deltas: list[tuple[int, int]] = []
        for query in queries:
            hits, misses = plan_counters.hits, plan_counters.misses
            plans.append(self._plan_for(query))
            plan_deltas.append(
                (plan_counters.hits - hits, plan_counters.misses - misses)
            )

        unique: dict[str, QueryPlan] = {}
        for plan in plans:
            unique.setdefault(plan.fingerprint, plan)

        answers: dict[str, ResultSet] = {}
        stats_by_fingerprint: dict[str, EvaluationStats] = {}
        pending: list[QueryPlan] = []
        for fingerprint, plan in unique.items():
            probed = self._probe_result_cache(plan, group_key)
            if probed is not None:
                answers[fingerprint], stats_by_fingerprint[fingerprint] = probed
            else:
                pending.append(plan)

        share_skipped = 0
        if pending:
            if share and not group_key:
                evaluated, share_skipped = self._execute_shared(
                    pending, force_share=share is True
                )
            else:
                evaluated = [self._execute_plan(plan, group_key) for plan in pending]
            for plan, (results, stats) in zip(pending, evaluated):
                answers[plan.fingerprint] = results
                stats_by_fingerprint[plan.fingerprint] = stats

        aggregate = EvaluationStats.aggregate(list(stats_by_fingerprint.values()))
        aggregate.batch_queries = len(plans)
        aggregate.batch_unique_queries = len(unique)
        aggregate.batch_share_skipped = share_skipped

        per_query: list[EvaluationStats] = []
        seen: set[str] = set()
        for plan, (plan_hits, plan_misses) in zip(plans, plan_deltas):
            fingerprint = plan.fingerprint
            if fingerprint not in seen:
                seen.add(fingerprint)
                stats = stats_by_fingerprint[fingerprint]
            else:
                # Batch dedup served this input without evaluating it.
                stats = EvaluationStats()
                stats.result_count = len(answers[fingerprint])
            stats.plan_cache_hits += plan_hits
            stats.plan_cache_misses += plan_misses
            aggregate.plan_cache_hits += plan_hits
            aggregate.plan_cache_misses += plan_misses
            per_query.append(stats)

        return BatchResult(
            results=[set(answers[plan.fingerprint]) for plan in plans],
            stats=aggregate,
            fingerprints=[plan.fingerprint for plan in plans],
            per_query=per_query,
        )

    def _execute_shared(
        self, plans: list[QueryPlan], *, force_share: bool = False
    ) -> tuple[list[tuple[ResultSet, EvaluationStats]], int]:
        """Run cold plans through the shared-plan DAG, grouped by index.

        Plans are grouped by their physical index choice (one engine per
        group — normally a single group); each group is batch compiled
        and executed with the session's subtree and candidate caches.
        Unless ``force_share`` is set, a group whose DAG shares nothing
        worth its bookkeeping (:func:`repro.plan.shared.should_share`)
        falls back to the isolated per-query path; the second return
        value counts those skipped groups.
        """
        by_index: dict[str, list[int]] = {}
        outcomes: list[tuple[ResultSet, EvaluationStats] | None] = [None] * len(plans)
        for position, plan in enumerate(plans):
            physical = plan.compiled.physical
            if physical.index_scope != "full":
                # Partial-scope plans bind to their own footprint index;
                # the shared DAG prunes every subtree on one engine, so
                # they run the isolated path instead.
                outcomes[position] = self._execute_plan(plan, ())
                continue
            by_index.setdefault(physical.index_name, []).append(position)

        skipped = 0
        cached = lambda fingerprint: self.subtree_cache.peek(fingerprint) is not None
        for index_name, positions in by_index.items():
            compiled = [plans[p].compiled for p in positions]
            # The guard reads the plans' precomputed fingerprints, so a
            # skipped group never pays the DAG compilation either.
            if not force_share and not should_share(compiled, cached_fingerprints=cached):
                skipped += 1
                for position in positions:
                    outcomes[position] = self._execute_plan(plans[position], ())
                continue
            batch = compile_batch(self.graph, plans=compiled)
            executor = SharedExecutor(
                self.engine(index_name),
                candidate_provider=self._shared_candidate_provider(),
                subtree_cache=self.subtree_cache,
                candidate_counters=self.candidate_cache.counters,
                parallel=self.parallel_executor(index_name),
            )
            for position, outcome in zip(positions, executor.execute(batch)):
                results, stats = outcome
                stats.result_cache_misses += 1
                self.result_cache.put(
                    (plans[position].fingerprint, ()), frozenset(results)
                )
                # GTEA-participating executions are filed under their
                # own key: a warm subtree cache leaves them with
                # suffix-only operator records (no scan, no prunes),
                # which would corrupt the isolated GTEA arm's
                # seconds-per-element.  Ride-along plans (baseline,
                # unsat) ran their actual executor and file under it.
                routed = plans[position].compiled.physical.executor
                tag = "gtea-shared" if routed == "gtea" else routed
                self._record_feedback(plans[position], stats, executor=tag)
                outcomes[position] = (results, stats)
        return outcomes, skipped

    def explain_batch(self, queries: Iterable[QueryLike]) -> str:
        """The shared-plan DAG of a workload, rendered.

        Plans each query (through the plan cache), batch compiles them
        and renders the sharing structure: distinct sub-plans, their
        consumers, and per-query executor routing.
        """
        self._ensure_fresh()
        plans = [self._plan_for(query) for query in queries]
        batch = compile_batch(self.graph, plans=[plan.compiled for plan in plans])
        return batch.explain()

    def _shared_candidate_provider(self):
        """A plan-agnostic ``(query, node_id) -> mat(u)`` cache source.

        Unlike :meth:`_candidate_provider` it computes predicate keys on
        the fly, so one provider serves every plan of a shared batch.
        """

        def provider(query: GTPQ, node_id: str) -> list[int]:
            key = predicate_key(query.attribute(node_id))
            nodes = self.candidate_cache.get(key)
            if nodes is None:
                nodes = tuple(candidate_nodes(self.graph, query, node_id))
                self.candidate_cache.put(key, nodes)
            return list(nodes)

        return provider

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_info(self) -> dict[str, dict[str, int]]:
        """Counter snapshots and sizes of every session cache."""
        return {
            "plan": {**self.plan_cache.counters.snapshot(), "size": len(self.plan_cache)},
            "candidate": {
                **self.candidate_cache.counters.snapshot(),
                "size": len(self.candidate_cache),
            },
            "result": {
                **self.result_cache.counters.snapshot(),
                "size": len(self.result_cache),
            },
            "subtree": {
                **self.subtree_cache.counters.snapshot(),
                "size": len(self.subtree_cache),
            },
            "codegen": {
                **self.codegen_cache.counters.snapshot(),
                "size": len(self.codegen_cache),
            },
            "partial": {
                **self.partial_pool.counters.snapshot(),
                "size": len(self.partial_pool),
            },
            "indexes": {"pooled": len(self._reach_pool)},
            **(
                {
                    "store": {
                        **self.store.counters.snapshot(),
                        "rehydrated": sum(self.store_rehydrated.values()),
                    }
                }
                if self.store is not None
                else {}
            ),
        }

    def __repr__(self) -> str:
        return (
            f"QuerySession(graph={self.graph!r}, index={self.default_index!r}, "
            f"pooled={sorted(self._reach_pool)})"
        )
