"""The physical-operator pipeline — execution as a list of operators.

The paper's evaluation algorithm (Section 4) is a fixed sequence:
candidates → PruneDownward → PruneUpward → matching graph →
CollectResults.  This module breaks that sequence into small stateful
operators, each exposing ``run(state) -> state`` over a shared
:class:`ExecutionState`:

* :class:`CandidateScan` — fetch ``mat(u)`` for every query node;
* :class:`DownwardPrune` — one Procedure-6 node visit (one per query
  node, children before parents);
* :class:`UpwardPrune` — Procedure 7 over the prime subtree;
* :class:`BuildMatchingGraph` — shrink + assemble the matching graph;
* :class:`CollectResults` — Algorithm CollectResults (incl. group
  nodes and alternative output structures);
* :class:`BaselineDelegate` — the TwigStackD route of the cost model;
* :class:`ConstantEmpty` — the O(1) answer for unsatisfiable plans.

:func:`run_pipeline` drives an operator list and records one
:class:`OperatorStats` per executed operator (input/output set sizes,
wall time, index probes) into ``EvaluationStats.operator_stats`` — the
raw material of the cost-feedback loop in :mod:`repro.plan.feedback`.

**Adaptive prune reordering** (``adaptive=True``): any
children-before-parents permutation of the :class:`DownwardPrune`
operators is valid (each visit only reads refined child sets), so the
driver may re-plan mid-flight.  After every downward step it re-sorts
the remaining obligations by *actual* candidate-set sizes — the node's
fetched candidate count plus its children's post-prune survivor counts
— instead of the compile-time estimates, tie-breaking on node id for
determinism.  Because every backbone node must have an image in every
match, the adaptive driver also short-circuits to the empty answer as
soon as any backbone node's downward set becomes empty, skipping the
remaining downward operators entirely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..query.gtpq import GTPQ
from ..query.naive import candidate_nodes
from .matching_graph import build_matching_graph
from .prime import compute_prime_subtree, shrink_prime_subtree
from .prune import (
    MatSets,
    PruningContext,
    build_pred_contour,
    downward_step,
    needs_pred_contour,
    prune_upward,
)
from .results import ResultSet, collect_results
from .stats import EvaluationStats


@dataclass
class OperatorStats:
    """Observed runtime statistics of one executed operator."""

    op: str  #: operator class name (``"DownwardPrune"``, ...).
    target: str | None  #: query node for per-node operators, else None.
    input_size: int  #: elements read (candidate/survivor counts).
    output_size: int  #: elements produced.
    seconds: float  #: wall time of this operator's ``run``.
    index_lookups: int  #: reachability-index probes issued.
    index_entries: int  #: index-list elements scanned.
    note: str = ""  #: free-form annotation (``"early-exit"``, ...).

    @property
    def label(self) -> str:
        return f"{self.op}({self.target})" if self.target else self.op


class ExecutionState:
    """Mutable state threaded through one pipeline execution.

    Operators read and write these fields; the driver owns timing and
    index-probe attribution.  ``finished`` short-circuits the rest of
    the pipeline (empty intermediate sets, unsatisfiable plans, the
    adaptive early exit).
    """

    def __init__(
        self,
        engine,
        query: GTPQ,
        stats: EvaluationStats,
        *,
        group_nodes: tuple[str, ...] = (),
        output_structures: list[list[str]] | None = None,
        candidate_provider=None,
    ):
        self.engine = engine
        self.graph = engine.graph
        self.query = query
        self.stats = stats
        self.group_nodes = group_nodes
        self.output_structures = output_structures
        self.candidate_provider = candidate_provider
        #: initial candidate sets, filled by :class:`CandidateScan`.
        self.mats: MatSets = {}
        #: downward-pruned (and later upward-pruned) survivor sets.
        self.down: MatSets = {}
        self.prime: list[str] = []
        self.prime_outputs: list[str] = []
        self.fragments = None
        self.matching_graph = None
        self.answer: ResultSet | dict[int, ResultSet] | None = None
        self.finished = False
        self._context: PruningContext | None = None
        #: counter snapshot taken the moment the context (and so the
        #: index) came into play — the zero point of this execution's
        #: probe attribution.  The engine's counters are cumulative
        #: across executions; without this baseline the first
        #: index-touching operator would be charged all history.
        self._counter_baseline: dict[str, int] | None = None

    @property
    def context(self) -> PruningContext:
        """The pruning context, built lazily (first index-touching op).

        Laziness keeps plans that never probe an index — unsatisfiable
        or baseline-routed — from paying index construction.
        """
        if self._context is None:
            self._context = PruningContext(self.graph, self.query, self.engine.reachability)
            self._counter_baseline = self._context.reach.counters.snapshot()
        return self._context

    def index_snapshot(self) -> dict[str, int] | None:
        """Reachability counters, or None while no index exists yet."""
        if self._context is None:
            return None
        return self._context.reach.counters.snapshot()

    def finish(self, answer: ResultSet | dict[int, ResultSet]) -> "ExecutionState":
        self.answer = answer
        self.finished = True
        return self

    def finish_empty(self) -> "ExecutionState":
        """Terminate with the empty answer (per output structure)."""
        self.stats.result_count = 0
        if self.output_structures is not None:
            return self.finish(
                {position: set() for position in range(len(self.output_structures))}
            )
        return self.finish(set())


class Operator:
    """Base class: one pipeline stage, ``run(state) -> state``."""

    #: query node this operator targets (per-node operators only).
    target: str | None = None

    @property
    def name(self) -> str:
        return type(self).__name__

    def run(self, state: ExecutionState) -> ExecutionState:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:
        suffix = f"({self.target})" if self.target else ""
        return f"{self.name}{suffix}"


class CandidateScan(Operator):
    """Fetch the initial ``mat(u)`` of every query node."""

    def run(self, state: ExecutionState) -> ExecutionState:
        stats, query = state.stats, state.query
        with stats.time_phase("candidates"):
            for node_id in query.nodes:
                if state.candidate_provider is not None:
                    state.mats[node_id] = list(state.candidate_provider(query, node_id))
                else:
                    state.mats[node_id] = candidate_nodes(state.graph, query, node_id)
                stats.candidates_initial[node_id] = len(state.mats[node_id])
            stats.input_nodes = sum(stats.candidates_initial.values())
        if not state.mats[query.root]:
            return state.finish_empty()
        return state


class DownwardPrune(Operator):
    """One node visit of Procedure 6, fed with refined child sets."""

    def __init__(self, target: str):
        self.target = target

    def run(self, state: ExecutionState) -> ExecutionState:
        context = state.context
        node_id = self.target
        with state.stats.time_phase("prune_downward"):
            refined = downward_step(context, node_id, state.mats[node_id], state.down)
            state.down[node_id] = refined
            if needs_pred_contour(context, node_id):
                context.pred_contours[node_id] = build_pred_contour(context, refined)
        state.stats.candidates_after_downward[node_id] = len(refined)
        state.stats.downward_prune_ops += 1
        return state


def begin_upward(state: ExecutionState) -> bool:
    """Shared preamble of Procedure 7 (the serial operator and the
    parallel driver's sharded pass): bump the #input metric, run the
    root/output emptiness checks, and fix ``state.prime_outputs``.
    Returns False when the state finished empty (callers skip the pass).
    """
    stats, query = state.stats, state.query
    # The paper's Procedure 6 reads candidates a second time during
    # the bottom-up sweep; mirror that in the #input metric.
    stats.input_nodes += sum(stats.candidates_after_downward.values())
    if not state.down[query.root] or any(not state.down[o] for o in query.outputs):
        state.finish_empty()
        return False
    structure_outputs = (
        [o for outputs in (state.output_structures or []) for o in outputs]
        if state.output_structures
        else []
    )
    state.prime_outputs = list(dict.fromkeys(query.outputs + structure_outputs))
    return True


def finish_upward(state: ExecutionState) -> None:
    """Shared epilogue of Procedure 7: record the refined sizes and
    finish empty when any prime output lost all candidates."""
    state.stats.candidates_after_upward = {
        node_id: len(nodes) for node_id, nodes in state.down.items()
    }
    if any(not state.down[o] for o in state.prime_outputs):
        state.finish_empty()


class UpwardPrune(Operator):
    """Procedure 7: refine candidates reachable from parent survivors."""

    def run(self, state: ExecutionState) -> ExecutionState:
        stats, query = state.stats, state.query
        if not begin_upward(state):
            return state
        with stats.time_phase("prune_upward"):
            state.prime = compute_prime_subtree(query, state.down, state.prime_outputs)
            state.down = prune_upward(state.context, state.down, state.prime)
        finish_upward(state)
        return state


class BuildMatchingGraph(Operator):
    """Shrink the prime subtree and assemble the matching graph."""

    def run(self, state: ExecutionState) -> ExecutionState:
        stats, query = state.stats, state.query
        with stats.time_phase("matching_graph"):
            state.fragments = shrink_prime_subtree(
                query, state.prime, state.down, state.prime_outputs
            )
            state.matching_graph = build_matching_graph(state.context, state.down, state.fragments)
            stats.matching_graph_nodes = state.matching_graph.num_vertices
            stats.matching_graph_edges = state.matching_graph.num_edges
        return state


class CollectResults(Operator):
    """Assemble answers from the matching graph (incl. Appendix D)."""

    def run(self, state: ExecutionState) -> ExecutionState:
        stats, query = state.stats, state.query
        with stats.time_phase("collect_results"):
            if state.output_structures:
                answers: dict[int, ResultSet] = {}
                for position, outputs in enumerate(state.output_structures):
                    answers[position] = collect_results(
                        query,
                        state.matching_graph,
                        state.down,
                        outputs=outputs,
                        group_nodes=state.group_nodes,
                    )
                stats.result_count = sum(len(a) for a in answers.values())
                return state.finish(answers)
            results = collect_results(
                query, state.matching_graph, state.down, group_nodes=state.group_nodes
            )
        stats.result_count = len(results)
        return state.finish(results)


class BaselineDelegate(Operator):
    """Run the TwigStackD baseline the cost model routed to."""

    def run(self, state: ExecutionState) -> ExecutionState:
        stats = state.stats
        baseline = state.engine.baseline()
        baseline.candidate_provider = state.candidate_provider
        try:
            with stats.time_phase("baseline"):
                results, baseline_stats = baseline.evaluate_with_stats(state.query)
        finally:
            baseline.candidate_provider = None
        stats.input_nodes += baseline_stats.input_nodes
        stats.index_lookups += baseline_stats.index_lookups
        stats.index_entries += baseline_stats.index_entries
        stats.intermediate_tuples += baseline_stats.intermediate_tuples
        stats.result_count = len(results)
        for name, seconds in baseline_stats.phase_seconds.items():
            stats.phase_seconds[name] = stats.phase_seconds.get(name, 0.0) + seconds
        return state.finish(results)


class ConstantEmpty(Operator):
    """The constant-empty answer (unsatisfiable plans): no I/O at all."""

    def run(self, state: ExecutionState) -> ExecutionState:
        return state.finish_empty()


def build_gtea_operators(order: tuple[str, ...] | list[str]) -> list[Operator]:
    """The GTEA pipeline for one downward prune order."""
    pipeline: list[Operator] = [CandidateScan()]
    pipeline.extend(DownwardPrune(node_id) for node_id in order)
    pipeline.extend([UpwardPrune(), BuildMatchingGraph(), CollectResults()])
    return pipeline


#: operator class per physical-plan row name (see
#: :class:`repro.plan.physical.PhysicalOperator`).
OPERATOR_CLASSES = {
    "CandidateScan": CandidateScan,
    "DownwardPrune": DownwardPrune,
    "UpwardPrune": UpwardPrune,
    "BuildMatchingGraph": BuildMatchingGraph,
    "CollectResults": CollectResults,
    "BaselineDelegate": BaselineDelegate,
    "ConstantEmpty": ConstantEmpty,
}


def instantiate_operators(specs) -> list[Operator]:
    """Stateful operator instances from a physical plan's operator rows.

    The plan is the single source of truth for the executed pipeline:
    whatever ``PhysicalPlan.operators`` lists (and ``explain()``
    renders) is what runs.  Operators are stateful, so plans — which are
    cached and reused — carry specs, and each execution instantiates
    afresh.
    """
    operators: list[Operator] = []
    for spec in specs:
        cls = OPERATOR_CLASSES[spec.op]
        operators.append(cls(spec.target) if spec.op == "DownwardPrune" else cls())
    return operators


def run_pipeline(
    state: ExecutionState,
    operators: list[Operator],
    *,
    adaptive: bool = False,
) -> ExecutionState:
    """Drive ``operators`` over ``state``, recording per-operator stats.

    With ``adaptive=True`` the contiguous run of :class:`DownwardPrune`
    operators is re-scheduled mid-flight (see module docstring); every
    other operator executes in list order.
    """
    position = 0
    while position < len(operators) and not state.finished:
        operator = operators[position]
        if adaptive and isinstance(operator, DownwardPrune):
            end = position
            while end < len(operators) and isinstance(operators[end], DownwardPrune):
                end += 1
            _run_downward_adaptive(state, operators[position:end])
            position = end
            continue
        _run_operator(state, operator)
        position += 1
    return state


def _run_operator(state: ExecutionState, operator: Operator, note: str = "") -> None:
    """Execute one operator; attribute time, sizes and index probes."""
    before = state.index_snapshot()
    input_size = _operator_input_size(state, operator)
    started = time.perf_counter()
    operator.run(state)
    elapsed = time.perf_counter() - started
    after = state.index_snapshot()
    lookups = entries = 0
    if after is not None:
        # The context may have been built mid-run; probes before its
        # creation baseline belong to earlier executions.
        seen = before if before is not None else state._counter_baseline
        lookups = after["lookups"] - seen["lookups"]
        entries = after["entries_scanned"] - seen["entries_scanned"]
        state.stats.index_lookups += lookups
        state.stats.index_entries += entries
    state.stats.operator_stats.append(
        OperatorStats(
            op=operator.name,
            target=operator.target,
            input_size=input_size,
            output_size=_operator_output_size(state, operator),
            seconds=elapsed,
            index_lookups=lookups,
            index_entries=entries,
            note=note,
        )
    )


def _operator_input_size(state: ExecutionState, operator: Operator) -> int:
    if isinstance(operator, CandidateScan):
        return len(state.query.nodes)
    if isinstance(operator, DownwardPrune):
        return len(state.mats.get(operator.target, ()))
    if isinstance(operator, (UpwardPrune, BuildMatchingGraph, CollectResults)):
        return sum(len(nodes) for nodes in state.down.values())
    if isinstance(operator, BaselineDelegate):
        return state.graph.num_nodes + state.graph.num_edges
    return 0


def _operator_output_size(state: ExecutionState, operator: Operator) -> int:
    if isinstance(operator, CandidateScan):
        return sum(len(nodes) for nodes in state.mats.values())
    if isinstance(operator, DownwardPrune):
        return len(state.down.get(operator.target, ()))
    if isinstance(operator, (UpwardPrune, BuildMatchingGraph)):
        return sum(len(nodes) for nodes in state.down.values())
    return state.stats.result_count


def _run_downward_adaptive(state: ExecutionState, pending: list[Operator]) -> None:
    """Adaptive schedule over the remaining :class:`DownwardPrune` ops.

    Greedy: among nodes whose children are all refined, run the one
    with the smallest *actual* cost — its fetched candidate count plus
    its children's survivor counts — tie-breaking on node id.  This is
    always a valid children-before-parents order, so results are
    identical to the static schedule; only the visit order (and, via
    the backbone early exit, the number of executed operators) changes.
    """
    query = state.query
    remaining = {op.target: op for op in pending}
    backbone = {node_id for node_id in remaining if query.nodes[node_id].is_backbone}
    while remaining and not state.finished:
        eligible = [
            node_id
            for node_id in remaining
            if all(child in state.down for child in query.children[node_id])
        ]
        node_id = min(eligible, key=lambda n: (_actual_cost(state, n), n))
        _run_operator(state, remaining.pop(node_id), note="adaptive")
        if node_id in backbone and not state.down[node_id]:
            # Every match embeds every backbone node; an empty downward
            # set anywhere on the backbone empties the answer.  The
            # skipped operators are the adaptive pipeline's saving.
            state.stats.operator_stats[-1].note = "adaptive early-exit"
            state.finish_empty()
            return


def _actual_cost(state: ExecutionState, node_id: str) -> int:
    """Observed cost of refining ``node_id`` now: own candidates plus
    the survivor sets its refinement reads."""
    return len(state.mats[node_id]) + sum(
        len(state.down[child]) for child in state.query.children[node_id]
    )


def executed_downward_order(stats: EvaluationStats) -> tuple[str, ...]:
    """The downward prune order actually executed, from operator stats."""
    return tuple(
        record.target
        for record in stats.operator_stats
        if record.op == "DownwardPrune" and record.target is not None
    )
