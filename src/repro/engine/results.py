"""Result enumeration from the maximal matching graph (Procedure 5).

``CollectResults`` traverses the matching graph top-down, producing per
(query node, data node) the set of output tuples of the dominated subtree,
combining branch lists by Cartesian product and memoizing shared vertices
(the paper's "merges the intermediate partial results in advance").

Also implements the two extensions from the paper:

* the *group* operator (Section 4.3, Remark): a grouped node contributes a
  single element carrying the set of its subtree matches;
* *multiple output structures* (Appendix D): several output-node lists
  evaluated in one pass over the same matching graph.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable

from ..query.gtpq import GTPQ
from .matching_graph import MatchingGraph
from .prune import MatSets

ResultSet = set[tuple]


def collect_results(
    query: GTPQ,
    matching_graph: MatchingGraph,
    mats: MatSets,
    outputs: list[str] | None = None,
    group_nodes: Iterable[str] = (),
) -> ResultSet:
    """Assemble the final answer.

    Args:
        query: the evaluated query.
        matching_graph: matches of the shrunk prime subtree fragments.
        mats: pruned candidate sets (supplies singleton outputs).
        outputs: output-node list (defaults to ``query.outputs``).
        group_nodes: output nodes whose subtree matches are grouped into a
            single frozenset element instead of being expanded.
    """
    output_ids = list(outputs) if outputs is not None else list(query.outputs)
    group_set = set(group_nodes)
    fragment_outputs: dict[str, list[str]] = {}
    covered: set[str] = set()
    for root in matching_graph.roots:
        in_fragment = _fragment_nodes(matching_graph, root)
        frag_outputs = [o for o in output_ids if o in in_fragment]
        fragment_outputs[root] = frag_outputs
        covered.update(in_fragment)

    # Enumerate each fragment independently.
    per_fragment: list[tuple[list[str], list[dict[str, object]]]] = []
    for root in matching_graph.roots:
        columns = fragment_outputs[root]
        rows = _enumerate_fragment(matching_graph, root, set(columns), group_set)
        if not rows and _fragment_has_vertices(matching_graph, root):
            # Defensive: pruning guarantees non-emptiness, but a fragment
            # without complete matches must empty the whole answer.
            return set()
        per_fragment.append((columns, rows))
        if not rows:
            return set()

    # Singleton outputs sit outside every fragment: one fixed value each.
    singleton_values: dict[str, object] = {}
    for output in output_ids:
        if output in covered:
            continue
        candidates = mats[output]
        if not candidates:
            return set()
        if output in group_set:
            singleton_values[output] = frozenset(
                {((output, candidates[0]),)}
            )
        else:
            singleton_values[output] = candidates[0]

    results: ResultSet = set()
    fragment_rows = [rows for _, rows in per_fragment]
    for combination in product(*fragment_rows) if fragment_rows else [()]:
        merged: dict[str, object] = dict(singleton_values)
        for row in combination:
            merged.update(row)
        results.add(tuple(merged[o] for o in output_ids))
    return results


def _fragment_nodes(matching_graph: MatchingGraph, root: str) -> set[str]:
    nodes = {root}
    stack = [root]
    while stack:
        current = stack.pop()
        for child_id in matching_graph.children.get(current, []):
            nodes.add(child_id)
            stack.append(child_id)
    return nodes


def _fragment_has_vertices(matching_graph: MatchingGraph, root: str) -> bool:
    return bool(matching_graph.vertices.get(root))


def _enumerate_fragment(
    matching_graph: MatchingGraph,
    root: str,
    outputs: set[str],
    group_set: set[str],
) -> list[dict[str, object]]:
    """All output rows of one fragment (union over root candidates)."""
    memo: dict[tuple[str, int], list[dict[str, object]]] = {}

    def visit(node_id: str, data_node: int) -> list[dict[str, object]]:
        key = (node_id, data_node)
        if key in memo:
            return memo[key]
        child_ids = matching_graph.children.get(node_id, [])
        branch_lists = matching_graph.branches.get(key, {})
        per_branch: list[list[dict[str, object]]] = []
        complete = True
        for child_id in child_ids:
            targets = branch_lists.get(child_id, [])
            branch_rows: list[dict[str, object]] = []
            for target in targets:
                branch_rows.extend(visit(child_id, target))
            if not branch_rows:
                complete = False
                break
            # Deduplicate rows (paper: partial results merged in advance).
            branch_rows = _dedup(branch_rows)
            if child_id in group_set:
                # Group operator (Section 4.3, Remark): the whole branch
                # collapses into one element carrying the set of subtree
                # matches instead of being Cartesian-expanded.
                grouped = frozenset(
                    tuple(sorted(row.items())) for row in branch_rows
                )
                branch_rows = [{child_id: grouped}]
            per_branch.append(branch_rows)
        if not complete:
            memo[key] = []
            return []
        rows: list[dict[str, object]] = []
        for combination in product(*per_branch) if per_branch else [()]:
            merged: dict[str, object] = {}
            for piece in combination:
                merged.update(piece)
            rows.append(merged)
        if node_id in outputs:
            # For group nodes the image participates in the branch rows so
            # the parent-level collapse sees it; for plain outputs it is
            # the tuple column.
            for row in rows:
                row[node_id] = data_node
        rows = _dedup(rows)
        memo[key] = rows
        return rows

    all_rows: list[dict[str, object]] = []
    for data_node in matching_graph.vertices.get(root, []):
        all_rows.extend(visit(root, data_node))
    return _dedup(all_rows)


def _dedup(rows: list[dict[str, object]]) -> list[dict[str, object]]:
    seen: set[tuple] = set()
    out: list[dict[str, object]] = []
    for row in rows:
        key = tuple(sorted(row.items()))
        if key not in seen:
            seen.add(key)
            out.append(row)
    return out
