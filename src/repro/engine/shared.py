"""Shared batch execution: one downward prune per distinct subtree.

Consumes the :class:`~repro.plan.shared.BatchPlan` of the batch compiler.
The downward match set of a rooted subtree is query-context-free (it
depends only on the subtree below the node), so the executor walks the
batch's :class:`~repro.plan.shared.SharedPlanDAG` in topological order
and discharges each downward obligation exactly once — through
:func:`repro.engine.prune.downward_step`, fed with the already-shared
child results — then resumes every query's private pipeline (upward
prune → matching graph → CollectResults) from those sets via
:meth:`repro.engine.gtea.GTEA.execute_from_downward`.

An optional **subtree-result cache** (an
:class:`~repro.engine.cache.LRUCache` keyed by subtree fingerprint)
carries the materialized sets *across* batches; the session layer owns
it next to its plan/candidate/result caches and invalidates it on graph
version bumps.

Stats attribution: the work of a shared sub-plan (candidate fetch,
prune op, index I/O, subtree-cache probe) is charged to the query that
first demanded the subtree (its DAG exemplar); every other consumer
records a ``batch_shared_subtrees`` credit instead.  Plans the physical
planner routed away from GTEA (unsatisfiable, TwigStackD) run through
the ordinary per-query path.
"""

from __future__ import annotations

import time

from ..plan.shared import BatchPlan
from ..query.gtpq import EdgeType
from ..query.naive import candidate_nodes
from .cache import CacheCounters, LRUCache
from .gtea import GTEA, CandidateProvider
from .operators import OperatorStats
from .prune import PruningContext, build_pred_contour, downward_step
from .results import ResultSet
from .stats import EvaluationStats


class SharedExecutor:
    """Executes a compiled batch with shared subtree materialization.

    Args:
        engine: the :class:`~repro.engine.gtea.GTEA` to execute on; all
            participating plans must target its reachability index.
        candidate_provider: optional ``(query, node_id) -> mat(u)``
            source (the session layer injects its predicate-keyed
            candidate cache); defaults to a fresh scan.
        subtree_cache: optional LRU holding downward-pruned candidate
            tuples keyed by subtree fingerprint, reused across batches.
        candidate_counters: counters of the cache backing
            ``candidate_provider``; when given, per-fetch deltas are
            attributed to the consuming query's stats.
        parallel: optional :class:`~repro.engine.parallel.ParallelExecutor`;
            when given, the DAG materializes through its batch-wide
            concurrent frontier (:meth:`~repro.engine.parallel.
            ParallelExecutor.materialize_dag`) instead of the serial
            topological sweep — same sets, same attribution.
    """

    def __init__(
        self,
        engine: GTEA,
        *,
        candidate_provider: CandidateProvider | None = None,
        subtree_cache: LRUCache | None = None,
        candidate_counters: CacheCounters | None = None,
        parallel=None,
    ):
        self.engine = engine
        self.candidate_provider = candidate_provider
        self.subtree_cache = subtree_cache
        self.candidate_counters = candidate_counters
        self.parallel = parallel

    # ------------------------------------------------------------------
    def execute(
        self, batch: BatchPlan
    ) -> list[tuple[ResultSet, EvaluationStats]]:
        """Run every plan of ``batch``; one (answer, stats) per plan."""
        stats_by_plan = [EvaluationStats() for _ in batch.plans]
        if self.parallel is not None:
            down = self.parallel.materialize_dag(
                batch,
                stats_by_plan,
                candidate_provider=self.candidate_provider,
                subtree_cache=self.subtree_cache,
                candidate_counters=self.candidate_counters,
            )
        else:
            down = self._materialize_dag(batch, stats_by_plan)

        exemplar_of = {
            subtree.fingerprint: subtree.exemplar for subtree in batch.dag.subtrees
        }
        outcomes: list[tuple[ResultSet, EvaluationStats]] = []
        for position, plan in enumerate(batch.plans):
            stats = stats_by_plan[position]
            node_fingerprints = batch.dag.node_fingerprints[position]
            if not node_fingerprints:
                # Unsatisfiable or baseline-routed: the ordinary path.
                with stats.record_candidate_cache(self.candidate_counters):
                    results, stats = self.engine.execute(
                        plan, candidate_provider=self.candidate_provider, stats=stats
                    )
                outcomes.append((results, stats))
                continue
            mats = {
                node_id: list(down[fingerprint])
                for node_id, fingerprint in node_fingerprints.items()
            }
            for node_id, fingerprint in node_fingerprints.items():
                if exemplar_of[fingerprint] != (position, node_id):
                    stats.batch_shared_subtrees += 1
            results, stats = self.engine.execute_from_downward(plan, mats, stats=stats)
            outcomes.append((results, stats))
        return outcomes

    # ------------------------------------------------------------------
    def _materialize_dag(
        self, batch: BatchPlan, stats_by_plan: list[EvaluationStats]
    ) -> dict[str, tuple[int, ...]]:
        """Downward-pruned candidate set per DAG node, children first."""
        down: dict[str, tuple[int, ...]] = {}
        if not batch.dag.subtrees:
            return down
        engine = self.engine
        reach = engine.reachability
        reach.counters.reset()
        contexts: dict[int, PruningContext] = {}
        contours: dict[str, object] = {}
        seen = reach.counters.snapshot()

        for subtree in batch.dag.subtrees:
            position, node_id = subtree.exemplar
            stats = stats_by_plan[position]
            fingerprint = subtree.fingerprint
            if self.subtree_cache is not None:
                cached = self.subtree_cache.get(fingerprint)
                if cached is not None:
                    stats.subtree_cache_hits += 1
                    down[fingerprint] = cached
                    continue
                stats.subtree_cache_misses += 1

            plan = batch.plans[position]
            query = plan.query
            context = contexts.get(position)
            if context is None:
                context = PruningContext(engine.graph, query, reach)
                contexts[position] = context

            started = time.perf_counter()
            with stats.record_candidate_cache(self.candidate_counters):
                with stats.time_phase("candidates"):
                    if self.candidate_provider is not None:
                        candidates = list(self.candidate_provider(query, node_id))
                    else:
                        candidates = candidate_nodes(engine.graph, query, node_id)
            stats.candidates_initial[node_id] = len(candidates)
            stats.input_nodes += len(candidates)

            with stats.time_phase("prune_downward"):
                children = query.children[node_id]
                refined_children = {
                    child_id: list(down[batch.dag.node_fingerprints[position][child_id]])
                    for child_id in children
                }
                if context.index is not None:
                    for child_id in children:
                        if query.edge_type(child_id) is not EdgeType.DESCENDANT:
                            continue
                        child_fp = batch.dag.node_fingerprints[position][child_id]
                        contour = contours.get(child_fp)
                        if contour is None:
                            contour = build_pred_contour(context, list(down[child_fp]))
                            contours[child_fp] = contour
                        context.pred_contours[child_id] = contour
                survivors = downward_step(context, node_id, candidates, refined_children)
            stats.downward_prune_ops += 1

            down[fingerprint] = tuple(survivors)
            if self.subtree_cache is not None:
                self.subtree_cache.put(fingerprint, down[fingerprint])

            # Attribute the index I/O of this sub-plan to its exemplar.
            snapshot = reach.counters.snapshot()
            lookups = snapshot["lookups"] - seen["lookups"]
            entries = snapshot["entries_scanned"] - seen["entries_scanned"]
            stats.index_lookups += lookups
            stats.index_entries += entries
            seen = snapshot
            stats.operator_stats.append(
                OperatorStats(
                    op="DownwardPrune",
                    target=node_id,
                    input_size=len(candidates),
                    output_size=len(survivors),
                    seconds=time.perf_counter() - started,
                    index_lookups=lookups,
                    index_entries=entries,
                    note="shared-dag",
                )
            )
        return down
