"""Prime-subtree shrinking and fragmenting (paper Section 4.3).

Given the prime subtree (paths from the root to every output node with
more than one candidate), the *shrunk* prime subtree drops:

* ancestors of the lowest common ancestor of all such outputs (when that
  lca is not the root), and
* every node with a singleton candidate set — its single candidate is in
  every answer and is re-attached during result assembly.

Dropping nodes can disconnect the subtree; the remaining *fragments* are
enumerated independently and combined by Cartesian product.
"""

from __future__ import annotations

from ..query.gtpq import GTPQ
from .prune import MatSets


def lowest_common_ancestor(query: GTPQ, nodes: list[str]) -> str:
    """LCA of a set of query nodes (the root for an empty set)."""
    if not nodes:
        return query.root
    common: set[str] | None = None
    for node_id in nodes:
        path = set(query.path_to_root(node_id))
        common = path if common is None else common & path
    assert common  # the root is always shared
    # The deepest node among the common ancestors.
    return max(common, key=lambda n: len(query.ancestors(n)))


def compute_prime_subtree(
    query: GTPQ, mats: MatSets, outputs: list[str] | None = None
) -> list[str]:
    """Nodes on paths from the root to outputs with > 1 candidate."""
    output_ids = outputs if outputs is not None else query.outputs
    targets = [o for o in output_ids if len(mats[o]) > 1]
    prime: set[str] = {query.root}
    for output in targets:
        prime.update(query.path_to_root(output))
    return [node_id for node_id in query.depth_first() if node_id in prime]


def shrink_prime_subtree(
    query: GTPQ, prime: list[str], mats: MatSets, outputs: list[str] | None = None
) -> list[list[str]]:
    """Return the fragments of the shrunk prime subtree.

    Each fragment is a pre-order list of query nodes whose first element
    is the fragment root.  May be empty (every output had one candidate).
    """
    output_ids = outputs if outputs is not None else query.outputs
    prime_set = set(prime)
    multi_outputs = [
        o for o in output_ids if o in prime_set and len(mats[o]) > 1
    ]
    lca = lowest_common_ancestor(query, multi_outputs)
    # Drop strict ancestors of the lca, then singleton-candidate nodes.
    lca_ancestors = set(query.ancestors(lca))
    kept = [
        node_id
        for node_id in prime
        if node_id not in lca_ancestors and len(mats[node_id]) > 1
    ]
    kept_set = set(kept)
    fragments: list[list[str]] = []
    for node_id in kept:  # pre-order over the query guarantees parents first
        parent_id = query.parent.get(node_id)
        if parent_id is not None and parent_id in kept_set:
            continue  # belongs to its parent's fragment
        # A fragment is the connected piece reachable through kept nodes
        # only; kept descendants separated by a dropped node start their
        # own fragment (they are combined by Cartesian product later).
        fragment: list[str] = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            fragment.append(current)
            for child_id in reversed(query.children[current]):
                if child_id in kept_set:
                    stack.append(child_id)
        fragments.append(fragment)
    return fragments
