"""Sharded, concurrent prune execution across a worker pool.

The downward prune phase is the natural parallelism seam of the GTEA
pipeline: once a node's children are refined, its Procedure-6 visit
(:func:`repro.engine.prune.downward_step`) evaluates ``fext``
independently per candidate, and nodes on disjoint subtrees have no
data dependencies at all.  :class:`ParallelExecutor` exploits both axes
without modifying the operators themselves:

* **frontier dispatch** — the eligibility set of the adaptive scheduler
  (nodes whose children are all refined) becomes a dispatch frontier;
  every eligible node's prune is launched concurrently;
* **candidate sharding** — each node's candidate set is split by a
  :class:`repro.graph.partition.GraphPartition` into shards refined as
  independent pool tasks, and the shard survivor sets are merged with
  :func:`repro.graph.partition.merge_survivors` (sorted by node id)
  before :class:`~repro.engine.operators.UpwardPrune` runs — so a
  sharded run is byte-identical to a single-shard run in results and
  survivor sets.

Three backends: ``"process"`` (a fork-started
:class:`~concurrent.futures.ProcessPoolExecutor`; workers inherit the
graph and the built reachability index by memory, tasks ship only the
query JSON, the candidate shard, the refined child sets and the contour
data), ``"thread"`` (in-process pool; real concurrency is GIL-bound but
the dispatch machinery is identical), and ``"serial"`` (inline
execution through the same code path — the deterministic reference the
oracle harness compares against).  ``"auto"`` picks ``"process"`` where
fork is available.

The driver covers the whole plan suffix, not just the downward phase:

* **sharded upward prune** (``upward=True``) — once the downward sets
  are fixed, Procedure 7 refines each prime child independently per
  candidate given the parent's refined set; the driver walks the prime
  subtree as a top-down frontier, ships each child's candidate shards
  to the same pool (parent successor contours are built driver-side,
  like the downward pass's predecessor contours), and merges survivors
  sorted — byte-identical to the serial operator;
* **scan/prune overlap** (``overlap_scan=True``) — instead of scanning
  every ``mat(u)`` up front, the driver fetches the root first (the
  serial scan's empty-root exit), then scans the remaining nodes
  bottom-up *between* frontier polls, so leaf prune tasks start while
  later nodes' candidate fetches are still running;
* **work stealing** (``steal=True``) — shard tasks are not thrown at
  the pool all at once: at most ``workers`` are in flight, the rest
  wait in a shared deque (largest shards first), and every completion
  drains the next pending task — so a worker finishing a small shard
  immediately steals queued work instead of idling behind a skewed
  sibling.  ``EvaluationStats.parallel_steals`` counts the drains.

Leaf nodes and empty candidate sets are refined inline (their prune is
O(set size) with no index work — not worth a task).  Like the adaptive
scheduler, the driver short-circuits to the empty answer as soon as a
backbone node's merged survivor set comes back empty.
:class:`BuildMatchingGraph` and :class:`CollectResults` stay on the
serial pipeline — the matching graph joins *across* the merged survivor
sets, so it has no per-candidate independence to exploit.

Index-probe attribution is exact under the ``"serial"`` and
``"process"`` backends (per-task counter deltas; process workers are
single-threaded).  The ``"thread"`` backend shares one counter set
across concurrent tasks, so per-record attribution there is
approximate.  Probe *counts* legitimately differ from the serial
executor — per-shard chain scans and per-shard memoization repeat work
the single-shard pass shares — while results and survivor sets do not.

Batch workloads go through :meth:`ParallelExecutor.materialize_dag`:
the topological order of a :class:`~repro.plan.shared.SharedPlanDAG`
becomes a batch-wide frontier (subtrees whose child fingerprints are
materialized dispatch concurrently), with the same cache and stats
bookkeeping as the serial :class:`~repro.engine.shared.SharedExecutor`.

Wire-up: ``QuerySession(parallel=...)`` accepts a worker count or a
:class:`ParallelOptions` and routes GTEA-executor plans here, both for
:meth:`~repro.engine.session.QuerySession.evaluate` and for the shared
batch path of :meth:`~repro.engine.session.QuerySession.evaluate_many`.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from ..graph.partition import GraphPartition, merge_survivors
from ..plan.compile import CompiledPlan
from ..plan.shared import BatchPlan
from ..query.gtpq import EdgeType
from ..query.naive import candidate_nodes
from ..query.serialize import query_from_json, query_to_json
from ..reachability.contour import Contour, merge_succ_lists
from .cache import CacheCounters, LRUCache
from .operators import (
    BuildMatchingGraph,
    CandidateScan,
    CollectResults,
    ExecutionState,
    OperatorStats,
    UpwardPrune,
    begin_upward,
    finish_upward,
    run_pipeline,
)
from .prime import compute_prime_subtree
from .prune import (
    PruningContext,
    _filter_upward_ad,
    _filter_upward_ad_generic,
    build_pred_contour,
    downward_step,
)
from .results import ResultSet
from .stats import EvaluationStats

#: backends :class:`ParallelOptions` accepts.
BACKENDS = ("auto", "process", "thread", "serial")


@dataclass(frozen=True)
class ParallelOptions:
    """Configuration of one :class:`ParallelExecutor`.

    Attributes:
        workers: pool size (and the default shard count).
        backend: one of :data:`BACKENDS`; ``"auto"`` resolves to
            ``"process"`` where fork is available, else ``"thread"``.
        shards: shards per downward prune (defaults to ``workers``).
        strategy: candidate routing strategy of
            :class:`~repro.graph.partition.GraphPartition`; the default
            ``"hybrid"`` picks ``hash`` vs ``range`` per candidate set
            from its observed skew across the range shards.
        min_shard_size: candidates required per shard before a node's
            set is split further — small sets run as one task.
        upward: shard the upward prune across the pool too (the serial
            :class:`~repro.engine.operators.UpwardPrune` runs when off).
        overlap_scan: fetch candidates lazily between frontier polls
            instead of all up front (see the module docstring).
        steal: cap in-flight tasks at ``workers`` and let completions
            drain a shared pending deque (work stealing); off means
            every shard task is submitted to the pool immediately.
    """

    workers: int = 2
    backend: str = "auto"
    shards: int | None = None
    strategy: str = "hybrid"
    min_shard_size: int = 16
    upward: bool = True
    overlap_scan: bool = True
    steal: bool = True


def _resolve_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(f"unknown parallel backend {backend!r}; expected one of {BACKENDS}")
    if backend != "auto":
        return backend
    import multiprocessing

    return "process" if "fork" in multiprocessing.get_all_start_methods() else "thread"


# ----------------------------------------------------------------------
# Shard tasks.  One task = one (query node, candidate shard) refinement;
# the function is backend-agnostic and the process backend wraps it with
# fork-inherited graph/index state.
# ----------------------------------------------------------------------
def _run_shard(
    graph, reach, query, node_id, candidates, refined_children, contour_data, probe_cache=None
):
    """Refine one candidate shard; returns (survivors, lookups, entries).

    ``contour_data`` carries the raw per-chain maps of the AD children's
    predecessor contours (3-hop index only); the task rebuilds
    :class:`~repro.reachability.contour.Contour` objects around them so
    :func:`~repro.engine.prune.downward_step` sees exactly the state the
    serial :class:`~repro.engine.operators.DownwardPrune` operator would.
    ``probe_cache`` (thread/serial backends only) shares chain-scan
    snapshots between the shards of one wave.
    """
    before = reach.counters.snapshot()
    context = PruningContext(graph, query, reach)
    context.probe_cache = probe_cache
    if contour_data:
        for child_id, data in contour_data.items():
            context.pred_contours[child_id] = Contour(dict(data))
    survivors = downward_step(context, node_id, list(candidates), refined_children)
    after = reach.counters.snapshot()
    return (
        survivors,
        after["lookups"] - before["lookups"],
        after["entries_scanned"] - before["entries_scanned"],
    )


def _run_upward_shard(graph, reach, kind, candidates, payload):
    """Refine one upward shard; returns (survivors, lookups, entries).

    Procedure 7's child refinement is independent per candidate once the
    parent's refined set is fixed, so the driver ships each prime
    child's candidate shards with the parent state they need and merges
    the survivor lists sorted.  Three task kinds:

    * ``"pc"`` — exact parent-set membership; payload is the parent's
      refined data-node set;
    * ``"ad"`` — 3-hop successor-contour filter; payload is the raw
      contour map plus the parent component set (Proposition 7);
    * ``"ad-generic"`` — memoized ``reaches`` probes for non-3-hop
      indexes; payload is the parent component list.

    Each filter preserves the ascending input order, so shard survivors
    merge byte-identically to the serial pass.  The query itself is not
    needed: upward filtering reads only the graph and the index.
    """
    before = reach.counters.snapshot()
    if kind == "pc":
        survivors = [
            candidate
            for candidate in candidates
            if any(p in payload for p in graph.predecessors(candidate))
        ]
    else:
        context = PruningContext(graph, None, reach)
        if kind == "ad":
            contour_data, parent_components = payload
            survivors = _filter_upward_ad(
                context, list(candidates), Contour(dict(contour_data)), set(parent_components)
            )
        else:
            survivors = _filter_upward_ad_generic(context, list(candidates), list(payload))
    after = reach.counters.snapshot()
    return (
        survivors,
        after["lookups"] - before["lookups"],
        after["entries_scanned"] - before["entries_scanned"],
    )


#: fork-inherited per-process state of the process backend's workers.
_WORKER_STATE: dict = {}


def _init_process_worker(graph, reach) -> None:
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["reach"] = reach
    _WORKER_STATE["queries"] = {}


def _process_shard_task(query_json, node_id, candidates, refined_children, contour_data):
    queries = _WORKER_STATE["queries"]
    query = queries.get(query_json)
    if query is None:
        if len(queries) >= 256:
            queries.clear()
        query = query_from_json(query_json)
        queries[query_json] = query
    survivors, lookups, entries = _run_shard(
        _WORKER_STATE["graph"],
        _WORKER_STATE["reach"],
        query,
        node_id,
        candidates,
        refined_children,
        contour_data,
    )
    return survivors, lookups, entries, f"pid:{os.getpid()}"


def _process_upward_task(kind, candidates, payload):
    survivors, lookups, entries = _run_upward_shard(
        _WORKER_STATE["graph"], _WORKER_STATE["reach"], kind, candidates, payload
    )
    return survivors, lookups, entries, f"pid:{os.getpid()}"


@dataclass
class _NodeRun:
    """Driver-side bookkeeping of one in-flight downward prune."""

    started: float
    input_size: int
    pending: int  #: shard tasks still outstanding.
    shards: int  #: shard tasks dispatched.
    shard_results: list = field(default_factory=list)
    lookups: int = 0  #: contour-build probes plus worker deltas.
    entries: int = 0


class _TaskPump:
    """The shared work-stealing deque between the driver and the pool.

    Submission thunks queue here instead of going straight to the pool;
    at most ``cap`` tasks are in flight (``cap=None`` — stealing off —
    submits everything immediately, the pre-stealing behaviour).  The
    driver calls :meth:`fill` with ``stolen=False`` right after
    enqueueing a wave and with ``stolen=True`` after completions — the
    latter drains model "an idle worker steals the next pending shard"
    and count into ``EvaluationStats.parallel_steals``.  Queue order is
    dispatch order; callers enqueue each wave's shards largest-first
    (LPT) so a skewed shard starts as early as possible.

    The counting is deterministic under the ``"serial"`` backend (every
    fill resolves inline), which is what the oracle and CI sanity
    assertions pin down.
    """

    def __init__(self, stats: EvaluationStats, cap: int | None):
        self.stats = stats
        self.cap = cap
        self.queue: deque = deque()  #: pending (key, submit thunk) tasks.
        self.in_flight: dict[Future, str] = {}

    def add(self, key: str, thunk) -> None:
        self.queue.append((key, thunk))

    def fill(self, *, stolen: bool) -> None:
        while self.queue and (self.cap is None or len(self.in_flight) < self.cap):
            key, thunk = self.queue.popleft()
            self.in_flight[thunk()] = key
            if stolen:
                self.stats.parallel_steals += 1

    @property
    def busy(self) -> bool:
        return bool(self.in_flight) or bool(self.queue)

    def drain(self) -> None:
        """Cancel and await outstanding tasks (early exit)."""
        self.queue.clear()
        if self.in_flight:
            for future in self.in_flight:
                future.cancel()
            wait(list(self.in_flight))
            self.in_flight.clear()


class _ScanProgress:
    """Bookkeeping of the overlapped candidate scan (one per execution)."""

    def __init__(self, pending: list[str]):
        self.pending = deque(pending)  #: nodes still to scan, in order.
        self.seconds = 0.0
        self.scanned: set[str] = set()


class ParallelExecutor:
    """Sharded, concurrent driver for the GTEA prune phases.

    Pinned to one engine *and* one graph version: the process backend's
    workers fork with the graph and the built reachability index in
    memory, so a mutated graph requires a fresh executor (the session
    layer rebuilds its executors on invalidation).  Use as a context
    manager, or call :meth:`close` to release the pool.
    """

    def __init__(
        self,
        engine,
        workers: int = 2,
        *,
        backend: str = "auto",
        shards: int | None = None,
        strategy: str = "hybrid",
        min_shard_size: int = 16,
        upward: bool = True,
        overlap_scan: bool = True,
        steal: bool = True,
    ):
        self.engine = engine
        self.workers = max(1, int(workers))
        self.backend = _resolve_backend(backend)
        self.num_shards = max(1, int(shards) if shards is not None else self.workers)
        self.min_shard_size = max(1, int(min_shard_size))
        self.upward = bool(upward)
        self.overlap_scan = bool(overlap_scan)
        self.steal = bool(steal)
        self._partition = GraphPartition.for_graph(engine.graph, self.num_shards, strategy)
        self._graph_version = engine.graph.version
        self._pool: ProcessPoolExecutor | ThreadPoolExecutor | None = None

    @classmethod
    def from_options(cls, engine, options: ParallelOptions) -> "ParallelExecutor":
        return cls(
            engine,
            options.workers,
            backend=options.backend,
            shards=options.shards,
            strategy=options.strategy,
            min_shard_size=options.min_shard_size,
            upward=options.upward,
            overlap_scan=options.overlap_scan,
            steal=options.steal,
        )

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self.backend == "serial":
            return None
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-prune"
                )
            else:
                import multiprocessing

                # Force the index before forking so workers inherit it
                # built — tasks must never rebuild it per process.
                reach = self.engine.reachability
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context("fork"),
                    initializer=_init_process_worker,
                    initargs=(self.engine.graph, reach),
                )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_fresh(self) -> None:
        if self.engine.graph.version != self._graph_version:
            raise RuntimeError(
                "ParallelExecutor is pinned to graph version "
                f"{self._graph_version}, but the graph is now at version "
                f"{self.engine.graph.version}; create a fresh executor"
            )

    # ------------------------------------------------------------------
    # Single-plan execution
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: CompiledPlan,
        group_nodes: tuple[str, ...] = (),
        candidate_provider=None,
        stats: EvaluationStats | None = None,
    ) -> tuple[ResultSet, EvaluationStats]:
        """Run a compiled plan with a sharded downward phase.

        Plans routed away from GTEA (unsatisfiable, baseline) and group
        evaluations (which run the original query) delegate to the
        engine's serial pipeline unchanged.
        """
        if stats is None:
            stats = EvaluationStats()
        self._check_fresh()
        if plan.physical.executor != "gtea" or group_nodes:
            return self.engine.execute(
                plan,
                group_nodes=group_nodes,
                candidate_provider=candidate_provider,
                stats=stats,
            )
        state = ExecutionState(
            self.engine, plan.query, stats, candidate_provider=candidate_provider
        )
        stats.parallel_workers = max(stats.parallel_workers, self.workers)
        labels = _WorkerLabels()
        if self.overlap_scan:
            # The serial scan's only early exit is an empty root set, so
            # fetching the root first preserves it; every other node is
            # scanned lazily inside the frontier loop.
            scan = _ScanProgress([n for n in state.query.bottom_up() if n != state.query.root])
            self._scan_node(state, scan, state.query.root)
            if not state.mats[state.query.root]:
                self._finish_scan(state, scan)
                state.finish_empty()
                return state.answer, stats
        else:
            run_pipeline(state, [CandidateScan()])
            scan = None
        if not state.finished:
            self._prune_frontier(state, scan, labels)
        if not state.finished:
            if self.upward:
                self._upward_prune(state, labels)
                if not state.finished:
                    run_pipeline(state, [BuildMatchingGraph(), CollectResults()])
            else:
                run_pipeline(state, [UpwardPrune(), BuildMatchingGraph(), CollectResults()])
        return state.answer, stats

    # ------------------------------------------------------------------
    # Overlapped candidate scan
    # ------------------------------------------------------------------
    def _scan_node(self, state: ExecutionState, scan: _ScanProgress, node_id: str) -> None:
        """Fetch one node's ``mat(u)``, mirroring ``CandidateScan``."""
        stats, query = state.stats, state.query
        started = time.perf_counter()
        with stats.time_phase("candidates"):
            if state.candidate_provider is not None:
                state.mats[node_id] = list(state.candidate_provider(query, node_id))
            else:
                state.mats[node_id] = candidate_nodes(state.graph, query, node_id)
            stats.candidates_initial[node_id] = len(state.mats[node_id])
        scan.seconds += time.perf_counter() - started
        scan.scanned.add(node_id)

    def _finish_scan(self, state: ExecutionState, scan: _ScanProgress) -> None:
        """Close the overlapped scan: the #input metric and the operator
        record the serial ``CandidateScan`` would have produced (inserted
        first, where the serial pipeline puts it).  On an early exit the
        unscanned nodes stay unscanned — fewer fetches, so ``#input``
        then covers only the scanned subset."""
        stats = state.stats
        stats.input_nodes = sum(stats.candidates_initial.values())
        stats.operator_stats.insert(
            0,
            OperatorStats(
                op="CandidateScan",
                target=None,
                input_size=len(scan.scanned),
                output_size=sum(len(state.mats[n]) for n in scan.scanned),
                seconds=scan.seconds,
                index_lookups=0,
                index_entries=0,
                note="parallel overlap",
            ),
        )

    def _prune_frontier(
        self, state: ExecutionState, scan: _ScanProgress | None, labels: "_WorkerLabels"
    ) -> None:
        """Dispatch every eligible downward prune until all nodes refine.

        With an overlapped scan (``scan`` not None) the loop fetches one
        unscanned node's candidates per iteration and polls the pool
        instead of blocking, so fetches hide behind in-flight prune
        tasks; eligibility then additionally requires the node itself to
        be scanned.  Scan time accrues to the ``candidates`` phase, the
        rest of the loop to ``prune_downward``.
        """
        stats, query = state.stats, state.query
        pool = self._ensure_pool()
        query_json = query_to_json(query) if self.backend == "process" else None
        backbone = {n for n in query.nodes if query.nodes[n].is_backbone}
        remaining = set(query.nodes)
        runs: dict[str, _NodeRun] = {}
        pump = _TaskPump(stats, self.workers if self.steal else None)
        scanned = scan.scanned if scan is not None else None
        loop_started = time.perf_counter()
        scan_seconds_before = scan.seconds if scan is not None else 0.0
        while (remaining or pump.busy) and not state.finished:
            if scan is not None and scan.pending:
                self._scan_node(state, scan, scan.pending.popleft())
            eligible = sorted(
                node_id
                for node_id in remaining
                if (scanned is None or node_id in scanned)
                and all(child in state.down for child in query.children[node_id])
            )
            for node_id in eligible:
                remaining.discard(node_id)
                self._dispatch_node(state, node_id, pool, query_json, pump, runs)
                if state.finished:
                    break
            if state.finished:
                break
            pump.fill(stolen=False)
            if not pump.in_flight:
                if (
                    remaining
                    and not eligible
                    and not (scan is not None and scan.pending)
                ):  # pragma: no cover
                    raise RuntimeError("downward frontier stalled (query is not a tree?)")
                continue
            timeout = 0 if scan is not None and scan.pending else None
            done, _ = wait(pump.in_flight, timeout=timeout, return_when=FIRST_COMPLETED)
            for future in sorted(done, key=lambda f: pump.in_flight[f]):
                node_id = pump.in_flight.pop(future)
                run = runs[node_id]
                survivors, lookups, entries, raw_label = future.result()
                run.shard_results.append(survivors)
                run.lookups += lookups
                run.entries += entries
                labels.count(stats, raw_label)
                run.pending -= 1
                if run.pending == 0:
                    self._finalize_node(state, node_id, run, backbone, note="parallel")
                    if state.finished:
                        break
            if not state.finished:
                pump.fill(stolen=True)
        scan_elapsed = (scan.seconds - scan_seconds_before) if scan is not None else 0.0
        prune_elapsed = max(0.0, time.perf_counter() - loop_started - scan_elapsed)
        stats.phase_seconds["prune_downward"] = (
            stats.phase_seconds.get("prune_downward", 0.0) + prune_elapsed
        )
        if scan is not None and not state.finished:
            self._finish_scan(state, scan)
        pump.drain()  # early exit with outstanding shards: drain the pool
        if scan is not None and state.finished:
            self._finish_scan(state, scan)

    # ------------------------------------------------------------------
    # Sharded upward prune
    # ------------------------------------------------------------------
    def _upward_prune(self, state: ExecutionState, labels: "_WorkerLabels") -> None:
        """Sharded counterpart of the serial ``UpwardPrune`` operator.

        Same preamble/epilogue (:func:`begin_upward` /
        :func:`finish_upward`), same prime subtree, one ``UpwardPrune``
        operator record — but the Procedure-7 refinement itself runs as
        a top-down frontier over the pool (:meth:`_upward_frontier`).
        """
        stats = state.stats
        started = time.perf_counter()
        input_size = sum(len(nodes) for nodes in state.down.values())
        tasks = lookups = entries = 0
        if begin_upward(state):
            with stats.time_phase("prune_upward"):
                state.prime = compute_prime_subtree(
                    state.query, state.down, state.prime_outputs
                )
                tasks, lookups, entries = self._upward_frontier(state, labels)
            finish_upward(state)
        stats.index_lookups += lookups
        stats.index_entries += entries
        stats.operator_stats.append(
            OperatorStats(
                op="UpwardPrune",
                target=None,
                input_size=input_size,
                output_size=sum(len(nodes) for nodes in state.down.values()),
                seconds=time.perf_counter() - started,
                index_lookups=lookups,
                index_entries=entries,
                note="parallel" + (f" x{tasks}" if tasks else " inline"),
            )
        )

    def _upward_frontier(
        self, state: ExecutionState, labels: "_WorkerLabels"
    ) -> tuple[int, int, int]:
        """Procedure 7 as a top-down frontier; returns (tasks, lookups,
        entries).

        A prime parent dispatches once its own refined set is final (the
        root's is final after the downward pass; a child's once its
        shard tasks merged).  The parent-side state each task needs —
        the refined data-node set for PC children, the merged successor
        contour plus component set for AD children — is built driver
        side and shipped with the shard, mirroring the downward pass's
        contour handling.  The contour is built lazily at the parent's
        visit, which equals the serial pass's post-refinement rebuild
        value with fewer probes.  Every filter preserves ascending input
        order, so the sorted shard merge is byte-identical to serial.

        Empty parent sets short-circuit their children to ``[]`` inline
        (every serial filter maps an empty parent state to ``[]``), as
        do empty child sets.

        Probe attribution: driver-side contour builds are bracketed
        with counter snapshots and task deltas are returned by the
        tasks — exact under the serial and process backends,
        approximate under thread (shared counters; the module
        docstring's existing caveat).
        """
        stats, query = state.stats, state.query
        context = state.context
        index, reach = context.index, context.reach
        pool = self._ensure_pool()
        prime_set = set(state.prime)
        children_of = {
            node_id: [c for c in query.children[node_id] if c in prime_set]
            for node_id in state.prime
        }
        refined = {node_id: list(nodes) for node_id, nodes in state.down.items()}
        pending_parents = {n for n in state.prime if children_of[n]}
        finalized = {query.root}
        runs: dict[str, _NodeRun] = {}
        pump = _TaskPump(stats, self.workers if self.steal else None)
        tasks = total_lookups = total_entries = 0
        while pending_parents or pump.busy:
            ready = sorted(p for p in pending_parents if p in finalized or p == query.root)
            for parent in ready:
                pending_parents.discard(parent)
                parent_nodes = refined[parent]
                children = children_of[parent]
                payloads: dict[str, tuple[str, object]] = {}
                if parent_nodes:
                    before = reach.counters.snapshot()
                    parent_components = context.dag_images(parent_nodes)
                    contour_data = None
                    if index is not None and any(
                        query.edge_type(c) is EdgeType.DESCENDANT for c in children
                    ):
                        contour_data = merge_succ_lists(index, parent_components).data
                    parent_data_set = set(parent_nodes)
                    after = reach.counters.snapshot()
                    total_lookups += after["lookups"] - before["lookups"]
                    total_entries += after["entries_scanned"] - before["entries_scanned"]
                    for child_id in children:
                        if query.edge_type(child_id) is EdgeType.CHILD:
                            payloads[child_id] = ("pc", parent_data_set)
                        elif index is not None:
                            payloads[child_id] = (
                                "ad",
                                (contour_data, parent_components),
                            )
                        else:
                            payloads[child_id] = ("ad-generic", parent_components)
                for child_id in children:
                    candidates = refined[child_id]
                    if not parent_nodes or not candidates:
                        refined[child_id] = []
                        finalized.add(child_id)
                        continue
                    kind, payload = payloads[child_id]
                    shards = [
                        shard
                        for shard in self._partition.split(
                            candidates, self._shard_count(len(candidates))
                        )
                        if shard
                    ]
                    shards.sort(key=len, reverse=True)  # LPT
                    runs[child_id] = _NodeRun(
                        started=time.perf_counter(),
                        input_size=len(candidates),
                        pending=len(shards),
                        shards=len(shards),
                    )
                    for shard in shards:
                        pump.add(
                            child_id,
                            lambda shard=shard, kind=kind, payload=payload: (
                                self._submit_upward(pool, kind, shard, payload)
                            ),
                        )
                    stats.parallel_upward_tasks += len(shards)
                    tasks += len(shards)
            pump.fill(stolen=False)
            if not pump.in_flight:
                if pending_parents and not ready:  # pragma: no cover
                    raise RuntimeError("upward frontier stalled (query is not a tree?)")
                continue
            done, _ = wait(pump.in_flight, return_when=FIRST_COMPLETED)
            for future in sorted(done, key=lambda f: pump.in_flight[f]):
                child_id = pump.in_flight.pop(future)
                run = runs[child_id]
                survivors, lookups, entries, raw_label = future.result()
                run.shard_results.append(survivors)
                run.lookups += lookups
                run.entries += entries
                labels.count(stats, raw_label)
                run.pending -= 1
                if run.pending == 0:
                    refined[child_id] = merge_survivors(run.shard_results)
                    finalized.add(child_id)
                    total_lookups += run.lookups
                    total_entries += run.entries
            pump.fill(stolen=True)
        state.down = refined
        return tasks, total_lookups, total_entries

    def _submit_upward(self, pool, kind, shard, payload) -> Future:
        if self.backend == "process":
            return pool.submit(_process_upward_task, kind, shard, payload)
        if self.backend == "thread":
            graph, reach = self.engine.graph, self.engine.reachability
            return pool.submit(
                lambda: (
                    *_run_upward_shard(graph, reach, kind, shard, payload),
                    threading.current_thread().name,
                )
            )
        future: Future = Future()
        future.set_result(
            (
                *_run_upward_shard(
                    self.engine.graph, self.engine.reachability, kind, shard, payload
                ),
                "serial",
            )
        )
        return future

    # ------------------------------------------------------------------
    # Batch-wide frontier over a shared-plan DAG
    # ------------------------------------------------------------------
    def materialize_dag(
        self,
        batch: BatchPlan,
        stats_by_plan: list[EvaluationStats],
        *,
        candidate_provider=None,
        subtree_cache: LRUCache | None = None,
        candidate_counters: CacheCounters | None = None,
    ) -> dict[str, tuple[int, ...]]:
        """Concurrent counterpart of ``SharedExecutor._materialize_dag``.

        The DAG's topological order becomes a batch-wide frontier:
        subtrees whose child fingerprints are materialized dispatch
        concurrently, across queries.  Cache probes, candidate fetches
        and stats attribution mirror the serial path — work is charged
        to each subtree's exemplar query.
        """
        self._check_fresh()
        down: dict[str, tuple[int, ...]] = {}
        if not batch.dag.subtrees:
            return down
        pending = []
        for subtree in batch.dag.subtrees:
            stats = stats_by_plan[subtree.exemplar[0]]
            if subtree_cache is not None:
                cached = subtree_cache.get(subtree.fingerprint)
                if cached is not None:
                    stats.subtree_cache_hits += 1
                    down[subtree.fingerprint] = cached
                    continue
                stats.subtree_cache_misses += 1
            pending.append(subtree)
        if not pending:
            return down
        subtree_by_fp = {subtree.fingerprint: subtree for subtree in pending}

        pool = self._ensure_pool()
        engine = self.engine
        contexts: dict[int, PruningContext] = {}
        contours: dict[str, dict | None] = {}  # child fingerprint -> contour data
        query_jsons: dict[int, str] = {}
        remaining = {subtree.fingerprint: subtree for subtree in pending}
        in_flight: dict[Future, str] = {}
        runs: dict[str, _NodeRun] = {}
        workers = _WorkerLabels()

        def dispatch(subtree) -> None:
            position, node_id = subtree.exemplar
            stats = stats_by_plan[position]
            stats.parallel_workers = max(stats.parallel_workers, self.workers)
            plan = batch.plans[position]
            query = plan.query
            context = contexts.get(position)
            if context is None:
                context = PruningContext(engine.graph, query, engine.reachability)
                contexts[position] = context
            started = time.perf_counter()
            with stats.record_candidate_cache(candidate_counters):
                with stats.time_phase("candidates"):
                    if candidate_provider is not None:
                        candidates = list(candidate_provider(query, node_id))
                    else:
                        candidates = candidate_nodes(engine.graph, query, node_id)
            stats.candidates_initial[node_id] = len(candidates)
            stats.input_nodes += len(candidates)

            children = query.children[node_id]
            fingerprints = batch.dag.node_fingerprints[position]
            refined_children = {
                child_id: list(down[fingerprints[child_id]]) for child_id in children
            }
            if not children or not candidates:
                # Leaf or empty set: inline.  An empty set refines to the
                # empty set without a Procedure-6 visit (the visit would
                # read child contours this driver never installs).
                before = context.reach.counters.snapshot()
                if candidates:
                    survivors = downward_step(context, node_id, candidates, refined_children)
                else:
                    survivors = []
                after = context.reach.counters.snapshot()
                run = _NodeRun(
                    started=started,
                    input_size=len(candidates),
                    pending=0,
                    shards=0,
                    shard_results=[survivors],
                    lookups=after["lookups"] - before["lookups"],
                    entries=after["entries_scanned"] - before["entries_scanned"],
                )
                finalize(subtree, run)
                return

            contour_data, contour_lookups, contour_entries = self._dag_contours(
                context, query, node_id, subtree, contours, down
            )
            run = _NodeRun(
                started=started,
                input_size=len(candidates),
                pending=0,
                shards=0,
                lookups=contour_lookups,
                entries=contour_entries,
            )
            shard_count = self._shard_count(len(candidates))
            query_json = None
            if self.backend == "process":
                query_json = query_jsons.get(position)
                if query_json is None:
                    query_json = query_to_json(query)
                    query_jsons[position] = query_json
            probe_cache = self._wave_cache()
            for shard in self._partition.split(candidates, shard_count):
                if not shard:
                    continue
                future = self._submit(
                    pool, query, query_json, node_id, shard, refined_children,
                    contour_data, probe_cache,
                )
                run.pending += 1
                run.shards += 1
                in_flight[future] = subtree.fingerprint
            stats.parallel_shard_tasks += run.shards
            runs[subtree.fingerprint] = run

        def finalize(subtree, run: _NodeRun) -> None:
            position, node_id = subtree.exemplar
            stats = stats_by_plan[position]
            survivors = merge_survivors(run.shard_results)
            down[subtree.fingerprint] = tuple(survivors)
            if subtree_cache is not None:
                subtree_cache.put(subtree.fingerprint, down[subtree.fingerprint])
            elapsed = time.perf_counter() - run.started
            stats.phase_seconds["prune_downward"] = (
                stats.phase_seconds.get("prune_downward", 0.0) + elapsed
            )
            stats.downward_prune_ops += 1
            stats.index_lookups += run.lookups
            stats.index_entries += run.entries
            stats.operator_stats.append(
                OperatorStats(
                    op="DownwardPrune",
                    target=node_id,
                    input_size=run.input_size,
                    output_size=len(survivors),
                    seconds=elapsed,
                    index_lookups=run.lookups,
                    index_entries=run.entries,
                    note="shared-parallel"
                    + (f" x{run.shards}" if run.shards else " inline"),
                )
            )

        while remaining or in_flight:
            eligible = [
                subtree
                for fingerprint, subtree in sorted(remaining.items())
                if all(child in down for child in subtree.children)
            ]
            for subtree in eligible:
                del remaining[subtree.fingerprint]
                dispatch(subtree)
            if not in_flight:
                if remaining and not eligible:  # pragma: no cover
                    raise RuntimeError("shared-plan DAG frontier stalled")
                continue
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in sorted(done, key=lambda f: in_flight[f]):
                fingerprint = in_flight.pop(future)
                subtree = subtree_by_fp[fingerprint]
                run = runs[fingerprint]
                survivors, lookups, entries, raw_label = future.result()
                run.shard_results.append(survivors)
                run.lookups += lookups
                run.entries += entries
                workers.count(stats_by_plan[subtree.exemplar[0]], raw_label)
                run.pending -= 1
                if run.pending == 0:
                    finalize(subtree, run)
        return down

    # ------------------------------------------------------------------
    # Dispatch helpers
    # ------------------------------------------------------------------
    def _shard_count(self, num_candidates: int) -> int:
        by_size = -(-num_candidates // self.min_shard_size)  # ceil
        return max(1, min(self.num_shards, by_size))

    def _dispatch_node(self, state, node_id, pool, query_json, pump: _TaskPump, runs) -> None:
        stats, query = state.stats, state.query
        candidates = state.mats[node_id]
        children = query.children[node_id]
        started = time.perf_counter()
        context = state.context
        if not children or not candidates:
            # Leaf (constant-fext) or empty set: inline, like the serial
            # op.  An empty set refines to the empty set without a
            # Procedure-6 visit (the visit would read child contours this
            # driver never installs).
            before = context.reach.counters.snapshot()
            if candidates:
                refined_children = {child: state.down[child] for child in children}
                survivors = downward_step(context, node_id, list(candidates), refined_children)
            else:
                survivors = []
            after = context.reach.counters.snapshot()
            run = _NodeRun(
                started=started,
                input_size=len(candidates),
                pending=0,
                shards=0,
                shard_results=[survivors],
                lookups=after["lookups"] - before["lookups"],
                entries=after["entries_scanned"] - before["entries_scanned"],
            )
            backbone = {n for n in query.nodes if query.nodes[n].is_backbone}
            self._finalize_node(state, node_id, run, backbone, note="parallel inline")
            return

        before = context.reach.counters.snapshot()
        contour_data = None
        if context.index is not None:
            data = {}
            for child_id in children:
                if query.edge_type(child_id) is EdgeType.DESCENDANT:
                    contour = build_pred_contour(context, state.down[child_id])
                    data[child_id] = contour.data
            contour_data = data or None
        after = context.reach.counters.snapshot()
        refined_children = {child: state.down[child] for child in children}
        run = _NodeRun(
            started=started,
            input_size=len(candidates),
            pending=0,
            shards=0,
            lookups=after["lookups"] - before["lookups"],
            entries=after["entries_scanned"] - before["entries_scanned"],
        )
        probe_cache = self._wave_cache()
        shards = [
            shard
            for shard in self._partition.split(candidates, self._shard_count(len(candidates)))
            if shard
        ]
        # LPT: queue the skewed shard first so it starts as early as
        # possible when stealing caps the in-flight count.
        shards.sort(key=len, reverse=True)
        for shard in shards:
            pump.add(
                node_id,
                lambda shard=shard: self._submit(
                    pool, query, query_json, node_id, shard, refined_children,
                    contour_data, probe_cache,
                ),
            )
            run.pending += 1
            run.shards += 1
        stats.parallel_shard_tasks += run.shards
        runs[node_id] = run

    def _wave_cache(self):
        """A per-wave :class:`~repro.graph.partition.ContourProbeCache`.

        Only the thread and serial backends share driver memory with
        their tasks; process workers get no cache."""
        return None if self.backend == "process" else self._partition.wave_cache()

    def _submit(
        self, pool, query, query_json, node_id, shard, refined_children, contour_data,
        probe_cache=None,
    ) -> Future:
        if self.backend == "process":
            return pool.submit(
                _process_shard_task, query_json, node_id, shard, refined_children, contour_data
            )
        if self.backend == "thread":
            graph, reach = self.engine.graph, self.engine.reachability
            return pool.submit(
                lambda: (
                    *_run_shard(
                        graph, reach, query, node_id, shard, refined_children, contour_data,
                        probe_cache,
                    ),
                    threading.current_thread().name,
                )
            )
        future: Future = Future()
        future.set_result(
            (
                *_run_shard(
                    self.engine.graph,
                    self.engine.reachability,
                    query,
                    node_id,
                    shard,
                    refined_children,
                    contour_data,
                    probe_cache,
                ),
                "serial",
            )
        )
        return future

    def _finalize_node(self, state, node_id, run: _NodeRun, backbone, note: str) -> None:
        stats = state.stats
        survivors = merge_survivors(run.shard_results)
        state.down[node_id] = survivors
        stats.candidates_after_downward[node_id] = len(survivors)
        stats.downward_prune_ops += 1
        stats.index_lookups += run.lookups
        stats.index_entries += run.entries
        record = OperatorStats(
            op="DownwardPrune",
            target=node_id,
            input_size=run.input_size,
            output_size=len(survivors),
            seconds=time.perf_counter() - run.started,
            index_lookups=run.lookups,
            index_entries=run.entries,
            note=note + (f" x{run.shards}" if run.shards else ""),
        )
        stats.operator_stats.append(record)
        if node_id in backbone and not survivors:
            # Every match embeds every backbone node (same argument as
            # the adaptive early exit): the answer is already empty.
            record.note += " early-exit"
            state.finish_empty()

    def _dag_contours(self, context, query, node_id, subtree, contours, down):
        """AD-child contour data for one DAG dispatch, cached per child
        fingerprint (a contour depends only on the child's survivor set,
        which the fingerprint identifies across the whole batch)."""
        if context.index is None:
            return None, 0, 0
        before = context.reach.counters.snapshot()
        fingerprints = dict(zip(query.children[node_id], subtree.children))
        data = {}
        for child_id in query.children[node_id]:
            if query.edge_type(child_id) is not EdgeType.DESCENDANT:
                continue
            child_fp = fingerprints[child_id]
            cached = contours.get(child_fp)
            if cached is None:
                cached = build_pred_contour(context, list(down[child_fp])).data
                contours[child_fp] = cached
            data[child_id] = cached
        after = context.reach.counters.snapshot()
        return (
            data or None,
            after["lookups"] - before["lookups"],
            after["entries_scanned"] - before["entries_scanned"],
        )


class _WorkerLabels:
    """Normalizes raw worker labels to ``w0``, ``w1``, ... per execution."""

    def __init__(self):
        self._labels: dict[str, str] = {}

    def count(self, stats: EvaluationStats, raw_label: str) -> None:
        label = self._labels.get(raw_label)
        if label is None:
            label = f"w{len(self._labels)}"
            self._labels[raw_label] = label
        stats.parallel_worker_tasks[label] = stats.parallel_worker_tasks.get(label, 0) + 1
