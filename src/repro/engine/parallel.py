"""Sharded, concurrent prune execution across a worker pool.

The downward prune phase is the natural parallelism seam of the GTEA
pipeline: once a node's children are refined, its Procedure-6 visit
(:func:`repro.engine.prune.downward_step`) evaluates ``fext``
independently per candidate, and nodes on disjoint subtrees have no
data dependencies at all.  :class:`ParallelExecutor` exploits both axes
without modifying the operators themselves:

* **frontier dispatch** — the eligibility set of the adaptive scheduler
  (nodes whose children are all refined) becomes a dispatch frontier;
  every eligible node's prune is launched concurrently;
* **candidate sharding** — each node's candidate set is split by a
  :class:`repro.graph.partition.GraphPartition` into shards refined as
  independent pool tasks, and the shard survivor sets are merged with
  :func:`repro.graph.partition.merge_survivors` (sorted by node id)
  before :class:`~repro.engine.operators.UpwardPrune` runs — so a
  sharded run is byte-identical to a single-shard run in results and
  survivor sets.

Three backends: ``"process"`` (a fork-started
:class:`~concurrent.futures.ProcessPoolExecutor`; workers inherit the
graph and the built reachability index by memory, tasks ship only the
query JSON, the candidate shard, the refined child sets and the contour
data), ``"thread"`` (in-process pool; real concurrency is GIL-bound but
the dispatch machinery is identical), and ``"serial"`` (inline
execution through the same code path — the deterministic reference the
oracle harness compares against).  ``"auto"`` picks ``"process"`` where
fork is available.

The driver keeps :class:`~repro.engine.operators.CandidateScan` and the
suffix operators (UpwardPrune → BuildMatchingGraph → CollectResults) on
the plan's ordinary pipeline; only the downward phase is farmed out.
Leaf nodes and empty candidate sets are refined inline (their prune is
O(set size) with no index work — not worth a task).  Like the adaptive
scheduler, the driver short-circuits to the empty answer as soon as a
backbone node's merged survivor set comes back empty.

Index-probe attribution is exact under the ``"serial"`` and
``"process"`` backends (per-task counter deltas; process workers are
single-threaded).  The ``"thread"`` backend shares one counter set
across concurrent tasks, so per-record attribution there is
approximate.  Probe *counts* legitimately differ from the serial
executor — per-shard chain scans and per-shard memoization repeat work
the single-shard pass shares — while results and survivor sets do not.

Batch workloads go through :meth:`ParallelExecutor.materialize_dag`:
the topological order of a :class:`~repro.plan.shared.SharedPlanDAG`
becomes a batch-wide frontier (subtrees whose child fingerprints are
materialized dispatch concurrently), with the same cache and stats
bookkeeping as the serial :class:`~repro.engine.shared.SharedExecutor`.

Wire-up: ``QuerySession(parallel=...)`` accepts a worker count or a
:class:`ParallelOptions` and routes GTEA-executor plans here, both for
:meth:`~repro.engine.session.QuerySession.evaluate` and for the shared
batch path of :meth:`~repro.engine.session.QuerySession.evaluate_many`.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass, field

from ..graph.partition import GraphPartition, merge_survivors
from ..plan.compile import CompiledPlan
from ..plan.shared import BatchPlan
from ..query.gtpq import EdgeType
from ..query.naive import candidate_nodes
from ..query.serialize import query_from_json, query_to_json
from ..reachability.contour import Contour
from .cache import CacheCounters, LRUCache
from .operators import (
    BuildMatchingGraph,
    CandidateScan,
    CollectResults,
    ExecutionState,
    OperatorStats,
    UpwardPrune,
    run_pipeline,
)
from .prune import PruningContext, build_pred_contour, downward_step
from .results import ResultSet
from .stats import EvaluationStats

#: backends :class:`ParallelOptions` accepts.
BACKENDS = ("auto", "process", "thread", "serial")


@dataclass(frozen=True)
class ParallelOptions:
    """Configuration of one :class:`ParallelExecutor`.

    Attributes:
        workers: pool size (and the default shard count).
        backend: one of :data:`BACKENDS`; ``"auto"`` resolves to
            ``"process"`` where fork is available, else ``"thread"``.
        shards: shards per downward prune (defaults to ``workers``).
        strategy: candidate routing strategy of
            :class:`~repro.graph.partition.GraphPartition`.
        min_shard_size: candidates required per shard before a node's
            set is split further — small sets run as one task.
    """

    workers: int = 2
    backend: str = "auto"
    shards: int | None = None
    strategy: str = "hash"
    min_shard_size: int = 16


def _resolve_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(f"unknown parallel backend {backend!r}; expected one of {BACKENDS}")
    if backend != "auto":
        return backend
    import multiprocessing

    return "process" if "fork" in multiprocessing.get_all_start_methods() else "thread"


# ----------------------------------------------------------------------
# Shard tasks.  One task = one (query node, candidate shard) refinement;
# the function is backend-agnostic and the process backend wraps it with
# fork-inherited graph/index state.
# ----------------------------------------------------------------------
def _run_shard(graph, reach, query, node_id, candidates, refined_children, contour_data):
    """Refine one candidate shard; returns (survivors, lookups, entries).

    ``contour_data`` carries the raw per-chain maps of the AD children's
    predecessor contours (3-hop index only); the task rebuilds
    :class:`~repro.reachability.contour.Contour` objects around them so
    :func:`~repro.engine.prune.downward_step` sees exactly the state the
    serial :class:`~repro.engine.operators.DownwardPrune` operator would.
    """
    before = reach.counters.snapshot()
    context = PruningContext(graph, query, reach)
    if contour_data:
        for child_id, data in contour_data.items():
            context.pred_contours[child_id] = Contour(dict(data))
    survivors = downward_step(context, node_id, list(candidates), refined_children)
    after = reach.counters.snapshot()
    return (
        survivors,
        after["lookups"] - before["lookups"],
        after["entries_scanned"] - before["entries_scanned"],
    )


#: fork-inherited per-process state of the process backend's workers.
_WORKER_STATE: dict = {}


def _init_process_worker(graph, reach) -> None:
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["reach"] = reach
    _WORKER_STATE["queries"] = {}


def _process_shard_task(query_json, node_id, candidates, refined_children, contour_data):
    queries = _WORKER_STATE["queries"]
    query = queries.get(query_json)
    if query is None:
        if len(queries) >= 256:
            queries.clear()
        query = query_from_json(query_json)
        queries[query_json] = query
    survivors, lookups, entries = _run_shard(
        _WORKER_STATE["graph"],
        _WORKER_STATE["reach"],
        query,
        node_id,
        candidates,
        refined_children,
        contour_data,
    )
    return survivors, lookups, entries, f"pid:{os.getpid()}"


@dataclass
class _NodeRun:
    """Driver-side bookkeeping of one in-flight downward prune."""

    started: float
    input_size: int
    pending: int  #: shard tasks still outstanding.
    shards: int  #: shard tasks dispatched.
    shard_results: list = field(default_factory=list)
    lookups: int = 0  #: contour-build probes plus worker deltas.
    entries: int = 0


class ParallelExecutor:
    """Sharded, concurrent driver for the downward prune phase.

    Pinned to one engine *and* one graph version: the process backend's
    workers fork with the graph and the built reachability index in
    memory, so a mutated graph requires a fresh executor (the session
    layer rebuilds its executors on invalidation).  Use as a context
    manager, or call :meth:`close` to release the pool.
    """

    def __init__(
        self,
        engine,
        workers: int = 2,
        *,
        backend: str = "auto",
        shards: int | None = None,
        strategy: str = "hash",
        min_shard_size: int = 16,
    ):
        self.engine = engine
        self.workers = max(1, int(workers))
        self.backend = _resolve_backend(backend)
        self.num_shards = max(1, int(shards) if shards is not None else self.workers)
        self.min_shard_size = max(1, int(min_shard_size))
        self._partition = GraphPartition.for_graph(engine.graph, self.num_shards, strategy)
        self._graph_version = engine.graph.version
        self._pool: ProcessPoolExecutor | ThreadPoolExecutor | None = None

    @classmethod
    def from_options(cls, engine, options: ParallelOptions) -> "ParallelExecutor":
        return cls(
            engine,
            options.workers,
            backend=options.backend,
            shards=options.shards,
            strategy=options.strategy,
            min_shard_size=options.min_shard_size,
        )

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self.backend == "serial":
            return None
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-prune"
                )
            else:
                import multiprocessing

                # Force the index before forking so workers inherit it
                # built — tasks must never rebuild it per process.
                reach = self.engine.reachability
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context("fork"),
                    initializer=_init_process_worker,
                    initargs=(self.engine.graph, reach),
                )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_fresh(self) -> None:
        if self.engine.graph.version != self._graph_version:
            raise RuntimeError(
                "ParallelExecutor is pinned to graph version "
                f"{self._graph_version}, but the graph is now at version "
                f"{self.engine.graph.version}; create a fresh executor"
            )

    # ------------------------------------------------------------------
    # Single-plan execution
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: CompiledPlan,
        group_nodes: tuple[str, ...] = (),
        candidate_provider=None,
        stats: EvaluationStats | None = None,
    ) -> tuple[ResultSet, EvaluationStats]:
        """Run a compiled plan with a sharded downward phase.

        Plans routed away from GTEA (unsatisfiable, baseline) and group
        evaluations (which run the original query) delegate to the
        engine's serial pipeline unchanged.
        """
        if stats is None:
            stats = EvaluationStats()
        self._check_fresh()
        if plan.physical.executor != "gtea" or group_nodes:
            return self.engine.execute(
                plan,
                group_nodes=group_nodes,
                candidate_provider=candidate_provider,
                stats=stats,
            )
        state = ExecutionState(
            self.engine, plan.query, stats, candidate_provider=candidate_provider
        )
        run_pipeline(state, [CandidateScan()])
        stats.parallel_workers = max(stats.parallel_workers, self.workers)
        if not state.finished:
            self._prune_frontier(state)
        if not state.finished:
            run_pipeline(state, [UpwardPrune(), BuildMatchingGraph(), CollectResults()])
        return state.answer, stats

    def _prune_frontier(self, state: ExecutionState) -> None:
        """Dispatch every eligible downward prune until all nodes refine."""
        stats, query = state.stats, state.query
        pool = self._ensure_pool()
        query_json = query_to_json(query) if self.backend == "process" else None
        backbone = {n for n in query.nodes if query.nodes[n].is_backbone}
        remaining = set(query.nodes)
        in_flight: dict[Future, str] = {}
        runs: dict[str, _NodeRun] = {}
        workers = _WorkerLabels()
        with stats.time_phase("prune_downward"):
            while (remaining or in_flight) and not state.finished:
                eligible = sorted(
                    node_id
                    for node_id in remaining
                    if all(child in state.down for child in query.children[node_id])
                )
                for node_id in eligible:
                    remaining.discard(node_id)
                    self._dispatch_node(state, node_id, pool, query_json, in_flight, runs)
                    if state.finished:
                        break
                if state.finished or not in_flight:
                    if remaining and not in_flight and not eligible:  # pragma: no cover
                        raise RuntimeError("downward frontier stalled (query is not a tree?)")
                    continue
                done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in sorted(done, key=lambda f: in_flight[f]):
                    node_id = in_flight.pop(future)
                    run = runs[node_id]
                    survivors, lookups, entries, raw_label = future.result()
                    run.shard_results.append(survivors)
                    run.lookups += lookups
                    run.entries += entries
                    workers.count(stats, raw_label)
                    run.pending -= 1
                    if run.pending == 0:
                        self._finalize_node(state, node_id, run, backbone, note="parallel")
                        if state.finished:
                            break
        if in_flight:  # early exit with outstanding shards: drain the pool
            for future in in_flight:
                future.cancel()
            wait(list(in_flight))

    # ------------------------------------------------------------------
    # Batch-wide frontier over a shared-plan DAG
    # ------------------------------------------------------------------
    def materialize_dag(
        self,
        batch: BatchPlan,
        stats_by_plan: list[EvaluationStats],
        *,
        candidate_provider=None,
        subtree_cache: LRUCache | None = None,
        candidate_counters: CacheCounters | None = None,
    ) -> dict[str, tuple[int, ...]]:
        """Concurrent counterpart of ``SharedExecutor._materialize_dag``.

        The DAG's topological order becomes a batch-wide frontier:
        subtrees whose child fingerprints are materialized dispatch
        concurrently, across queries.  Cache probes, candidate fetches
        and stats attribution mirror the serial path — work is charged
        to each subtree's exemplar query.
        """
        self._check_fresh()
        down: dict[str, tuple[int, ...]] = {}
        if not batch.dag.subtrees:
            return down
        pending = []
        for subtree in batch.dag.subtrees:
            stats = stats_by_plan[subtree.exemplar[0]]
            if subtree_cache is not None:
                cached = subtree_cache.get(subtree.fingerprint)
                if cached is not None:
                    stats.subtree_cache_hits += 1
                    down[subtree.fingerprint] = cached
                    continue
                stats.subtree_cache_misses += 1
            pending.append(subtree)
        if not pending:
            return down
        subtree_by_fp = {subtree.fingerprint: subtree for subtree in pending}

        pool = self._ensure_pool()
        engine = self.engine
        contexts: dict[int, PruningContext] = {}
        contours: dict[str, dict | None] = {}  # child fingerprint -> contour data
        query_jsons: dict[int, str] = {}
        remaining = {subtree.fingerprint: subtree for subtree in pending}
        in_flight: dict[Future, str] = {}
        runs: dict[str, _NodeRun] = {}
        workers = _WorkerLabels()

        def dispatch(subtree) -> None:
            position, node_id = subtree.exemplar
            stats = stats_by_plan[position]
            stats.parallel_workers = max(stats.parallel_workers, self.workers)
            plan = batch.plans[position]
            query = plan.query
            context = contexts.get(position)
            if context is None:
                context = PruningContext(engine.graph, query, engine.reachability)
                contexts[position] = context
            started = time.perf_counter()
            with stats.record_candidate_cache(candidate_counters):
                with stats.time_phase("candidates"):
                    if candidate_provider is not None:
                        candidates = list(candidate_provider(query, node_id))
                    else:
                        candidates = candidate_nodes(engine.graph, query, node_id)
            stats.candidates_initial[node_id] = len(candidates)
            stats.input_nodes += len(candidates)

            children = query.children[node_id]
            fingerprints = batch.dag.node_fingerprints[position]
            refined_children = {
                child_id: list(down[fingerprints[child_id]]) for child_id in children
            }
            if not children or not candidates:
                # Leaf or empty set: inline.  An empty set refines to the
                # empty set without a Procedure-6 visit (the visit would
                # read child contours this driver never installs).
                before = context.reach.counters.snapshot()
                if candidates:
                    survivors = downward_step(context, node_id, candidates, refined_children)
                else:
                    survivors = []
                after = context.reach.counters.snapshot()
                run = _NodeRun(
                    started=started,
                    input_size=len(candidates),
                    pending=0,
                    shards=0,
                    shard_results=[survivors],
                    lookups=after["lookups"] - before["lookups"],
                    entries=after["entries_scanned"] - before["entries_scanned"],
                )
                finalize(subtree, run)
                return

            contour_data, contour_lookups, contour_entries = self._dag_contours(
                context, query, node_id, subtree, contours, down
            )
            run = _NodeRun(
                started=started,
                input_size=len(candidates),
                pending=0,
                shards=0,
                lookups=contour_lookups,
                entries=contour_entries,
            )
            shard_count = self._shard_count(len(candidates))
            query_json = None
            if self.backend == "process":
                query_json = query_jsons.get(position)
                if query_json is None:
                    query_json = query_to_json(query)
                    query_jsons[position] = query_json
            for shard in self._partition.split(candidates, shard_count):
                if not shard:
                    continue
                future = self._submit(
                    pool, query, query_json, node_id, shard, refined_children, contour_data
                )
                run.pending += 1
                run.shards += 1
                in_flight[future] = subtree.fingerprint
            stats.parallel_shard_tasks += run.shards
            runs[subtree.fingerprint] = run

        def finalize(subtree, run: _NodeRun) -> None:
            position, node_id = subtree.exemplar
            stats = stats_by_plan[position]
            survivors = merge_survivors(run.shard_results)
            down[subtree.fingerprint] = tuple(survivors)
            if subtree_cache is not None:
                subtree_cache.put(subtree.fingerprint, down[subtree.fingerprint])
            elapsed = time.perf_counter() - run.started
            stats.phase_seconds["prune_downward"] = (
                stats.phase_seconds.get("prune_downward", 0.0) + elapsed
            )
            stats.downward_prune_ops += 1
            stats.index_lookups += run.lookups
            stats.index_entries += run.entries
            stats.operator_stats.append(
                OperatorStats(
                    op="DownwardPrune",
                    target=node_id,
                    input_size=run.input_size,
                    output_size=len(survivors),
                    seconds=elapsed,
                    index_lookups=run.lookups,
                    index_entries=run.entries,
                    note="shared-parallel"
                    + (f" x{run.shards}" if run.shards else " inline"),
                )
            )

        while remaining or in_flight:
            eligible = [
                subtree
                for fingerprint, subtree in sorted(remaining.items())
                if all(child in down for child in subtree.children)
            ]
            for subtree in eligible:
                del remaining[subtree.fingerprint]
                dispatch(subtree)
            if not in_flight:
                if remaining and not eligible:  # pragma: no cover
                    raise RuntimeError("shared-plan DAG frontier stalled")
                continue
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in sorted(done, key=lambda f: in_flight[f]):
                fingerprint = in_flight.pop(future)
                subtree = subtree_by_fp[fingerprint]
                run = runs[fingerprint]
                survivors, lookups, entries, raw_label = future.result()
                run.shard_results.append(survivors)
                run.lookups += lookups
                run.entries += entries
                workers.count(stats_by_plan[subtree.exemplar[0]], raw_label)
                run.pending -= 1
                if run.pending == 0:
                    finalize(subtree, run)
        return down

    # ------------------------------------------------------------------
    # Dispatch helpers
    # ------------------------------------------------------------------
    def _shard_count(self, num_candidates: int) -> int:
        by_size = -(-num_candidates // self.min_shard_size)  # ceil
        return max(1, min(self.num_shards, by_size))

    def _dispatch_node(self, state, node_id, pool, query_json, in_flight, runs) -> None:
        stats, query = state.stats, state.query
        candidates = state.mats[node_id]
        children = query.children[node_id]
        started = time.perf_counter()
        context = state.context
        if not children or not candidates:
            # Leaf (constant-fext) or empty set: inline, like the serial
            # op.  An empty set refines to the empty set without a
            # Procedure-6 visit (the visit would read child contours this
            # driver never installs).
            before = context.reach.counters.snapshot()
            if candidates:
                refined_children = {child: state.down[child] for child in children}
                survivors = downward_step(context, node_id, list(candidates), refined_children)
            else:
                survivors = []
            after = context.reach.counters.snapshot()
            run = _NodeRun(
                started=started,
                input_size=len(candidates),
                pending=0,
                shards=0,
                shard_results=[survivors],
                lookups=after["lookups"] - before["lookups"],
                entries=after["entries_scanned"] - before["entries_scanned"],
            )
            backbone = {n for n in query.nodes if query.nodes[n].is_backbone}
            self._finalize_node(state, node_id, run, backbone, note="parallel inline")
            return

        before = context.reach.counters.snapshot()
        contour_data = None
        if context.index is not None:
            data = {}
            for child_id in children:
                if query.edge_type(child_id) is EdgeType.DESCENDANT:
                    contour = build_pred_contour(context, state.down[child_id])
                    data[child_id] = contour.data
            contour_data = data or None
        after = context.reach.counters.snapshot()
        refined_children = {child: state.down[child] for child in children}
        run = _NodeRun(
            started=started,
            input_size=len(candidates),
            pending=0,
            shards=0,
            lookups=after["lookups"] - before["lookups"],
            entries=after["entries_scanned"] - before["entries_scanned"],
        )
        for shard in self._partition.split(candidates, self._shard_count(len(candidates))):
            if not shard:
                continue
            future = self._submit(
                pool, query, query_json, node_id, shard, refined_children, contour_data
            )
            run.pending += 1
            run.shards += 1
            in_flight[future] = node_id
        stats.parallel_shard_tasks += run.shards
        runs[node_id] = run

    def _submit(
        self, pool, query, query_json, node_id, shard, refined_children, contour_data
    ) -> Future:
        if self.backend == "process":
            return pool.submit(
                _process_shard_task, query_json, node_id, shard, refined_children, contour_data
            )
        if self.backend == "thread":
            graph, reach = self.engine.graph, self.engine.reachability
            return pool.submit(
                lambda: (
                    *_run_shard(
                        graph, reach, query, node_id, shard, refined_children, contour_data
                    ),
                    threading.current_thread().name,
                )
            )
        future: Future = Future()
        future.set_result(
            (
                *_run_shard(
                    self.engine.graph,
                    self.engine.reachability,
                    query,
                    node_id,
                    shard,
                    refined_children,
                    contour_data,
                ),
                "serial",
            )
        )
        return future

    def _finalize_node(self, state, node_id, run: _NodeRun, backbone, note: str) -> None:
        stats = state.stats
        survivors = merge_survivors(run.shard_results)
        state.down[node_id] = survivors
        stats.candidates_after_downward[node_id] = len(survivors)
        stats.downward_prune_ops += 1
        stats.index_lookups += run.lookups
        stats.index_entries += run.entries
        record = OperatorStats(
            op="DownwardPrune",
            target=node_id,
            input_size=run.input_size,
            output_size=len(survivors),
            seconds=time.perf_counter() - run.started,
            index_lookups=run.lookups,
            index_entries=run.entries,
            note=note + (f" x{run.shards}" if run.shards else ""),
        )
        stats.operator_stats.append(record)
        if node_id in backbone and not survivors:
            # Every match embeds every backbone node (same argument as
            # the adaptive early exit): the answer is already empty.
            record.note += " early-exit"
            state.finish_empty()

    def _dag_contours(self, context, query, node_id, subtree, contours, down):
        """AD-child contour data for one DAG dispatch, cached per child
        fingerprint (a contour depends only on the child's survivor set,
        which the fingerprint identifies across the whole batch)."""
        if context.index is None:
            return None, 0, 0
        before = context.reach.counters.snapshot()
        fingerprints = dict(zip(query.children[node_id], subtree.children))
        data = {}
        for child_id in query.children[node_id]:
            if query.edge_type(child_id) is not EdgeType.DESCENDANT:
                continue
            child_fp = fingerprints[child_id]
            cached = contours.get(child_fp)
            if cached is None:
                cached = build_pred_contour(context, list(down[child_fp])).data
                contours[child_fp] = cached
            data[child_id] = cached
        after = context.reach.counters.snapshot()
        return (
            data or None,
            after["lookups"] - before["lookups"],
            after["entries_scanned"] - before["entries_scanned"],
        )


class _WorkerLabels:
    """Normalizes raw worker labels to ``w0``, ``w1``, ... per execution."""

    def __init__(self):
        self._labels: dict[str, str] = {}

    def count(self, stats: EvaluationStats, raw_label: str) -> None:
        label = self._labels.get(raw_label)
        if label is None:
            label = f"w{len(self._labels)}"
            self._labels[raw_label] = label
        stats.parallel_worker_tasks[label] = stats.parallel_worker_tasks.get(label, 0) + 1
