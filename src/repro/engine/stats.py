"""Evaluation statistics — the I/O metrics of Appendix C.1 (Fig. 10).

Three headline numbers per evaluation:

* ``input_nodes`` (#input) — data nodes fetched as candidate matches;
* ``index_entries`` (#index) — elements retrieved from index lists;
* ``intermediate_cost`` (#intermediate_results) — for GTEA, twice the node
  plus edge count of the maximal matching graph (paper's definition).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class EvaluationStats:
    """Counters and phase timings collected during one evaluation."""

    input_nodes: int = 0
    index_lookups: int = 0
    index_entries: int = 0
    matching_graph_nodes: int = 0
    matching_graph_edges: int = 0
    #: tuple-shaped intermediates (path solutions, join results) — used by
    #: the baseline algorithms; GTEA keeps this at zero.
    intermediate_tuples: int = 0
    result_count: int = 0
    candidates_initial: dict[str, int] = field(default_factory=dict)
    candidates_after_downward: dict[str, int] = field(default_factory=dict)
    candidates_after_upward: dict[str, int] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def intermediate_cost(self) -> int:
        """The paper's #intermediate metric.

        Graph-shaped intermediates cost twice their node+edge count
        (GTEA); tuple-shaped intermediates cost one unit per stored tuple
        element set (baselines).
        """
        return 2 * (self.matching_graph_nodes + self.matching_graph_edges) + (
            self.intermediate_tuples
        )

    def time_phase(self, name: str):
        """Context manager accumulating wall time into ``phase_seconds``."""
        return _PhaseTimer(self, name)

    def row(self) -> dict[str, float]:
        return {
            "#input": self.input_nodes,
            "#index": self.index_entries,
            "#intermediate": self.intermediate_cost,
            "results": self.result_count,
            **{f"t_{k}": round(v, 6) for k, v in self.phase_seconds.items()},
        }


class _PhaseTimer:
    def __init__(self, stats: EvaluationStats, name: str):
        self._stats = stats
        self._name = name
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        elapsed = time.perf_counter() - self._start
        self._stats.phase_seconds[self._name] = (
            self._stats.phase_seconds.get(self._name, 0.0) + elapsed
        )
        return False
