"""Evaluation statistics — the I/O metrics of Appendix C.1 (Fig. 10).

Three headline numbers per evaluation:

* ``input_nodes`` (#input) — data nodes fetched as candidate matches;
* ``index_entries`` (#index) — elements retrieved from index lists;
* ``intermediate_cost`` (#intermediate_results) — for GTEA, twice the node
  plus edge count of the maximal matching graph (paper's definition).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class EvaluationStats:
    """Counters and phase timings collected during one evaluation."""

    input_nodes: int = 0
    index_lookups: int = 0
    index_entries: int = 0
    matching_graph_nodes: int = 0
    matching_graph_edges: int = 0
    #: tuple-shaped intermediates (path solutions, join results) — used by
    #: the baseline algorithms; GTEA keeps this at zero.
    intermediate_tuples: int = 0
    #: node-level downward refinements executed (Procedure-6 node visits;
    #: the shared batch path counts one per distinct subtree evaluated, so
    #: sharing shows up directly as a drop in this counter).
    downward_prune_ops: int = 0
    result_count: int = 0
    #: one :class:`repro.engine.operators.OperatorStats` per executed
    #: physical operator, in execution order — the observed side of the
    #: physical plan's estimated-vs-observed ``explain()`` and the raw
    #: material of :class:`repro.plan.feedback.CostProfile`.
    operator_stats: list = field(default_factory=list)
    candidates_initial: dict[str, int] = field(default_factory=dict)
    candidates_after_downward: dict[str, int] = field(default_factory=dict)
    candidates_after_upward: dict[str, int] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    # ------------------------------------------------------------------
    # Session-layer counters (repro.engine.session).  All zero when the
    # engine runs outside a QuerySession, so the paper metrics above are
    # unaffected.
    # ------------------------------------------------------------------
    #: evaluations folded into this stats object (aggregates only; a
    #: single evaluation leaves it at 0 and reads as one evaluation).
    evaluations: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    candidate_cache_hits: int = 0
    candidate_cache_misses: int = 0
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    #: shared subtree-result cache (downward-pruned candidate sets keyed
    #: by canonical subtree fingerprint, per graph version).
    subtree_cache_hits: int = 0
    subtree_cache_misses: int = 0
    #: batch accounting of :meth:`QuerySession.evaluate_many`.
    batch_queries: int = 0
    batch_unique_queries: int = 0
    #: subtree occurrences served by another query's prune work within
    #: one shared batch execution (DAG dedup, not a cache).
    batch_shared_subtrees: int = 0
    #: shared-DAG executions skipped by the tiny-batch guard of
    #: :meth:`QuerySession.evaluate_many` (``share="auto"`` fell back to
    #: the isolated per-query path because nothing worthwhile is shared).
    batch_share_skipped: int = 0
    # ------------------------------------------------------------------
    # Plan-codegen counters (repro.plan.codegen, behind
    # ``QuerySession(codegen=...)``).  All zero when codegen is off.
    # ------------------------------------------------------------------
    #: executions served by a cached specialized function.
    codegen_hits: int = 0
    #: executions that compiled a specialized function first.
    codegen_misses: int = 0
    #: codegen-enabled executions that ran the interpreted pipeline
    #: anyway (baseline-routed, parallel-sharded, group evaluation, or a
    #: plan the backend cannot specialize).
    codegen_fallbacks: int = 0
    # ------------------------------------------------------------------
    # Partial-index counters (repro.reachability.partial, behind the
    # per-query costing of repro.plan.cost).  All zero for full-scope
    # plans.
    # ------------------------------------------------------------------
    #: executions that built a footprint-restricted index first.
    partial_builds: int = 0
    #: executions served by a pooled (or rehydrated) partial index.
    partial_hits: int = 0
    #: partial-scope plans that ran on a full index anyway (candidate
    #: cone blew the footprint budget, or group evaluation).
    partial_fallbacks: int = 0
    # ------------------------------------------------------------------
    # Sharded-execution counters (repro.engine.parallel).  All zero when
    # the prune phase ran serially.
    # ------------------------------------------------------------------
    #: configured worker count of the parallel executor that ran
    #: (aggregation keeps the maximum, not the sum).
    parallel_workers: int = 0
    #: downward-prune shard tasks dispatched to the worker pool (inline
    #: leaf/empty refinements in the driver are not counted).
    parallel_shard_tasks: int = 0
    #: upward-prune shard tasks dispatched to the worker pool (inline
    #: refinements of small candidate sets are not counted).
    parallel_upward_tasks: int = 0
    #: shard tasks drained from the shared pending deque by a completion
    #: (a worker went idle and stole queued work) rather than submitted
    #: in a wave's initial pool fill.  Zero when stealing is off or no
    #: wave ever overflowed the pool.
    parallel_steals: int = 0
    #: shard tasks completed per worker, keyed by a per-execution label
    #: (``"w0"``, ``"w1"``, ... in order of first completion).
    parallel_worker_tasks: dict[str, int] = field(default_factory=dict)

    @property
    def intermediate_cost(self) -> int:
        """The paper's #intermediate metric.

        Graph-shaped intermediates cost twice their node+edge count
        (GTEA); tuple-shaped intermediates cost one unit per stored tuple
        element set (baselines).
        """
        return 2 * (self.matching_graph_nodes + self.matching_graph_edges) + (
            self.intermediate_tuples
        )

    @property
    def cache_hits(self) -> int:
        """Total hits across the plan/candidate/result/subtree caches."""
        return (
            self.plan_cache_hits
            + self.candidate_cache_hits
            + self.result_cache_hits
            + self.subtree_cache_hits
        )

    @property
    def cache_misses(self) -> int:
        """Total misses across the plan/candidate/result/subtree caches."""
        return (
            self.plan_cache_misses
            + self.candidate_cache_misses
            + self.result_cache_misses
            + self.subtree_cache_misses
        )

    def time_phase(self, name: str):
        """Context manager accumulating wall time into ``phase_seconds``."""
        return _PhaseTimer(self, name)

    def record_candidate_cache(self, counters):
        """Context manager folding the hit/miss delta of ``counters`` (a
        :class:`~repro.engine.cache.CacheCounters`, or None for a no-op)
        into the candidate-cache fields.  Used wherever candidate fetches
        run behind a shared cache whose activity must be attributed to
        one evaluation — the session's per-query path and both fetch
        sites of the shared batch executor."""
        return _CandidateCacheDelta(self, counters)

    def merge(self, other: "EvaluationStats") -> None:
        """Fold ``other`` into this object (used by batch aggregation).

        Scalar counters add up; phase timings accumulate by name; the
        per-query-node candidate breakdowns and per-operator records are
        dropped (they are not meaningful across different queries).
        """
        self.input_nodes += other.input_nodes
        self.index_lookups += other.index_lookups
        self.index_entries += other.index_entries
        self.matching_graph_nodes += other.matching_graph_nodes
        self.matching_graph_edges += other.matching_graph_edges
        self.intermediate_tuples += other.intermediate_tuples
        self.downward_prune_ops += other.downward_prune_ops
        self.result_count += other.result_count
        self.evaluations += max(other.evaluations, 1)
        self.plan_cache_hits += other.plan_cache_hits
        self.plan_cache_misses += other.plan_cache_misses
        self.candidate_cache_hits += other.candidate_cache_hits
        self.candidate_cache_misses += other.candidate_cache_misses
        self.result_cache_hits += other.result_cache_hits
        self.result_cache_misses += other.result_cache_misses
        self.subtree_cache_hits += other.subtree_cache_hits
        self.subtree_cache_misses += other.subtree_cache_misses
        self.batch_queries += other.batch_queries
        self.batch_unique_queries += other.batch_unique_queries
        self.batch_shared_subtrees += other.batch_shared_subtrees
        self.batch_share_skipped += other.batch_share_skipped
        self.codegen_hits += other.codegen_hits
        self.codegen_misses += other.codegen_misses
        self.codegen_fallbacks += other.codegen_fallbacks
        self.partial_builds += other.partial_builds
        self.partial_hits += other.partial_hits
        self.partial_fallbacks += other.partial_fallbacks
        self.parallel_workers = max(self.parallel_workers, other.parallel_workers)
        self.parallel_shard_tasks += other.parallel_shard_tasks
        self.parallel_upward_tasks += other.parallel_upward_tasks
        self.parallel_steals += other.parallel_steals
        for worker, tasks in other.parallel_worker_tasks.items():
            self.parallel_worker_tasks[worker] = (
                self.parallel_worker_tasks.get(worker, 0) + tasks
            )
        for name, seconds in other.phase_seconds.items():
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    @classmethod
    def aggregate(cls, many: "list[EvaluationStats]") -> "EvaluationStats":
        """Sum a list of stats into one aggregate (see :meth:`merge`)."""
        total = cls()
        for stats in many:
            total.merge(stats)
        return total

    def row(self) -> dict[str, float]:
        """This evaluation as a flat report row, with a *fixed* schema.

        Every counter column is always present (zeros included): report
        rows are diffed and tabulated across configurations, and a
        schema that depends on which features fired (codegen on/off,
        sharded or serial, warm or cold caches) breaks that tooling.
        Only the ``t_<phase>`` timing columns vary — they are keyed by
        the phases that actually ran, which legitimately differ between
        executors.
        """
        return {
            "#input": self.input_nodes,
            "#index": self.index_entries,
            "#intermediate": self.intermediate_cost,
            "results": self.result_count,
            **{f"t_{k}": round(v, 6) for k, v in self.phase_seconds.items()},
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "prune_ops": self.downward_prune_ops,
            "shared_subtrees": self.batch_shared_subtrees,
            "workers": self.parallel_workers,
            "shard_tasks": self.parallel_shard_tasks,
            "upward_tasks": self.parallel_upward_tasks,
            "steals": self.parallel_steals,
            "codegen_hits": self.codegen_hits,
            "codegen_misses": self.codegen_misses,
            "codegen_fallbacks": self.codegen_fallbacks,
            "partial_builds": self.partial_builds,
            "partial_hits": self.partial_hits,
            "partial_fallbacks": self.partial_fallbacks,
        }


class _CandidateCacheDelta:
    def __init__(self, stats: EvaluationStats, counters):
        self._stats = stats
        self._counters = counters
        self._hits = 0
        self._misses = 0

    def __enter__(self):
        if self._counters is not None:
            self._hits = self._counters.hits
            self._misses = self._counters.misses
        return self

    def __exit__(self, *exc):
        if self._counters is not None:
            self._stats.candidate_cache_hits += self._counters.hits - self._hits
            self._stats.candidate_cache_misses += self._counters.misses - self._misses
        return False


class _PhaseTimer:
    def __init__(self, stats: EvaluationStats, name: str):
        self._stats = stats
        self._name = name
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        elapsed = time.perf_counter() - self._start
        self._stats.phase_seconds[self._name] = (
            self._stats.phase_seconds.get(self._name, 0.0) + elapsed
        )
        return False
