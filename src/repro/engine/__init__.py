"""GTEA evaluation engine (S6 in DESIGN.md) — the paper's Section 4.

Evaluation routes through the compiler of :mod:`repro.plan`
(normalize → logical plan → physical plan) before execution.  Two entry
points:

* :class:`GTEA` — one evaluator over one graph.  Compiles queries
  inline (``engine.compile(query)`` exposes the plan) and executes
  compiled plans; accepts any registered reachability index, including
  ``index="auto"`` (the cost model's choice).  The 3-hop index gets the
  paper's chain/contour pruning fast path, every other index the
  generic fallback; unsatisfiable queries short-circuit to O(1), and
  low-selectivity conjunctive queries on DAGs run on the TwigStackD
  baseline when the cost model prefers it.
* :class:`QuerySession` — a serving layer above :class:`GTEA`: a pool of
  lazily built indexes plus compiled-plan/candidate/result caches keyed
  by canonical query fingerprints, with batch evaluation
  (:meth:`QuerySession.evaluate_many`) that deduplicates repeated
  queries and :meth:`QuerySession.explain` for plan inspection.  Use it
  whenever more than one query hits the same graph.

:class:`ParallelExecutor` (:mod:`repro.engine.parallel`) shards the
downward prune phase across a worker pool — byte-identical to serial
execution — and is wired in with ``QuerySession(parallel=...)``.
"""

from .cache import CacheCounters, LRUCache
from .gtea import GTEA, evaluate_gtea
from .matching_graph import MatchingGraph, build_matching_graph
from .operators import (
    BaselineDelegate,
    BuildMatchingGraph,
    CandidateScan,
    CollectResults,
    ConstantEmpty,
    DownwardPrune,
    ExecutionState,
    Operator,
    OperatorStats,
    UpwardPrune,
    build_gtea_operators,
    executed_downward_order,
    run_pipeline,
)
from .parallel import ParallelExecutor, ParallelOptions
from .prime import compute_prime_subtree, shrink_prime_subtree
from .prune import PruningContext, prune_downward, prune_upward
from .results import collect_results
from .session import BatchResult, QueryPlan, QuerySession
from .shared import SharedExecutor
from .stats import EvaluationStats

__all__ = [
    "BaselineDelegate",
    "BatchResult",
    "BuildMatchingGraph",
    "CacheCounters",
    "CandidateScan",
    "CollectResults",
    "ConstantEmpty",
    "DownwardPrune",
    "EvaluationStats",
    "ExecutionState",
    "GTEA",
    "LRUCache",
    "MatchingGraph",
    "Operator",
    "OperatorStats",
    "ParallelExecutor",
    "ParallelOptions",
    "PruningContext",
    "QueryPlan",
    "QuerySession",
    "SharedExecutor",
    "UpwardPrune",
    "build_gtea_operators",
    "build_matching_graph",
    "collect_results",
    "compute_prime_subtree",
    "evaluate_gtea",
    "executed_downward_order",
    "prune_downward",
    "prune_upward",
    "run_pipeline",
    "shrink_prime_subtree",
]
