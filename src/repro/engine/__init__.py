"""GTEA evaluation engine (S6 in DESIGN.md) — the paper's Section 4."""

from .gtea import GTEA, evaluate_gtea
from .matching_graph import MatchingGraph, build_matching_graph
from .prime import compute_prime_subtree, shrink_prime_subtree
from .prune import PruningContext, prune_downward, prune_upward
from .results import collect_results
from .stats import EvaluationStats

__all__ = [
    "GTEA",
    "EvaluationStats",
    "MatchingGraph",
    "PruningContext",
    "build_matching_graph",
    "collect_results",
    "compute_prime_subtree",
    "evaluate_gtea",
    "prune_downward",
    "prune_upward",
    "shrink_prime_subtree",
]
