"""Common interface and shared helpers of the baseline evaluators.

Every baseline exposes ``evaluate(query) -> set[tuple]`` with tuples
aligned to the query's output nodes, and fills a
:class:`~repro.engine.stats.EvaluationStats` so the I/O experiment can
compare algorithms uniformly.

Baselines evaluate **conjunctive** queries natively; disjunction and
negation are layered on through
:mod:`repro.baselines.decompose` (the paper's Appendix C.2 set-up, where
TwigStack/TwigStackD process GTPQs via decompose-and-merge).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..engine.stats import EvaluationStats
from ..graph.digraph import DataGraph
from ..query.gtpq import GTPQ
from ..query.naive import candidate_nodes

ResultSet = set[tuple]


class BaselineEvaluator(ABC):
    """Base class of TwigStack / Twig2Stack / TwigStackD / HGJoin."""

    name: str = "abstract"

    def __init__(self, graph: DataGraph):
        self.graph = graph
        self.stats = EvaluationStats()
        #: optional ``(query, node_id) -> mat(u)`` override; the plan
        #: executor injects the session's shared candidate cache here.
        self.candidate_provider = None

    @abstractmethod
    def evaluate(self, query: GTPQ) -> ResultSet:
        """Evaluate a conjunctive GTPQ."""

    def evaluate_with_stats(self, query: GTPQ) -> tuple[ResultSet, EvaluationStats]:
        self.stats = EvaluationStats()
        results = self.evaluate(query)
        self.stats.result_count = len(results)
        return results, self.stats

    # ------------------------------------------------------------------
    def candidates(self, query: GTPQ) -> dict[str, list[int]]:
        """``mat(u)`` per query node, counted as #input."""
        if self.candidate_provider is not None:
            mats = {
                u: list(self.candidate_provider(query, u)) for u in query.nodes
            }
        else:
            mats = {u: candidate_nodes(self.graph, query, u) for u in query.nodes}
        self.stats.input_nodes += sum(len(nodes) for nodes in mats.values())
        return mats

    @staticmethod
    def require_conjunctive(query: GTPQ) -> None:
        if not query.is_conjunctive():
            raise ValueError(
                "this baseline evaluates conjunctive queries only; wrap it "
                "with repro.baselines.decompose for general GTPQs"
            )


def project_outputs(
    query: GTPQ, matches: list[dict[str, int]]
) -> ResultSet:
    """Project full backbone matches onto the output tuple format."""
    return {
        tuple(match[node_id] for node_id in query.outputs) for match in matches
    }
