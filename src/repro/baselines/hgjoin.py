"""HGJoin (Wang et al., PVLDB'08) — structural-join graph pattern matching.

HGJoin decomposes the pattern into bipartite sub-patterns (one per
internal query node: the node plus its children), evaluates each with
reachability joins over the tree-cover interval index [1], and merge-joins
the sub-pattern results according to a plan.

Two variants, matching the paper's experimental setup (Section 5):

* :class:`HGJoinPlus` ("HGJoin+") — tuple-shaped intermediates.  Instead
  of the original's exponential plan generator, every plan from a bounded
  deterministic sweep is executed and the best time is reported (the
  paper does the same: "generated all valid plans and took evaluation on
  each; the minimum query processing time on the best plan is reported").
* :class:`HGJoinStar` ("HGJoin*") — the paper's revised version that
  stores intermediate results as a graph, then recursively deletes
  unsupported nodes before enumerating (Section 5.2's discussion of why
  this wins on large results but costs extra on small ones).
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right
from itertools import permutations, product

from ..graph.digraph import DataGraph
from ..query.gtpq import GTPQ, EdgeType
from ..reachability.base import Dag
from ..reachability.tree_cover import TreeCoverIndex
from .base import BaselineEvaluator, ResultSet, project_outputs


class _HGJoinBase(BaselineEvaluator):
    """Shared machinery: tree-cover index + per-edge reachability joins."""

    def __init__(self, graph: DataGraph, index: TreeCoverIndex | None = None):
        super().__init__(graph)
        self._dag = Dag.from_graph(graph)  # paper datasets are DAGs
        self.index = index if index is not None else TreeCoverIndex(self._dag)

    def edge_matches(
        self, sources: list[int], targets: list[int], edge: EdgeType
    ) -> list[tuple[int, int]]:
        """All matched pairs of one query edge (a reachability W-join)."""
        pairs: list[tuple[int, int]] = []
        if edge is EdgeType.CHILD:
            target_set = set(targets)
            for source in sources:
                for w in self.graph.successors(source):
                    if w in target_set:
                        pairs.append((source, w))
            return pairs
        # AD: sort targets by postorder, probe each source's interval set.
        post = self.index.post
        ordered = sorted(targets, key=lambda t: post[t])
        posts = [post[t] for t in ordered]
        for source in sources:
            for lower, upper in self.index.intervals[source]:
                self.index.counters.entries_scanned += 1
                lo = bisect_left(posts, lower)
                hi = bisect_right(posts, upper)
                for position in range(lo, hi):
                    target = ordered[position]
                    if target != source:
                        pairs.append((source, target))
        self.stats.index_entries += self.index.counters.entries_scanned
        self.index.counters.reset()
        return pairs


class HGJoinPlus(_HGJoinBase):
    """HGJoin with tuple intermediates and a best-of-plans sweep."""

    name = "HGJoin+"
    max_plans = 6

    def evaluate(self, query: GTPQ) -> ResultSet:
        self.require_conjunctive(query)
        mats = self.candidates(query)
        stars = _stars(query)
        plans = _plans(stars, self.max_plans)
        best_rows: list[dict[str, int]] | None = None
        best_seconds = float("inf")
        total_seconds = 0.0
        for plan in plans:
            started = time.perf_counter()
            rows = self._run_plan(query, plan, mats)
            elapsed = time.perf_counter() - started
            total_seconds += elapsed
            if elapsed < best_seconds:
                best_seconds = elapsed
                best_rows = rows
        self.stats.phase_seconds["best_plan"] = best_seconds
        self.stats.phase_seconds["all_plans"] = total_seconds
        return project_outputs(query, best_rows or [])

    def _run_plan(
        self, query: GTPQ, plan: list[str], mats: dict[str, list[int]]
    ) -> list[dict[str, int]]:
        """Evaluate star sub-patterns in ``plan`` order; hash-join them."""
        if not plan:  # single-node pattern: no joins at all
            return [{query.root: v} for v in mats[query.root]]
        combined: list[dict[str, int]] | None = None
        for star_root in plan:
            rows = self._star_rows(query, star_root, mats)
            self.stats.intermediate_tuples += len(rows)
            if not rows:
                return []
            if combined is None:
                combined = rows
                continue
            shared = set(combined[0]) & set(rows[0]) if combined else set()
            key_list = sorted(shared)
            bucket: dict[tuple, list[dict[str, int]]] = {}
            for row in rows:
                bucket.setdefault(tuple(row[k] for k in key_list), []).append(row)
            next_combined: list[dict[str, int]] = []
            for row in combined:
                for other in bucket.get(tuple(row[k] for k in key_list), []):
                    merged = dict(row)
                    merged.update(other)
                    next_combined.append(merged)
            combined = next_combined
            self.stats.intermediate_tuples += len(combined)
            if not combined:
                return []
        return combined if combined is not None else []

    def _star_rows(
        self, query: GTPQ, star_root: str, mats: dict[str, list[int]]
    ) -> list[dict[str, int]]:
        """Tuples of one bipartite sub-pattern (node + its children)."""
        child_ids = query.children[star_root]
        per_child: dict[str, dict[int, list[int]]] = {}
        for child_id in child_ids:
            pairs = self.edge_matches(
                mats[star_root], mats[child_id], query.edge_type(child_id)
            )
            grouped: dict[int, list[int]] = {}
            for source, target in pairs:
                grouped.setdefault(source, []).append(target)
            per_child[child_id] = grouped
        rows: list[dict[str, int]] = []
        for source in mats[star_root]:
            target_lists = []
            complete = True
            for child_id in child_ids:
                targets = per_child[child_id].get(source, [])
                if not targets:
                    complete = False
                    break
                target_lists.append(targets)
            if not complete:
                continue
            for combination in product(*target_lists):
                row = {star_root: source}
                row.update(dict(zip(child_ids, combination)))
                rows.append(row)
        return rows


class HGJoinStar(_HGJoinBase):
    """HGJoin with graph-shaped intermediates (the paper's HGJoin*)."""

    name = "HGJoin*"

    def evaluate(self, query: GTPQ) -> ResultSet:
        self.require_conjunctive(query)
        mats = self.candidates(query)
        # Per-edge adjacency, no pruning: the full edge-match graph.
        branch: dict[tuple[str, int], dict[str, list[int]]] = {}
        alive: dict[str, set[int]] = {u: set(mats[u]) for u in query.nodes}
        for node_id in query.nodes:
            for child_id in query.children[node_id]:
                pairs = self.edge_matches(
                    mats[node_id], mats[child_id], query.edge_type(child_id)
                )
                for source, target in pairs:
                    branch.setdefault((node_id, source), {}).setdefault(
                        child_id, []
                    ).append(target)
        self.stats.matching_graph_nodes = sum(len(v) for v in alive.values())
        self.stats.matching_graph_edges = sum(
            len(t) for b in branch.values() for t in b.values()
        )
        self._delete_unsupported(query, alive, branch)
        return self._collect(query, alive, branch)

    def _delete_unsupported(self, query, alive, branch) -> None:
        """Recursively remove nodes lacking child or parent support.

        This is the "dynamically and recursively deleting unqualified
        nodes" cost that makes HGJoin* slower than HGJoin+ on small
        queries/results (paper Section 5.2).
        """
        changed = True
        while changed:
            changed = False
            for node_id in query.bottom_up():
                child_ids = query.children[node_id]
                if not child_ids:
                    continue
                for v in list(alive[node_id]):
                    lists = branch.get((node_id, v), {})
                    ok = True
                    for child_id in child_ids:
                        targets = [
                            t for t in lists.get(child_id, []) if t in alive[child_id]
                        ]
                        lists[child_id] = targets
                        if not targets:
                            ok = False
                    if not ok:
                        alive[node_id].discard(v)
                        changed = True
            # Upward support: non-root candidates need an incoming edge.
            supported: dict[str, set[int]] = {
                u: set() for u in query.nodes
            }
            supported[query.root] = set(alive[query.root])
            for node_id in query.depth_first():
                for child_id in query.children[node_id]:
                    for v in supported[node_id]:
                        for t in branch.get((node_id, v), {}).get(child_id, []):
                            if t in alive[child_id]:
                                supported[child_id].add(t)
            for node_id in query.nodes:
                if supported[node_id] != alive[node_id]:
                    alive[node_id] = supported[node_id]
                    changed = True

    def _collect(self, query, alive, branch) -> ResultSet:
        """Enumerate results from the cleaned graph (shared sub-results)."""
        memo: dict[tuple[str, int], list[dict[str, int]]] = {}

        def expand(u: str, v: int) -> list[dict[str, int]]:
            key = (u, v)
            if key in memo:
                return memo[key]
            child_ids = query.children[u]
            if not child_ids:
                memo[key] = [{u: v}]
                return memo[key]
            per_child = []
            for c in child_ids:
                rows: list[dict[str, int]] = []
                for w in branch.get((u, v), {}).get(c, ()):
                    if w in alive[c]:
                        rows.extend(expand(c, w))
                if not rows:
                    memo[key] = []
                    return []
                per_child.append(rows)
            out = []
            for combination in product(*per_child):
                merged = {u: v}
                for piece in combination:
                    merged.update(piece)
                out.append(merged)
            memo[key] = out
            return out

        matches: list[dict[str, int]] = []
        for v in alive[query.root]:
            matches.extend(expand(query.root, v))
        return project_outputs(query, matches)


def _stars(query: GTPQ) -> list[str]:
    """Internal query nodes, each denoting its bipartite sub-pattern."""
    return [u for u in query.depth_first() if query.children[u]]


def _plans(stars: list[str], max_plans: int) -> list[list[str]]:
    """A bounded deterministic set of star join orders."""
    if not stars:
        return [[]]
    if len(stars) <= 3:
        return [list(p) for p in permutations(stars)][:max_plans]
    plans = [stars[i:] + stars[:i] for i in range(len(stars))]
    return plans[:max_plans]
