"""TwigStack — the classical holistic twig join (Bruno et al., SIGMOD'02).

Operates on tree/forest data with interval-encoded streams, one stack per
query node, the ``getNext`` skip routine, root-to-leaf *path solutions*
and a final merge join of path lists — the tuple-shaped intermediate
results whose size the paper's Fig. 10 contrasts with GTEA's matching
graph.

Scope notes (documented in DESIGN.md):

* optimal for AD-only twigs, as in the original; PC query edges are
  treated as AD during the join and enforced by a level post-filter on
  merged twig matches (the classical suboptimality);
* graph data must go through :mod:`repro.baselines.tree_decompose`.
"""

from __future__ import annotations


from math import inf

from ..graph.digraph import DataGraph
from ..query.gtpq import GTPQ, EdgeType
from ..reachability.interval import IntervalLabeling
from .base import BaselineEvaluator, ResultSet, project_outputs


class _Stream:
    """A sorted candidate stream with a cursor (``T_q`` in the paper)."""

    __slots__ = ("nodes", "position", "labeling")

    def __init__(self, nodes: list[int], labeling: IntervalLabeling):
        self.nodes = labeling.sort_by_start(nodes)
        self.position = 0
        self.labeling = labeling

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self.nodes)

    @property
    def next_l(self) -> float:
        if self.exhausted:
            return inf
        return self.labeling.start[self.nodes[self.position]]

    @property
    def next_r(self) -> float:
        if self.exhausted:
            return inf
        return self.labeling.end[self.nodes[self.position]]

    def head(self) -> int:
        return self.nodes[self.position]

    def advance(self) -> None:
        self.position += 1


class _StackEntry:
    __slots__ = ("node", "parent_index")

    def __init__(self, node: int, parent_index: int):
        self.node = node
        self.parent_index = parent_index  # top of parent stack at push time


class TwigStack(BaselineEvaluator):
    """Holistic twig join over forest-shaped data."""

    name = "TwigStack"

    def __init__(self, graph: DataGraph, labeling: IntervalLabeling | None = None):
        super().__init__(graph)
        self.labeling = labeling if labeling is not None else IntervalLabeling(graph)

    def evaluate(self, query: GTPQ) -> ResultSet:
        self.require_conjunctive(query)
        matches = self.full_matches(query)
        return project_outputs(query, matches)

    # ------------------------------------------------------------------
    def full_matches(self, query: GTPQ) -> list[dict[str, int]]:
        """All twig matches as node->data dictionaries."""
        mats = self.candidates(query)
        if any(not mats[u] for u in query.nodes):
            return []
        labeling = self.labeling
        streams = {u: _Stream(mats[u], labeling) for u in query.nodes}
        stacks: dict[str, list[_StackEntry]] = {u: [] for u in query.nodes}
        leaves = [u for u in query.nodes if query.is_leaf(u)]
        path_solutions: dict[str, list[dict[str, int]]] = {u: [] for u in leaves}

        subtree_of = {u: query.subtree_nodes(u) for u in query.nodes}

        def subtree_exhausted(q: str) -> bool:
            return all(streams[u].exhausted for u in subtree_of[q])

        def get_next(q: str) -> str:
            """getNext of the original, with one refinement: subtrees whose
            streams are fully exhausted are skipped, so the returned node
            always has a stream head to process (new matches can still
            combine with already-emitted path solutions of the exhausted
            branch)."""
            if query.is_leaf(q):
                return q
            active = [
                c for c in query.children[q] if not subtree_exhausted(c)
            ]
            if not active:
                return q
            for child in active:
                ni = get_next(child)
                if ni != child:
                    return ni
            n_min = min(active, key=lambda c: streams[c].next_l)
            n_max = max(active, key=lambda c: streams[c].next_l)
            while streams[q].next_r < streams[n_max].next_l:
                streams[q].advance()
            if streams[q].next_l < streams[n_min].next_l:
                return q
            return n_min

        def clean_stack(stack: list[_StackEntry], act_l: float) -> None:
            while stack and labeling.end[stack[-1].node] < act_l:
                stack.pop()

        def emit_paths(q: str) -> None:
            """Blocking-style expansion of root-to-leaf path solutions."""
            chain = query.path_to_root(q)  # leaf .. root
            entry = stacks[q][-1]
            partial: list[tuple[dict[str, int], int]] = [({q: entry.node}, entry.parent_index)]
            for ancestor in chain[1:]:
                expanded: list[tuple[dict[str, int], int]] = []
                ancestor_stack = stacks[ancestor]
                for row, limit in partial:
                    for index in range(min(limit + 1, len(ancestor_stack))):
                        anc_entry = ancestor_stack[index]
                        new_row = dict(row)
                        new_row[ancestor] = anc_entry.node
                        expanded.append((new_row, anc_entry.parent_index))
                partial = expanded
            path_solutions[q].extend(row for row, __ in partial)

        root = query.root
        while not subtree_exhausted(root):
            q = get_next(root)
            if streams[q].exhausted:  # pragma: no cover - defensive
                break
            parent = query.parent.get(q)
            if parent is not None:
                clean_stack(stacks[parent], streams[q].next_l)
            if parent is None or stacks[parent]:
                clean_stack(stacks[q], streams[q].next_l)
                parent_top = len(stacks[parent]) - 1 if parent is not None else -1
                stacks[q].append(_StackEntry(streams[q].head(), parent_top))
                streams[q].advance()
                if query.is_leaf(q):
                    emit_paths(q)
                    stacks[q].pop()
            else:
                streams[q].advance()

        # Tuple-shaped intermediate results: total path solutions stored.
        self.stats.intermediate_tuples += sum(
            len(rows) for rows in path_solutions.values()
        )
        matches = self._merge_paths(query, leaves, path_solutions)
        return [m for m in matches if self._pc_edges_hold(query, m)]

    # ------------------------------------------------------------------
    def _merge_paths(
        self,
        query: GTPQ,
        leaves: list[str],
        path_solutions: dict[str, list[dict[str, int]]],
    ) -> list[dict[str, int]]:
        """N-way hash join of per-leaf path solution lists."""
        if not leaves:
            return []
        combined = path_solutions[leaves[0]]
        combined_keys = set(query.path_to_root(leaves[0]))
        for leaf in leaves[1:]:
            rows = path_solutions[leaf]
            keys = combined_keys & set(query.path_to_root(leaf))
            key_list = sorted(keys)
            bucket: dict[tuple, list[dict[str, int]]] = {}
            for row in rows:
                bucket.setdefault(tuple(row[k] for k in key_list), []).append(row)
            next_combined: list[dict[str, int]] = []
            for row in combined:
                for other in bucket.get(tuple(row[k] for k in key_list), []):
                    merged = dict(row)
                    merged.update(other)
                    next_combined.append(merged)
            combined = next_combined
            combined_keys |= set(query.path_to_root(leaf))
            self.stats.intermediate_tuples += len(combined)
        return combined

    def _pc_edges_hold(self, query: GTPQ, match: dict[str, int]) -> bool:
        for node_id, parent_id in query.parent.items():
            if query.edge_type(node_id) is EdgeType.CHILD:
                if not self.labeling.is_parent(match[parent_id], match[node_id]):
                    return False
        return True
