"""Twig2Stack (Chen et al., VLDB'06) — bottom-up hierarchical-stack twig join.

Twig2Stack's signature property is that it never enumerates root-to-leaf
path solutions: candidates are organized bottom-up into hierarchical
stacks (stack trees) that share sub-results, and twig matches are
enumerated only at the end.  Our implementation keeps that structure —
per query node a start-ordered match list with *branch links* to child
matches (the stack-tree encoding), built bottom-up with interval range
queries — and pays the corresponding overheads the paper observed on
XMark: maintaining the hierarchical structures costs more than TwigStack's
stacks when documents are shallow.

Simplification documented in DESIGN.md: the original's document-order
sweep with in-place stack merging is replaced by an equivalent bottom-up
pass per query node over start-sorted candidates; the produced encoding
(entries + links) and the enumeration are the same.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import product

from ..graph.digraph import DataGraph
from ..query.gtpq import GTPQ, EdgeType
from ..reachability.interval import IntervalLabeling
from .base import BaselineEvaluator, ResultSet, project_outputs


class Twig2Stack(BaselineEvaluator):
    """Bottom-up twig matching with graph-like stack-tree encoding."""

    name = "Twig2Stack"

    def __init__(self, graph: DataGraph, labeling: IntervalLabeling | None = None):
        super().__init__(graph)
        self.labeling = labeling if labeling is not None else IntervalLabeling(graph)

    def evaluate(self, query: GTPQ) -> ResultSet:
        self.require_conjunctive(query)
        return project_outputs(query, self.full_matches(query))

    def full_matches(self, query: GTPQ) -> list[dict[str, int]]:
        mats = self.candidates(query)
        labeling = self.labeling
        # Hierarchical encoding: per query node, matches sorted by start
        # plus branch links (lists of child-match positions).
        entries: dict[str, list[int]] = {}
        starts: dict[str, list[int]] = {}
        links: dict[str, list[dict[str, list[int]]]] = {}
        for node_id in query.bottom_up():
            sorted_nodes = labeling.sort_by_start(mats[node_id])
            child_ids = query.children[node_id]
            kept: list[int] = []
            kept_links: list[dict[str, list[int]]] = []
            for data_node in sorted_nodes:
                branch: dict[str, list[int]] = {}
                satisfied = True
                for child_id in child_ids:
                    lo = bisect_right(starts[child_id], labeling.start[data_node])
                    hi = bisect_right(starts[child_id], labeling.end[data_node])
                    positions = list(range(lo, hi))
                    if query.edge_type(child_id) is EdgeType.CHILD:
                        positions = [
                            p for p in positions
                            if labeling.level[entries[child_id][p]]
                            == labeling.level[data_node] + 1
                        ]
                    if not positions:
                        satisfied = False
                        break
                    branch[child_id] = positions
                if satisfied:
                    kept.append(data_node)
                    kept_links.append(branch)
            entries[node_id] = kept
            starts[node_id] = [labeling.start[n] for n in kept]
            links[node_id] = kept_links
            # Hierarchical-stack space: entries plus links (#intermediate).
            self.stats.intermediate_tuples += len(kept) + sum(
                len(p) for b in kept_links for p in b.values()
            )

        # Enumerate twig matches from the root encoding.
        matches: list[dict[str, int]] = []
        memo: dict[tuple[str, int], list[dict[str, int]]] = {}

        def expand(node_id: str, position: int) -> list[dict[str, int]]:
            key = (node_id, position)
            if key in memo:
                return memo[key]
            data_node = entries[node_id][position]
            child_ids = query.children[node_id]
            if not child_ids:
                memo[key] = [{node_id: data_node}]
                return memo[key]
            per_child: list[list[dict[str, int]]] = []
            for child_id in child_ids:
                rows: list[dict[str, int]] = []
                for child_position in links[node_id][position][child_id]:
                    rows.extend(expand(child_id, child_position))
                per_child.append(rows)
            out: list[dict[str, int]] = []
            for combination in product(*per_child):
                merged = {node_id: data_node}
                for piece in combination:
                    merged.update(piece)
                out.append(merged)
            memo[key] = out
            return out

        for position in range(len(entries[query.root])):
            matches.extend(expand(query.root, position))
        return matches
