"""Baseline algorithms (S7 in DESIGN.md): the paper's competitors."""

from .base import BaselineEvaluator, ResultSet, project_outputs
from .decompose import DecomposingEvaluator, enumerate_conjunctive_variants
from .hgjoin import HGJoinPlus, HGJoinStar
from .tree_decompose import (
    CrossAwareTreeSolver,
    DecomposedQuery,
    TreeDecomposedEvaluator,
    decompose_at_cross_edges,
    spanning_forest_edges,
)
from .twig2stack import Twig2Stack
from .twigstack import TwigStack
from .twigstackd import TwigStackD

__all__ = [
    "BaselineEvaluator",
    "CrossAwareTreeSolver",
    "DecomposedQuery",
    "DecomposingEvaluator",
    "HGJoinPlus",
    "HGJoinStar",
    "ResultSet",
    "TreeDecomposedEvaluator",
    "Twig2Stack",
    "TwigStack",
    "TwigStackD",
    "decompose_at_cross_edges",
    "enumerate_conjunctive_variants",
    "project_outputs",
    "spanning_forest_edges",
]
