"""TwigStackD (Chen/Gupta/Kurul, VLDB'05) — twig matching on DAGs.

The structure follows the original: a *pre-filtering* phase performs two
whole-graph sweeps (forward and backward DP over the DAG) selecting nodes
that satisfy downward constraints and are reachable from root candidates;
survivors enter per-query-node *pools* in topological order, pool entries
are linked by pairwise SSPI reachability checks, and matches are
enumerated from the pools as tuples.

Cost profile reproduced deliberately (paper Sections 5.1-5.2, Fig. 10):

* the pre-filter touches every graph node twice (#input blow-up), which
  is what keeps pools small and makes TwigStackD competitive on XMark;
* pool linking performs pairwise SSPI ``reaches`` probes whose recursion
  through surplus-predecessor lists degrades on the denser, deeper arXiv
  graphs — exactly the fluctuation Fig. 9(c) shows.

Conjunctive queries only; cyclic data must be condensed by the caller
(all paper datasets are DAGs).
"""

from __future__ import annotations

from itertools import product

from ..graph.digraph import DataGraph
from ..graph.traversal import topological_order
from ..query.gtpq import GTPQ, EdgeType
from ..reachability.base import Dag
from ..reachability.sspi import SSPIIndex
from .base import BaselineEvaluator, ResultSet, project_outputs


class TwigStackD(BaselineEvaluator):
    """Pre-filter + SSPI pools twig matching for DAG data."""

    name = "TwigStackD"

    def __init__(self, graph: DataGraph, sspi: SSPIIndex | None = None):
        super().__init__(graph)
        self._dag = Dag.from_graph(graph)  # raises on cyclic input
        self._topo = topological_order(graph)
        self.sspi = sspi if sspi is not None else SSPIIndex(self._dag)

    def evaluate(self, query: GTPQ) -> ResultSet:
        self.require_conjunctive(query)
        return project_outputs(query, self.full_matches(query))

    # ------------------------------------------------------------------
    def full_matches(self, query: GTPQ) -> list[dict[str, int]]:
        self.sspi.counters.reset()
        mats = self.candidates(query)
        candidates = self.prefilter(query, mats)
        if any(not candidates[u] for u in query.nodes):
            return []
        pools, links = self._build_pools(query, candidates)
        rows = self._enumerate(query, pools, links)
        snapshot = self.sspi.counters.snapshot()
        self.stats.index_lookups += snapshot["lookups"]
        self.stats.index_entries += snapshot["entries_scanned"]
        return rows

    # ------------------------------------------------------------------
    def prefilter(
        self, query: GTPQ, mats: dict[str, list[int]]
    ) -> dict[str, list[int]]:
        """The two-sweep pre-filtering process.

        Sweep 1 (reverse topological): per node, which query nodes it
        downwardly matches.  Sweep 2 (forward): which survivors are
        reachable from surviving images of their query parent.  Bit masks
        over query nodes keep both sweeps linear in graph size.
        """
        query_ids = list(query.nodes)
        bit_of = {u: 1 << i for i, u in enumerate(query_ids)}
        in_mat = [0] * self.graph.num_nodes
        for u, nodes in mats.items():
            for v in nodes:
                in_mat[v] |= bit_of[u]

        # Sweep 1: down[v] = query nodes v downwardly matches;
        # below[v] = query nodes matched somewhere strictly below v.
        down = [0] * self.graph.num_nodes
        below = [0] * self.graph.num_nodes
        pc_children = {
            u: [c for c in query.children[u] if query.edge_type(c) is EdgeType.CHILD]
            for u in query_ids
        }
        ad_children = {
            u: [c for c in query.children[u] if query.edge_type(c) is EdgeType.DESCENDANT]
            for u in query_ids
        }
        self.stats.input_nodes += self.graph.num_nodes  # traversal 1
        for v in reversed(self._topo):
            child_down = 0
            child_below = 0
            for w in self.graph.successors(v):
                child_down |= down[w]
                child_below |= below[w]
            below[v] = child_down | child_below
            mask = 0
            for u in query_ids:
                if not in_mat[v] & bit_of[u]:
                    continue
                ok = True
                for c in pc_children[u]:
                    if not child_down & bit_of[c]:
                        ok = False
                        break
                if ok:
                    for c in ad_children[u]:
                        if not below[v] & bit_of[c]:
                            ok = False
                            break
                if ok:
                    mask |= bit_of[u]
            down[v] = mask

        # Sweep 2: up[v] = down-matching query nodes with upward support.
        up = [0] * self.graph.num_nodes
        above = [0] * self.graph.num_nodes  # up-bits seen strictly above
        self.stats.input_nodes += self.graph.num_nodes  # traversal 2
        root_bit = bit_of[query.root]
        for v in self._topo:
            parent_up = 0
            parent_above = 0
            for p in self.graph.predecessors(v):
                parent_up |= up[p]
                parent_above |= above[p]
            above[v] = parent_up | parent_above
            mask = 0
            if down[v] & root_bit:
                mask |= root_bit
            for u in query_ids:
                if u == query.root or not down[v] & bit_of[u]:
                    continue
                parent_bit = bit_of[query.parent[u]]
                if query.edge_type(u) is EdgeType.CHILD:
                    if parent_up & parent_bit:
                        mask |= bit_of[u]
                elif above[v] & parent_bit:
                    mask |= bit_of[u]
            up[v] = mask

        survivors: dict[str, list[int]] = {u: [] for u in query_ids}
        for v in self._topo:  # topological pool order
            for u in query_ids:
                if up[v] & bit_of[u]:
                    survivors[u].append(v)
        return survivors

    # ------------------------------------------------------------------
    def _build_pools(self, query: GTPQ, candidates: dict[str, list[int]]):
        """Link pool entries by pairwise SSPI checks (the costly part)."""
        pools = candidates
        links: dict[tuple[str, int], dict[str, list[int]]] = {}
        for u in query.nodes:
            child_ids = query.children[u]
            if not child_ids:
                continue
            for v in pools[u]:
                branch: dict[str, list[int]] = {}
                for c in child_ids:
                    if query.edge_type(c) is EdgeType.CHILD:
                        succ = set(self.graph.successors(v))
                        branch[c] = [w for w in pools[c] if w in succ]
                    else:
                        branch[c] = [
                            w for w in pools[c] if self.sspi.reaches(v, w)
                        ]
                links[(u, v)] = branch
        self.stats.intermediate_tuples += sum(
            len(nodes) for nodes in pools.values()
        ) + sum(
            len(targets) for branch in links.values() for targets in branch.values()
        )
        return pools, links

    def _enumerate(self, query: GTPQ, pools, links) -> list[dict[str, int]]:
        """Expand pool links into full twig tuples (no result sharing)."""
        out: list[dict[str, int]] = []

        def expand(u: str, v: int) -> list[dict[str, int]]:
            child_ids = query.children[u]
            if not child_ids:
                return [{u: v}]
            per_child: list[list[dict[str, int]]] = []
            for c in child_ids:
                rows: list[dict[str, int]] = []
                for w in links[(u, v)].get(c, ()):
                    rows.extend(expand(c, w))
                if not rows:
                    return []
                per_child.append(rows)
            combined: list[dict[str, int]] = []
            for combination in product(*per_child):
                merged = {u: v}
                for piece in combination:
                    merged.update(piece)
                combined.append(merged)
            return combined

        for v in pools[query.root]:
            out.extend(expand(query.root, v))
        self.stats.intermediate_tuples += len(out)
        return out
