"""Running tree twig-join algorithms over graph data (paper Section 5.1).

Graph-shaped XML — trees connected by ID/IDREF cross edges — can be
processed by tree algorithms by (1) decomposing the query into subqueries
that each stay inside one tree, (2) evaluating every subquery with the
tree algorithm over the *forest view* (the graph minus cross edges), and
(3) merge-joining subquery results across the reference edges.  The paper
uses this set-up to run TwigStack and Twig2Stack on XMark graphs and
charges them for the "large redundant intermediate results and costly
merging processes" it produces.

A query edge is declared *cross* by naming its child node; the subquery
below it is split off and joined back through a data cross edge (the
query edges in Fig. 7 drawn dotted).  Only PC cross edges are supported —
the paper's workloads use references as direct links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.stats import EvaluationStats
from ..graph.digraph import DataGraph
from ..query.gtpq import GTPQ, EdgeType, QueryNode
from .base import ResultSet


@dataclass
class DecomposedQuery:
    """A GTPQ split at cross edges into per-tree conjunctive subqueries."""

    original: GTPQ
    subqueries: list[GTPQ]
    #: per split child: (upper subquery idx, ref node id, lower subquery idx)
    joins: list[tuple[int, str, int]]
    #: output columns as (subquery index, node id)
    outputs: list[tuple[int, str]] = field(default_factory=list)


def decompose_at_cross_edges(query: GTPQ, cross_children: set[str]) -> DecomposedQuery:
    """Split ``query`` at the edges entering ``cross_children``.

    Every node of each subquery is promoted to an output backbone node so
    subquery results can be joined and projected.
    """
    for child in cross_children:
        if child not in query.parent:
            raise ValueError(f"cross child {child!r} is not a non-root query node")
        if query.edge_type(child) is not EdgeType.CHILD:
            raise ValueError(
                f"cross edge into {child!r} must be parent-child (a reference link)"
            )
    roots = [query.root] + [c for c in query.depth_first() if c in cross_children]
    sub_of: dict[str, int] = {}
    subqueries: list[GTPQ] = []
    for index, sub_root in enumerate(roots):
        members: list[str] = []
        stack = [sub_root]
        while stack:
            current = stack.pop()
            members.append(current)
            for child in query.children[current]:
                if child not in cross_children:
                    stack.append(child)
        for member in members:
            sub_of[member] = index
        subqueries.append(_subquery(query, sub_root, members))
    joins = [
        (sub_of[query.parent[child]], query.parent[child], roots.index(child))
        for child in roots[1:]
    ]
    outputs = [(sub_of[o], o) for o in query.outputs]
    return DecomposedQuery(query, subqueries, joins, outputs)


def _subquery(query: GTPQ, sub_root: str, members: list[str]) -> GTPQ:
    member_set = set(members)
    nodes = {
        m: QueryNode(m, query.attribute(m), True)  # all backbone: joinable
        for m in members
    }
    children = {
        m: [c for c in query.children[m] if c in member_set] for m in members
    }
    parent = {
        m: query.parent[m]
        for m in members
        if m != sub_root and query.parent[m] in member_set
    }
    edge_types = {m: query.edge_type(m) for m in parent}
    return GTPQ(
        root=sub_root,
        nodes=nodes,
        parent=parent,
        children=children,
        edge_types=edge_types,
        structural={},  # conjunctive: all children conjoined through fext
        outputs=members,
    )


class TreeDecomposedEvaluator:
    """Evaluate decomposed queries with a tree algorithm + merge joins.

    Args:
        graph: the full data graph.
        tree_algorithm_factory: callable ``(forest) -> BaselineEvaluator``
            (e.g. ``TwigStack`` or ``Twig2Stack``).
        forest_edges: the tree-edge set; when omitted, a spanning forest is
            taken (first incoming edge per node in id order).
    """

    def __init__(
        self,
        graph: DataGraph,
        tree_algorithm_factory,
        forest_edges: set[tuple[int, int]] | None = None,
    ):
        self.graph = graph
        if forest_edges is None:
            forest_edges = spanning_forest_edges(graph)
        self.forest_edges = forest_edges
        self.forest = DataGraph()
        for node in graph.nodes():
            self.forest.add_node(dict(graph.attrs(node)))
        self.cross_successors: dict[int, list[int]] = {}
        for source, target in graph.edges():
            if (source, target) in forest_edges:
                self.forest.add_edge(source, target)
            else:
                self.cross_successors.setdefault(source, []).append(target)
        self.tree_algorithm = tree_algorithm_factory(self.forest)
        self.stats = EvaluationStats()

    @property
    def name(self) -> str:
        return self.tree_algorithm.name

    def evaluate(self, decomposed: DecomposedQuery) -> ResultSet:
        results, _ = self.evaluate_with_stats(decomposed)
        return results

    def evaluate_with_stats(
        self, decomposed: DecomposedQuery
    ) -> tuple[ResultSet, EvaluationStats]:
        self.stats = EvaluationStats()
        rows = self.full_match_rows(decomposed)
        results = {
            tuple(row[node_id] for __, node_id in decomposed.outputs)
            for row in rows
        }
        self.stats.result_count = len(results)
        return results, self.stats

    def full_match_rows(
        self, decomposed: DecomposedQuery
    ) -> list[dict[str, int]]:
        """Joined full matches keyed by original query node ids."""
        per_sub: list[list[dict[str, int]]] = []
        for subquery in decomposed.subqueries:
            self.tree_algorithm.stats = EvaluationStats()
            rows = self.tree_algorithm.full_matches(subquery)
            sub_stats = self.tree_algorithm.stats
            self.stats.input_nodes += sub_stats.input_nodes
            self.stats.intermediate_tuples += (
                sub_stats.intermediate_tuples + len(rows)
            )
            per_sub.append(rows)

        # Merge-join subqueries across reference edges, in join order.
        # Node ids are globally unique (they come from one original
        # query), so rows can be keyed by node id directly.
        combined: list[dict[str, int]] = [dict(row) for row in per_sub[0]]
        for __, ref_node, lower_index in decomposed.joins:
            lower_root = decomposed.subqueries[lower_index].root
            bucket: dict[int, list[dict[str, int]]] = {}
            for row in per_sub[lower_index]:
                bucket.setdefault(row[lower_root], []).append(row)
            next_combined: list[dict[str, int]] = []
            for row in combined:
                ref_image = row[ref_node]
                for target in self.cross_successors.get(ref_image, ()):
                    for lower_row in bucket.get(target, ()):
                        merged = dict(row)
                        merged.update(lower_row)
                        next_combined.append(merged)
            combined = next_combined
            self.stats.intermediate_tuples += len(combined)
        return combined


class CrossAwareTreeSolver:
    """Adapter giving a :class:`TreeDecomposedEvaluator` the conjunctive
    ``full_matches`` interface so it can sit under the GTPQ decomposition
    wrapper (Appendix C.2's TwigStack/Twig2Stack over graph data).

    Args:
        tree_evaluator: the underlying per-tree evaluator.
        cross_children: query nodes entered through reference edges; the
            subset present in each conjunctive variant drives its split.
    """

    def __init__(self, tree_evaluator: TreeDecomposedEvaluator, cross_children: set[str]):
        self.tree_evaluator = tree_evaluator
        self.cross_children = set(cross_children)
        self.name = tree_evaluator.name

    @property
    def stats(self) -> EvaluationStats:
        return self.tree_evaluator.stats

    @stats.setter
    def stats(self, value: EvaluationStats) -> None:
        self.tree_evaluator.stats = value

    def full_matches(self, query: GTPQ) -> list[dict[str, int]]:
        # A cross child only splits when it is actually entered through its
        # reference edge in this (sub)query — an anti-join auxiliary query
        # may be rooted at it.
        crosses = {
            c for c in self.cross_children
            if c in query.nodes and c in query.parent
        }
        decomposed = decompose_at_cross_edges(query, crosses)
        return self.tree_evaluator.full_match_rows(decomposed)


def spanning_forest_edges(graph: DataGraph) -> set[tuple[int, int]]:
    """Default forest view: each node keeps its first incoming edge."""
    chosen: set[tuple[int, int]] = set()
    has_parent: set[int] = set()
    for source, target in graph.edges():
        if target not in has_parent:
            has_parent.add(target)
            chosen.add((source, target))
    return chosen
