"""Decompose-and-merge GTPQ processing for conjunctive-only baselines.

The paper's Appendix C.2 runs TwigStack and TwigStackD on queries with
disjunction and negation by decomposing each GTPQ into conjunctive TPQs
and combining their answers ("perform the difference and merge operations
on results of the decomposed queries") — and charges them for it: the
number of conjunctive variants can be exponential in the query size.

Mechanics:

* each internal node's structural predicate is put into DNF
  (:func:`repro.logic.dnf_terms`); a *variant* picks one term per
  positively-selected node, top-down;
* positive literals keep the child's subtree (recursively expanded);
  unmentioned children are dropped (don't-care);
* negative literals become *anti-joins*: an auxiliary conjunctive query
  "parent + forbidden subtree" computes the set of parent images having
  the forbidden branch, and variant rows whose image lies in that set are
  discarded;
* variant answers are unioned.
"""

from __future__ import annotations


from typing import Callable

from ..engine.stats import EvaluationStats
from ..query.gtpq import GTPQ, QueryNode
from .base import ResultSet

#: a baseline evaluation callable: conjunctive GTPQ -> full-match rows.
ConjunctiveSolver = Callable[[GTPQ], list[dict[str, int]]]


class DecomposingEvaluator:
    """Wrap a conjunctive baseline to evaluate arbitrary GTPQs.

    Args:
        solver: object with ``full_matches(conjunctive_query)`` and a
            ``stats`` attribute (any :class:`BaselineEvaluator`, or a
            :class:`TreeDecomposedEvaluator` adapter).
        name_suffix: appended to the solver's name in reports.
    """

    def __init__(self, solver, name_suffix: str = "+decompose"):
        self.solver = solver
        self.name = getattr(solver, "name", "solver") + name_suffix
        self.stats = EvaluationStats()

    def evaluate(self, query: GTPQ) -> ResultSet:
        results, _ = self.evaluate_with_stats(query)
        return results

    def evaluate_with_stats(self, query: GTPQ) -> tuple[ResultSet, EvaluationStats]:
        self.stats = EvaluationStats()
        variants = enumerate_conjunctive_variants(query)
        answers: ResultSet = set()
        anti_join_cache: dict[tuple[str, str], set[int]] = {}
        for skeleton, negatives in variants:
            rows = self._solve(skeleton)
            for parent_id, child_id in negatives:
                bad = anti_join_cache.get((parent_id, child_id))
                if bad is None:
                    bad = self._forbidden_images(query, parent_id, child_id)
                    anti_join_cache[(parent_id, child_id)] = bad
                rows = [row for row in rows if row[parent_id] not in bad]
            answers.update(
                tuple(row[o] for o in query.outputs) for row in rows
            )
        self.stats.result_count = len(answers)
        return answers, self.stats

    # ------------------------------------------------------------------
    def _solve(self, skeleton: GTPQ) -> list[dict[str, int]]:
        rows = self.solver.full_matches(skeleton)
        solver_stats = getattr(self.solver, "stats", None)
        if solver_stats is not None:
            self.stats.input_nodes += solver_stats.input_nodes
            self.stats.intermediate_tuples += (
                solver_stats.intermediate_tuples + len(rows)
            )
            solver_stats.input_nodes = 0
            solver_stats.intermediate_tuples = 0
        return rows

    def _forbidden_images(
        self, query: GTPQ, parent_id: str, child_id: str
    ) -> set[int]:
        """Images of ``parent_id`` that match the forbidden child branch.

        When the branch itself carries disjunction/negation the auxiliary
        query is decomposed recursively (the branch is strictly smaller,
        so this terminates).
        """
        aux = _anchor_with_subtree(query, parent_id, child_id)
        if aux.is_conjunctive():
            rows = self._solve(aux)
            return {row[parent_id] for row in rows}
        nested = DecomposingEvaluator(self.solver, name_suffix="")
        answers, nested_stats = nested.evaluate_with_stats(aux)
        self.stats.input_nodes += nested_stats.input_nodes
        self.stats.intermediate_tuples += nested_stats.intermediate_tuples
        return {row[0] for row in answers}


def enumerate_conjunctive_variants(
    query: GTPQ,
) -> list[tuple[GTPQ, list[tuple[str, str]]]]:
    """All conjunctive variants of ``query`` with their anti-join demands.

    Returns ``(skeleton, negatives)`` pairs where ``skeleton`` is a
    conjunctive GTPQ (all selected nodes backbone, outputs extended with
    anti-join anchors) and ``negatives`` lists ``(parent, child)`` pairs
    whose branch must be absent.
    """
    from ..logic import dnf_terms

    term_choices: dict[str, list[dict[str, bool]]] = {}
    for node_id in query.nodes:
        terms = dnf_terms(query.fs(node_id))
        term_choices[node_id] = terms

    variants: list[tuple[GTPQ, list[tuple[str, str]]]] = []

    def backbone_children(node_id: str) -> list[str]:
        return [
            c for c in query.children[node_id] if query.nodes[c].is_backbone
        ]

    def expand(selected: dict[str, dict[str, bool]], frontier: list[str]):
        """Depth-first enumeration of per-node term choices."""
        if not frontier:
            variants.append(_build_variant(query, selected))
            return
        node_id, *rest = frontier
        for term in term_choices[node_id]:
            new_selected = dict(selected)
            new_selected[node_id] = term
            new_frontier = list(rest)
            new_frontier.extend(backbone_children(node_id))
            new_frontier.extend(c for c, positive in term.items() if positive)
            expand(new_selected, new_frontier)

    expand({}, [query.root])
    return variants


def _build_variant(
    query: GTPQ, selected: dict[str, dict[str, bool]]
) -> tuple[GTPQ, list[tuple[str, str]]]:
    member_ids = list(selected)
    member_set = set(member_ids)
    negatives = [
        (node_id, child_id)
        for node_id, term in selected.items()
        for child_id, positive in term.items()
        if not positive
    ]
    nodes = {
        m: QueryNode(m, query.attribute(m), True) for m in member_ids
    }
    parent = {
        m: query.parent[m]
        for m in member_ids
        if m != query.root and query.parent[m] in member_set
    }
    children = {
        m: [c for c in query.children[m] if c in member_set] for m in member_ids
    }
    edge_types = {m: query.edge_type(m) for m in parent}
    outputs = list(
        dict.fromkeys(
            list(query.outputs) + [parent_id for parent_id, __ in negatives]
        )
    )
    skeleton = GTPQ(
        root=query.root,
        nodes=nodes,
        parent=parent,
        children=children,
        edge_types=edge_types,
        structural={},
        outputs=outputs,
    )
    return skeleton, negatives


def _anchor_with_subtree(query: GTPQ, parent_id: str, child_id: str) -> GTPQ:
    """Query "``parent_id`` having the ``child_id`` branch".

    The anchor and the branch root become backbone; deeper nodes keep
    their original status and structural predicates (which may be
    non-conjunctive — the caller decomposes recursively in that case).
    """
    members = [parent_id] + query.subtree_nodes(child_id)
    member_set = set(members)
    nodes = {
        m: QueryNode(
            m,
            query.attribute(m),
            True if m in (parent_id, child_id) else query.nodes[m].is_backbone,
        )
        for m in members
    }
    parent = {
        m: query.parent[m]
        for m in members
        if m != parent_id and query.parent[m] in member_set
    }
    children = {
        m: [c for c in query.children[m] if c in member_set] for m in members
    }
    edge_types = {m: query.edge_type(m) for m in parent}
    structural = {m: query.fs(m) for m in members if m != parent_id}
    return GTPQ(
        root=parent_id,
        nodes=nodes,
        parent=parent,
        children=children,
        edge_types=edge_types,
        structural=structural,
        outputs=[parent_id],
    )
