"""Propositional formula abstract syntax trees.

GTPQ structural predicates (paper Section 2) are propositional formulas over
variables associated with predicate-child query nodes.  This module provides
an immutable, hashable AST with light-weight smart constructors.  Heavier
transformations (substitution, normal forms) live in
:mod:`repro.logic.transform`, and satisfiability in :mod:`repro.logic.sat`.

Formulas are built from:

* :data:`TRUE` / :data:`FALSE` — the constants ``1`` and ``0``;
* :class:`Var` — a named propositional variable;
* :class:`Not` — negation;
* :class:`And` / :class:`Or` — n-ary conjunction / disjunction.

The smart constructors :func:`land`, :func:`lor` and :func:`lnot` perform
cheap, local simplifications (constant folding, flattening of nested
same-kind connectives, deduplication of operands) so that formulas produced
by repeated substitution stay small.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Formula:
    """Base class of all propositional formulas.

    Instances are immutable and hashable; ``==`` is structural equality
    (after the normalization done by the smart constructors, *not* logical
    equivalence).  Python's ``&``, ``|`` and ``~`` operators are overloaded
    as conjunction, disjunction and negation for readable query
    construction::

        fs = Var("u2") & ~Var("u3")
    """

    # ``_vars`` lazily caches the variables() frozenset; formulas are
    # immutable, so the set can never go stale.
    __slots__ = ("_vars",)

    def __and__(self, other: "Formula") -> "Formula":
        return land(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return lor(self, other)

    def __invert__(self) -> "Formula":
        return lnot(self)

    # Pickle support: the default slot-state protocol restores slots via
    # setattr, which the subclasses' immutability guards reject, so
    # formulas inside persisted plans would fail to *un*pickle.  Spell
    # the state out and restore it through object.__setattr__.
    def __getstate__(self):
        state = {}
        for klass in type(self).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                try:
                    state[slot] = getattr(self, slot)
                except AttributeError:
                    pass  # the _vars memo may be unset
        return state

    def __setstate__(self, state):
        for slot, value in state.items():
            object.__setattr__(self, slot, value)

    def variables(self) -> frozenset[str]:
        """Return the set of variable names occurring in the formula.

        Computed once and cached on the instance; callers on hot paths
        (the pruning loops, the codegen backend) may call this freely.
        """
        try:
            return self._vars
        except AttributeError:
            pass
        out: set[str] = set()
        stack: list[Formula] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Var):
                out.add(node.name)
            elif isinstance(node, Not):
                stack.append(node.child)
            elif isinstance(node, (And, Or)):
                stack.extend(node.children)
        frozen = frozenset(out)
        # The immutability guards block normal attribute writes; the
        # cache slot is the one sanctioned exception.
        object.__setattr__(self, "_vars", frozen)
        return frozen

    def walk(self) -> Iterator["Formula"]:
        """Yield every sub-formula (including ``self``), pre-order."""
        stack: list[Formula] = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Not):
                stack.append(node.child)
            elif isinstance(node, (And, Or)):
                stack.extend(reversed(node.children))

    def size(self) -> int:
        """Number of AST nodes; a rough complexity measure for tests."""
        return sum(1 for _ in self.walk())

    def is_constant(self) -> bool:
        return isinstance(self, Const)


class Const(Formula):
    """A Boolean constant.  Use the singletons :data:`TRUE` / :data:`FALSE`."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        object.__setattr__(self, "value", bool(value))

    def __setattr__(self, *args):  # pragma: no cover - immutability guard
        raise AttributeError("Const is immutable")

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"

    def __str__(self) -> str:
        return "1" if self.value else "0"

    def __eq__(self, other) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))


#: The constant true formula (paper notation: ``1``).
TRUE = Const(True)
#: The constant false formula (paper notation: ``0``).
FALSE = Const(False)


class Var(Formula):
    """A propositional variable.

    In structural predicates the variable name is the identifier of the
    query node the variable belongs to (``p_u`` in the paper is written
    simply ``Var(u)`` here).
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        object.__setattr__(self, "name", str(name))

    def __setattr__(self, *args):  # pragma: no cover - immutability guard
        raise AttributeError("Var is immutable")

    def __repr__(self) -> str:
        return f"Var({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("var", self.name))


class Not(Formula):
    """Negation.  Built via :func:`lnot`, which folds double negation."""

    __slots__ = ("child",)

    def __init__(self, child: Formula):
        object.__setattr__(self, "child", child)

    def __setattr__(self, *args):  # pragma: no cover - immutability guard
        raise AttributeError("Not is immutable")

    def __repr__(self) -> str:
        return f"Not({self.child!r})"

    def __str__(self) -> str:
        return f"!{_wrap(self.child)}"

    def __eq__(self, other) -> bool:
        return isinstance(other, Not) and self.child == other.child

    def __hash__(self) -> int:
        return hash(("not", self.child))


class _Nary(Formula):
    """Shared implementation of n-ary connectives (conjunction/disjunction)."""

    __slots__ = ("children",)
    _tag = ""
    _sep = ""

    def __init__(self, children: Iterable[Formula]):
        object.__setattr__(self, "children", tuple(children))

    def __setattr__(self, *args):  # pragma: no cover - immutability guard
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.children)
        return f"{type(self).__name__}([{inner}])"

    def __str__(self) -> str:
        return self._sep.join(_wrap(c) for c in self.children)

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and self.children == other.children

    def __hash__(self) -> int:
        return hash((self._tag, self.children))


class And(_Nary):
    """N-ary conjunction.  Built via :func:`land`."""

    __slots__ = ()
    _tag = "and"
    _sep = " & "


class Or(_Nary):
    """N-ary disjunction.  Built via :func:`lor`."""

    __slots__ = ()
    _tag = "or"
    _sep = " | "


def _wrap(f: Formula) -> str:
    """Parenthesize compound operands when stringifying."""
    if isinstance(f, (And, Or)):
        return f"({f})"
    return str(f)


def land(*operands: Formula) -> Formula:
    """Smart conjunction: folds constants, flattens, deduplicates.

    ``land()`` with no operands is :data:`TRUE` (the neutral element), which
    matches the paper's convention ``fs(u) = 1`` for nodes without predicate
    children.
    """
    flat: list[Formula] = []
    seen: set[Formula] = set()
    for op in operands:
        if op is None:
            raise TypeError("land() operand is None")
        if isinstance(op, Const):
            if not op.value:
                return FALSE
            continue
        parts = op.children if isinstance(op, And) else (op,)
        for part in parts:
            if part not in seen:
                seen.add(part)
                flat.append(part)
    # x & !x -> FALSE (cheap complementary-literal check)
    for part in flat:
        if isinstance(part, Not) and part.child in seen:
            return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(flat)


def lor(*operands: Formula) -> Formula:
    """Smart disjunction: folds constants, flattens, deduplicates.

    ``lor()`` with no operands is :data:`FALSE` (the neutral element).
    """
    flat: list[Formula] = []
    seen: set[Formula] = set()
    for op in operands:
        if op is None:
            raise TypeError("lor() operand is None")
        if isinstance(op, Const):
            if op.value:
                return TRUE
            continue
        parts = op.children if isinstance(op, Or) else (op,)
        for part in parts:
            if part not in seen:
                seen.add(part)
                flat.append(part)
    for part in flat:
        if isinstance(part, Not) and part.child in seen:
            return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(flat)


def lnot(operand: Formula) -> Formula:
    """Smart negation: folds constants and double negation."""
    if isinstance(operand, Const):
        return FALSE if operand.value else TRUE
    if isinstance(operand, Not):
        return operand.child
    return Not(operand)


def lxor(a: Formula, b: Formula) -> Formula:
    """Exclusive-or, expressed with the basic connectives.

    Used by the paper's independently-constraint-node test
    (Section 3.1): ``(f[p/1] XOR f[p/0]) AND fs(u)``.
    """
    return lor(land(a, lnot(b)), land(lnot(a), b))


def implies(a: Formula, b: Formula) -> Formula:
    """Material implication ``a -> b`` as a formula."""
    return lor(lnot(a), b)


def var(name: str) -> Var:
    """Convenience factory mirroring the paper's ``p_u`` notation."""
    return Var(name)
