"""Tseitin transformation: linear-size equisatisfiable CNF.

The distribution-based CNF of :mod:`repro.logic.transform` can explode
exponentially — the very cost the paper charges to AND/OR- and B-twig
normalization.  The SAT solver therefore encodes via Tseitin: one fresh
variable per compound sub-formula, three-or-fewer clauses per gate, size
linear in the formula.
"""

from __future__ import annotations

from .formula import And, Const, Formula, Not, Or, Var

#: A literal is (variable_index, polarity); clauses are literal lists.
Literal = tuple[int, bool]
Clause = list[Literal]


class CnfInstance:
    """A CNF instance over integer variables, ready for DPLL.

    Attributes:
        num_vars: total number of variables (original + auxiliary).
        clauses: list of clauses.
        var_ids: mapping from original variable names to variable indices.
    """

    def __init__(self, num_vars: int, clauses: list[Clause], var_ids: dict[str, int]):
        self.num_vars = num_vars
        self.clauses = clauses
        self.var_ids = var_ids

    def decode(self, model: dict[int, bool]) -> dict[str, bool]:
        """Project a solver model back onto the original variables."""
        return {name: model.get(index, False) for name, index in self.var_ids.items()}


def tseitin_cnf(formula: Formula) -> CnfInstance:
    """Encode ``formula`` as an equisatisfiable CNF instance.

    The returned instance is satisfiable iff ``formula`` is, and every model
    restricted to the original variables satisfies ``formula``.
    """
    encoder = _Encoder()
    root = encoder.encode(formula)
    if isinstance(root, bool):
        clauses = [] if root else [[]]
        return CnfInstance(encoder.next_id, clauses, encoder.var_ids)
    encoder.clauses.append([root])
    return CnfInstance(encoder.next_id, encoder.clauses, encoder.var_ids)


class _Encoder:
    def __init__(self):
        self.next_id = 0
        self.var_ids: dict[str, int] = {}
        self.clauses: list[Clause] = []
        self._cache: dict[Formula, Literal | bool] = {}

    def _fresh(self) -> int:
        index = self.next_id
        self.next_id += 1
        return index

    def encode(self, formula: Formula) -> Literal | bool:
        """Return the literal standing for ``formula`` (or a constant)."""
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        result = self._encode(formula)
        self._cache[formula] = result
        return result

    def _encode(self, formula: Formula) -> Literal | bool:
        if isinstance(formula, Const):
            return formula.value
        if isinstance(formula, Var):
            if formula.name not in self.var_ids:
                self.var_ids[formula.name] = self._fresh()
            return (self.var_ids[formula.name], True)
        if isinstance(formula, Not):
            inner = self.encode(formula.child)
            if isinstance(inner, bool):
                return not inner
            index, polarity = inner
            return (index, not polarity)
        if isinstance(formula, (And, Or)):
            is_and = isinstance(formula, And)
            parts: list[Literal] = []
            for child in formula.children:
                encoded = self.encode(child)
                if isinstance(encoded, bool):
                    if encoded != is_and:
                        # FALSE inside AND / TRUE inside OR short-circuits.
                        return not is_and
                    continue  # neutral operand
                parts.append(encoded)
            if not parts:
                return is_and
            if len(parts) == 1:
                return parts[0]
            gate = self._fresh()
            if is_and:
                # gate -> part_i ; (all parts) -> gate
                for index, polarity in parts:
                    self.clauses.append([(gate, False), (index, polarity)])
                self.clauses.append(
                    [(index, not polarity) for index, polarity in parts] + [(gate, True)]
                )
            else:
                # part_i -> gate ; gate -> (some part)
                for index, polarity in parts:
                    self.clauses.append([(index, not polarity), (gate, True)])
                self.clauses.append(
                    [(gate, False)] + [(index, polarity) for index, polarity in parts]
                )
            return (gate, True)
        raise TypeError(f"not a formula: {formula!r}")
