"""Text parser for propositional formulas.

Grammar (standard precedence ``!`` > ``&`` > ``|``)::

    formula   := or_expr
    or_expr   := and_expr ( ("|" | "or")  and_expr )*
    and_expr  := not_expr ( ("&" | "and") not_expr )*
    not_expr  := ("!" | "~" | "not") not_expr | atom
    atom      := "0" | "1" | "true" | "false" | IDENT | "(" formula ")"

Identifiers match ``[A-Za-z_][A-Za-z0-9_.:-]*`` so that query node ids like
``u2`` or ``bidder`` can be used directly, mirroring the paper's Table 4
predicates (e.g. ``"bidder | seller"`` for DIS1).
"""

from __future__ import annotations

import re

from .formula import FALSE, TRUE, Formula, Var, land, lnot, lor


class FormulaParseError(ValueError):
    """Raised when the input text is not a well-formed formula."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<and>&&?|\band\b|∧)"
    r"|(?P<or>\|\|?|\bor\b|∨)|(?P<not>!|~|\bnot\b|¬)"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_.:-]*|[01]))",
    re.IGNORECASE,
)

_CONSTANTS = {"0": FALSE, "false": FALSE, "1": TRUE, "true": TRUE}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise FormulaParseError(f"unexpected input at {remainder[:20]!r}")
        pos = match.end()
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind)))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> str | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index][0]
        return None

    def _advance(self) -> tuple[str, str]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def parse(self) -> Formula:
        result = self._or_expr()
        if self._index != len(self._tokens):
            kind, value = self._tokens[self._index]
            raise FormulaParseError(f"trailing input at token {value!r}")
        return result

    def _or_expr(self) -> Formula:
        operands = [self._and_expr()]
        while self._peek() == "or":
            self._advance()
            operands.append(self._and_expr())
        return lor(*operands) if len(operands) > 1 else operands[0]

    def _and_expr(self) -> Formula:
        operands = [self._not_expr()]
        while self._peek() == "and":
            self._advance()
            operands.append(self._not_expr())
        return land(*operands) if len(operands) > 1 else operands[0]

    def _not_expr(self) -> Formula:
        if self._peek() == "not":
            self._advance()
            return lnot(self._not_expr())
        return self._atom()

    def _atom(self) -> Formula:
        kind = self._peek()
        if kind == "lparen":
            self._advance()
            inner = self._or_expr()
            if self._peek() != "rparen":
                raise FormulaParseError("missing closing parenthesis")
            self._advance()
            return inner
        if kind == "ident":
            _, value = self._advance()
            constant = _CONSTANTS.get(value.lower())
            if constant is not None:
                return constant
            return Var(value)
        raise FormulaParseError(
            "expected a variable, constant or parenthesized formula"
            + (f", found {self._tokens[self._index][1]!r}" if kind else " at end of input")
        )


def parse_formula(text: str) -> Formula:
    """Parse ``text`` into a :class:`~repro.logic.formula.Formula`.

    >>> str(parse_formula("!u6 | (u7 & u8)"))
    '!u6 | (u7 & u8)'
    """
    tokens = _tokenize(text)
    if not tokens:
        raise FormulaParseError("empty formula")
    return _Parser(tokens).parse()
