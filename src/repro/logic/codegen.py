"""Formula → Python lowering for the plan-codegen backend.

The pruning loops evaluate one structural predicate per candidate, and
the generic evaluator (:func:`repro.logic.assignment.evaluate`) walks
the AST recursively with a dict-backed valuation every time.  This
module lowers a :class:`~repro.logic.formula.Formula` *once* into a flat
Python boolean expression — constants folded away, each variable
replaced by a caller-chosen expression — so a compiled prune loop pays
zero AST traversal and zero dict lookups per candidate.

Two artifacts:

* :func:`lower_formula` — the expression *source* (a string), used by
  the source-emitting backend (:mod:`repro.plan.codegen`), which splices
  it into a generated prune loop;
* :func:`compile_formula` — a callable over a positional tuple of
  variable bits, used by the closure-mode backend and by tests as an
  executable cross-check of the lowering.

Both share :func:`lower_formula`; ``compile_formula`` wraps the lowered
expression in a ``lambda`` and runs it through :func:`compile`, so the
two artifacts cannot drift apart.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from .formula import And, Const, Formula, Not, Or, Var


class LoweringError(ValueError):
    """A formula cannot be lowered (unknown node kind or unmapped variable)."""


def lower_formula(formula: Formula, names: Mapping[str, str]) -> str:
    """Lower ``formula`` to a Python boolean expression string.

    Args:
        formula: the formula to lower.
        names: per variable name, the Python expression to substitute —
            a local (``"_b0"``), a membership test (``"(_x in _ps0)"``),
            or any other boolean-valued expression.  Every variable of
            the formula must be mapped.

    Constants fold at lowering time: the smart constructors already
    guarantee a formula is either the constant ``TRUE``/``FALSE`` or
    constant-free, so the emitted expression never tests a literal.
    """
    if isinstance(formula, Const):
        return "True" if formula.value else "False"
    if isinstance(formula, Var):
        try:
            return names[formula.name]
        except KeyError:
            raise LoweringError(f"no expression for variable {formula.name!r}") from None
    if isinstance(formula, Not):
        return f"(not {lower_formula(formula.child, names)})"
    if isinstance(formula, And):
        return "(" + " and ".join(lower_formula(c, names) for c in formula.children) + ")"
    if isinstance(formula, Or):
        return "(" + " or ".join(lower_formula(c, names) for c in formula.children) + ")"
    raise LoweringError(f"cannot lower {formula!r}")


def compile_formula(formula: Formula, variables: Sequence[str]) -> Callable[[Sequence[bool]], bool]:
    """Compile ``formula`` to ``bits -> bool`` over positional variables.

    ``variables`` fixes the bit order: ``bits[i]`` is the valuation of
    ``variables[i]``.  Every variable of the formula must appear in
    ``variables`` (extras are allowed and ignored).  The result is a
    flat, non-recursive evaluator: one ``lambda`` whose body is the
    lowered expression.
    """
    names = {name: f"_bits[{position}]" for position, name in enumerate(variables)}
    source = f"lambda _bits: bool({lower_formula(formula, names)})"
    namespace = {"__builtins__": {}, "bool": bool}
    return eval(compile(source, "<repro.logic.codegen>", "eval"), namespace)
