"""Propositional logic engine (substrate S1 in DESIGN.md).

Everything the paper's Sections 2–4 need from propositional logic:
formula ASTs, parsing, evaluation, substitution/renaming, normal forms,
Tseitin encoding, and a DPLL solver exposing SAT / tautology / entailment /
equivalence decision procedures.
"""

from .assignment import (
    all_assignments,
    brute_force_satisfiable,
    brute_force_tautology,
    count_models,
    evaluate,
    models,
)
from .codegen import LoweringError, compile_formula, lower_formula
from .formula import (
    FALSE,
    TRUE,
    And,
    Const,
    Formula,
    Not,
    Or,
    Var,
    implies,
    land,
    lnot,
    lor,
    lxor,
    var,
)
from .parser import FormulaParseError, parse_formula
from .sat import (
    disjoint,
    entails,
    equivalent,
    is_satisfiable,
    is_tautology,
    satisfying_assignment,
    xor_satisfiable,
)
from .transform import (
    cnf_clauses,
    dnf_terms,
    rename,
    simplify,
    substitute,
    to_cnf,
    to_dnf,
    to_nnf,
)
from .tseitin import CnfInstance, tseitin_cnf

__all__ = [
    "FALSE",
    "TRUE",
    "And",
    "CnfInstance",
    "Const",
    "Formula",
    "FormulaParseError",
    "LoweringError",
    "Not",
    "Or",
    "Var",
    "all_assignments",
    "brute_force_satisfiable",
    "brute_force_tautology",
    "cnf_clauses",
    "compile_formula",
    "count_models",
    "disjoint",
    "dnf_terms",
    "entails",
    "equivalent",
    "evaluate",
    "implies",
    "is_satisfiable",
    "is_tautology",
    "land",
    "lnot",
    "lor",
    "lower_formula",
    "lxor",
    "models",
    "parse_formula",
    "rename",
    "satisfying_assignment",
    "simplify",
    "substitute",
    "to_cnf",
    "to_dnf",
    "to_nnf",
    "tseitin_cnf",
    "var",
]
