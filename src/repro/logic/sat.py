"""DPLL satisfiability solving and derived decision procedures.

Section 3 of the paper reduces every hard query-analysis question to SAT
or TAUT instances over structural-predicate variables:

* satisfiability of a GTPQ  -> SAT of ``fa(root)`` and ``fcs(root)`` (Thm 1);
* containment (Thm 3)       -> a tautology check per candidate homomorphism;
* minimization (Alg. 1)     -> tautology checks ``fcs(root) -> ±p_u``.

The paper argues (Sec. 3.3) that off-the-shelf SAT is fine because queries
are small; this module is that SAT solver: Tseitin encoding + DPLL with
unit propagation and pure-literal elimination.
"""

from __future__ import annotations

from .formula import Formula, land, lnot, lor
from .tseitin import Clause, CnfInstance, tseitin_cnf


def is_satisfiable(formula: Formula) -> bool:
    """True iff some assignment satisfies ``formula``."""
    return satisfying_assignment(formula) is not None


def satisfying_assignment(formula: Formula) -> dict[str, bool] | None:
    """Return a model of ``formula`` over its original variables, or None."""
    instance = tseitin_cnf(formula)
    model = _dpll(instance)
    if model is None:
        return None
    return instance.decode(model)


def is_tautology(formula: Formula) -> bool:
    """True iff ``formula`` holds under every assignment."""
    return not is_satisfiable(lnot(formula))


def entails(antecedent: Formula, consequent: Formula) -> bool:
    """True iff ``antecedent -> consequent`` is a tautology.

    This is the workhorse of the similarity/homomorphism conditions
    (``ftr(u2) -> ftr(u1)[u1 |-> u2]`` etc.).
    """
    return not is_satisfiable(land(antecedent, lnot(consequent)))


def equivalent(left: Formula, right: Formula) -> bool:
    """True iff the two formulas agree under every assignment."""
    return entails(left, right) and entails(right, left)


def _dpll(instance: CnfInstance) -> dict[int, bool] | None:
    """DPLL with unit propagation and pure-literal elimination.

    Returns a (possibly partial) model as ``{var_index: value}`` or ``None``
    if unsatisfiable.  Clauses are represented as literal lists; the solver
    copies the clause database on branching, which is acceptable for the
    query-sized instances this library produces.
    """
    clauses = [list(clause) for clause in instance.clauses]
    assignment: dict[int, bool] = {}
    if not _search(clauses, assignment):
        return None
    return assignment


def _search(clauses: list[Clause], assignment: dict[int, bool]) -> bool:
    clauses = _propagate(clauses, assignment)
    if clauses is None:
        return False
    if not clauses:
        return True

    # Pure literal elimination: a variable occurring with one polarity only
    # can be set to that polarity without loss.
    polarity_seen: dict[int, set[bool]] = {}
    for clause in clauses:
        for index, polarity in clause:
            polarity_seen.setdefault(index, set()).add(polarity)
    pures = {
        index: next(iter(polarities))
        for index, polarities in polarity_seen.items()
        if len(polarities) == 1
    }
    if pures:
        assignment.update(pures)
        remaining = [
            clause
            for clause in clauses
            if not any(index in pures for index, _ in clause)
        ]
        return _search(remaining, assignment)

    # Branch on the first literal of the shortest clause.
    branch_clause = min(clauses, key=len)
    index, polarity = branch_clause[0]
    for value in (polarity, not polarity):
        trail = dict(assignment)
        trail[index] = value
        copied = [list(clause) for clause in clauses]
        if _search(copied, trail):
            assignment.clear()
            assignment.update(trail)
            return True
    return False


def _propagate(clauses: list[Clause], assignment: dict[int, bool]) -> list[Clause] | None:
    """Unit propagation; returns simplified clauses or None on conflict."""
    changed = True
    while changed:
        changed = False
        next_clauses: list[Clause] = []
        for clause in clauses:
            simplified: Clause = []
            satisfied = False
            for index, polarity in clause:
                if index in assignment:
                    if assignment[index] == polarity:
                        satisfied = True
                        break
                    continue  # literal falsified, drop it
                simplified.append((index, polarity))
            if satisfied:
                continue
            if not simplified:
                return None  # empty clause: conflict
            if len(simplified) == 1:
                index, polarity = simplified[0]
                assignment[index] = polarity
                changed = True
            else:
                next_clauses.append(simplified)
        clauses = next_clauses
    return clauses


def implication_holds(antecedents: list[Formula], consequent: Formula) -> bool:
    """Convenience: does the conjunction of ``antecedents`` entail ``consequent``?"""
    return entails(land(*antecedents), consequent)


def disjoint(left: Formula, right: Formula) -> bool:
    """True iff ``left & right`` is unsatisfiable (no shared model)."""
    return not is_satisfiable(land(left, right))


def xor_satisfiable(left: Formula, right: Formula) -> bool:
    """True iff some assignment distinguishes ``left`` from ``right``.

    Equivalent to "left and right are *not* logically equivalent"; used by
    the independently-constraint-node test of Section 3.1.
    """
    return is_satisfiable(lor(land(left, lnot(right)), land(lnot(left), right)))
