"""Truth assignments and formula evaluation.

The GTEA pruning passes (paper Procedure 6) repeatedly evaluate a structural
predicate ``fs(u)`` under a valuation ``val`` of its child variables; this
module provides that evaluation plus helpers to enumerate models for the
exhaustive checks used in tests and in the analysis package.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator, Mapping

from .formula import And, Const, Formula, Not, Or, Var

Assignment = Mapping[str, bool]


def evaluate(formula: Formula, assignment: Assignment, default: bool | None = None) -> bool:
    """Evaluate ``formula`` under ``assignment``.

    Args:
        formula: the formula to evaluate.
        assignment: mapping from variable name to truth value.
        default: value used for variables missing from ``assignment``; if
            ``None`` (the default) a missing variable raises ``KeyError``,
            which catches engine bugs where a child valuation was skipped.

    Returns:
        The truth value of the formula.
    """
    if isinstance(formula, Const):
        return formula.value
    if isinstance(formula, Var):
        if formula.name in assignment:
            return bool(assignment[formula.name])
        if default is None:
            raise KeyError(f"no value for variable {formula.name!r}")
        return default
    if isinstance(formula, Not):
        return not evaluate(formula.child, assignment, default)
    if isinstance(formula, And):
        return all(evaluate(c, assignment, default) for c in formula.children)
    if isinstance(formula, Or):
        return any(evaluate(c, assignment, default) for c in formula.children)
    raise TypeError(f"not a formula: {formula!r}")


def all_assignments(variables: Iterable[str]) -> Iterator[dict[str, bool]]:
    """Yield every assignment over ``variables`` (2^n of them).

    Only used for small variable counts (query predicates are tiny in
    practice, as the paper notes in Section 3.3).
    """
    names = sorted(set(variables))
    for values in product((False, True), repeat=len(names)):
        yield dict(zip(names, values))


def models(formula: Formula) -> Iterator[dict[str, bool]]:
    """Yield all satisfying assignments of ``formula`` by enumeration."""
    for assignment in all_assignments(formula.variables()):
        if evaluate(formula, assignment):
            yield assignment


def count_models(formula: Formula) -> int:
    """Number of satisfying assignments over the formula's own variables."""
    return sum(1 for _ in models(formula))


def brute_force_satisfiable(formula: Formula) -> bool:
    """Exhaustive satisfiability check; test oracle for the DPLL solver."""
    return next(models(formula), None) is not None


def brute_force_tautology(formula: Formula) -> bool:
    """Exhaustive tautology check; test oracle for the DPLL solver."""
    return all(
        evaluate(formula, assignment)
        for assignment in all_assignments(formula.variables())
    )
