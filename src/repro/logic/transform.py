"""Formula transformations: substitution, simplification, normal forms.

The analysis algorithms of Section 3 are phrased in terms of these
operations: ``fs(u)[p/x]`` (Algorithm 1 lines 6/11/18 and the
independently-constraint-node test), variable renaming ``f[u1 -> u2]``
(similarity and homomorphism checks) and CNF/DNF conversion (used by the
decomposition wrapper of Appendix C.2 and referenced by the B-twig
comparison at the end of Section 2).
"""

from __future__ import annotations

from typing import Mapping

from .formula import (
    FALSE,
    TRUE,
    And,
    Const,
    Formula,
    Not,
    Or,
    Var,
    land,
    lnot,
    lor,
)


def substitute(formula: Formula, bindings: Mapping[str, Formula | bool]) -> Formula:
    """Replace variables by formulas or constants, simplifying on the way.

    ``substitute(f, {"p": True})`` is the paper's ``f[p/1]``;
    ``substitute(f, {"p": Var("q")})`` is the renaming ``f[p -> q]``.
    """
    resolved: dict[str, Formula] = {}
    for name, value in bindings.items():
        if isinstance(value, Formula):
            resolved[name] = value
        else:
            resolved[name] = TRUE if value else FALSE
    return _substitute(formula, resolved)


def _substitute(formula: Formula, bindings: Mapping[str, Formula]) -> Formula:
    if isinstance(formula, Const):
        return formula
    if isinstance(formula, Var):
        return bindings.get(formula.name, formula)
    if isinstance(formula, Not):
        return lnot(_substitute(formula.child, bindings))
    if isinstance(formula, And):
        return land(*(_substitute(c, bindings) for c in formula.children))
    if isinstance(formula, Or):
        return lor(*(_substitute(c, bindings) for c in formula.children))
    raise TypeError(f"not a formula: {formula!r}")


def rename(formula: Formula, mapping: Mapping[str, str]) -> Formula:
    """Rename variables: the paper's ``f[u1 |-> u2]`` notation."""
    return _substitute(formula, {old: Var(new) for old, new in mapping.items()})


def simplify(formula: Formula) -> Formula:
    """Rebuild the formula through the smart constructors.

    Catches simplifications that only become visible after substitution
    (nested constants, duplicated or complementary operands).  Idempotent.
    """
    if isinstance(formula, (Const, Var)):
        return formula
    if isinstance(formula, Not):
        return lnot(simplify(formula.child))
    if isinstance(formula, And):
        return land(*(simplify(c) for c in formula.children))
    if isinstance(formula, Or):
        return lor(*(simplify(c) for c in formula.children))
    raise TypeError(f"not a formula: {formula!r}")


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negation only on variables."""
    return _nnf(formula, negated=False)


def _nnf(formula: Formula, negated: bool) -> Formula:
    if isinstance(formula, Const):
        return lnot(formula) if negated else formula
    if isinstance(formula, Var):
        return Not(formula) if negated else formula
    if isinstance(formula, Not):
        return _nnf(formula.child, not negated)
    if isinstance(formula, And):
        parts = (_nnf(c, negated) for c in formula.children)
        return lor(*parts) if negated else land(*parts)
    if isinstance(formula, Or):
        parts = (_nnf(c, negated) for c in formula.children)
        return land(*parts) if negated else lor(*parts)
    raise TypeError(f"not a formula: {formula!r}")


def to_cnf(formula: Formula) -> Formula:
    """Conjunctive normal form by distribution.

    Worst-case exponential (this blow-up is exactly the cost the paper
    attributes to the OR-block normalization of AND/OR- and B-twigs at the
    end of Section 2); fine for the small predicates found in queries.  For
    satisfiability of large formulas use
    :func:`repro.logic.tseitin.tseitin_cnf` instead.
    """
    return _distribute_cnf(to_nnf(formula))


def _distribute_cnf(formula: Formula) -> Formula:
    if isinstance(formula, (Const, Var, Not)):
        return formula
    if isinstance(formula, And):
        return land(*(_distribute_cnf(c) for c in formula.children))
    if isinstance(formula, Or):
        children = [_distribute_cnf(c) for c in formula.children]
        # Fold pairwise: (A & B) | rest -> (A | rest) & (B | rest)
        result = children[0]
        for child in children[1:]:
            result = _or_of_cnfs(result, child)
        return result
    raise TypeError(f"not a formula: {formula!r}")


def _or_of_cnfs(left: Formula, right: Formula) -> Formula:
    left_clauses = left.children if isinstance(left, And) else (left,)
    right_clauses = right.children if isinstance(right, And) else (right,)
    clauses = [lor(lc, rc) for lc in left_clauses for rc in right_clauses]
    return land(*clauses)


def to_dnf(formula: Formula) -> Formula:
    """Disjunctive normal form by distribution.

    Used by the baseline decomposition wrapper (Appendix C.2): a GTPQ whose
    predicates contain OR/NOT decomposes into one conjunctive TPQ per DNF
    term; the paper notes the term count may be exponential, and it is.
    """
    return _distribute_dnf(to_nnf(formula))


def _distribute_dnf(formula: Formula) -> Formula:
    if isinstance(formula, (Const, Var, Not)):
        return formula
    if isinstance(formula, Or):
        return lor(*(_distribute_dnf(c) for c in formula.children))
    if isinstance(formula, And):
        children = [_distribute_dnf(c) for c in formula.children]
        result = children[0]
        for child in children[1:]:
            result = _and_of_dnfs(result, child)
        return result
    raise TypeError(f"not a formula: {formula!r}")


def _and_of_dnfs(left: Formula, right: Formula) -> Formula:
    left_terms = left.children if isinstance(left, Or) else (left,)
    right_terms = right.children if isinstance(right, Or) else (right,)
    terms = [land(lt, rt) for lt in left_terms for rt in right_terms]
    return lor(*terms)


def dnf_terms(formula: Formula) -> list[dict[str, bool]]:
    """Enumerate DNF terms as ``{variable: polarity}`` dictionaries.

    Terms containing a variable with both polarities are dropped (they are
    unsatisfiable).  ``TRUE`` yields one empty term; ``FALSE`` yields none.
    """
    dnf = to_dnf(formula)
    if isinstance(dnf, Const):
        return [{}] if dnf.value else []
    terms = dnf.children if isinstance(dnf, Or) else (dnf,)
    out: list[dict[str, bool]] = []
    for term in terms:
        literals = term.children if isinstance(term, And) else (term,)
        term_map: dict[str, bool] = {}
        consistent = True
        for literal in literals:
            if isinstance(literal, Var):
                name, polarity = literal.name, True
            elif isinstance(literal, Not) and isinstance(literal.child, Var):
                name, polarity = literal.child.name, False
            else:  # pragma: no cover - DNF guarantees literals
                raise TypeError(f"not a literal: {literal!r}")
            if term_map.get(name, polarity) != polarity:
                consistent = False
                break
            term_map[name] = polarity
        if consistent:
            out.append(term_map)
    return out


def cnf_clauses(formula: Formula) -> list[list[tuple[str, bool]]]:
    """CNF clause list as ``[(variable, polarity), ...]`` per clause.

    An empty clause list means the formula is valid (no constraints);
    a clause list containing an empty clause means it is unsatisfiable.
    """
    cnf = to_cnf(formula)
    if isinstance(cnf, Const):
        return [] if cnf.value else [[]]
    clauses = cnf.children if isinstance(cnf, And) else (cnf,)
    out: list[list[tuple[str, bool]]] = []
    for clause in clauses:
        literals = clause.children if isinstance(clause, Or) else (clause,)
        lits: list[tuple[str, bool]] = []
        for literal in literals:
            if isinstance(literal, Var):
                lits.append((literal.name, True))
            elif isinstance(literal, Not) and isinstance(literal.child, Var):
                lits.append((literal.child.name, False))
            else:  # pragma: no cover - CNF guarantees literals
                raise TypeError(f"not a literal: {literal!r}")
        out.append(lits)
    return out
