"""Runtime cost feedback: observed operator stats calibrate the planner.

The cost model of :mod:`repro.plan.cost` prices executors in abstract
"elements touched" units with hardwired constants
(:data:`~repro.plan.cost.GTEA_CANDIDATE_PASSES`,
:data:`~repro.plan.cost.BASELINE_SWEEPS`).  Those constants are guesses;
the executor now *measures* the real thing — every pipeline run records
one :class:`~repro.engine.operators.OperatorStats` per physical operator
(input size, wall time, index probes).

A :class:`CostProfile` aggregates those observations per
``(index, executor, graph-version)`` key and answers two planner
questions on subsequent compilations:

* :meth:`CostProfile.executor_costs` — observed seconds-per-element for
  the GTEA pipeline and the baseline delegate, replacing the abstract
  unit constants in :func:`repro.plan.cost.estimate_executor` once both
  sides have enough samples;
* :meth:`CostProfile.preferred_index` — the observed cheapest index for
  the current graph version, consulted by
  :func:`repro.plan.cost.choose_index` to override the shape ladder when
  measurements contradict it.  Note the arming condition: the override
  needs observations for the ladder pick *and* a cheaper alternative,
  so a single ``index="auto"`` session (which only ever executes the
  ladder pick) cannot trigger it by itself — it fires when the profile
  also holds observations from pinned-index executions, e.g. sessions
  created with explicit index names that share a profile, or profiles
  seeded from prior measurement runs.

Executions are filed under the executor that actually ran: the isolated
GTEA pipeline ("gtea"), the baseline delegate ("twigstackd"), the
shared-batch path ("gtea-shared" — excluded from calibration, since a
warm subtree cache leaves those executions with suffix-only operator
records whose seconds have no matching candidate volume), the sharded
pool driver ("gtea-parallel" — also excluded: its wall times include
pool scheduling and, per shard, repeated chain scans, neither of which
the serial cost model prices; the driver files one operator record per
phase — overlapped ``CandidateScan``, per-node ``DownwardPrune``,
sharded ``UpwardPrune``, the serial suffix — so the key's
``by_operator`` breakdown *is* the per-phase split of the parallel
run), or a specialized compiled function ("gtea-codegen" — also
excluded: its seconds describe the generated loop, not the interpreted
arm the executor inequality compares, so folding them into "gtea"
would silently deflate the interpreted seconds-per-element; alongside
the whole-plan ``CodegenExecute`` record, the compiled prune loop's
wall time files as ``CodegenPrune``, isolating the specialized loop
from result collection in the snapshot).  The calibration
consultations below match the "gtea" and "twigstackd" keys *exactly*;
every tagged variant is visible in :meth:`CostProfile.snapshot` but
never steers the planner.

Profiles also round-trip through the warm store
(:mod:`repro.store`): :meth:`CostProfile.export_state` emits a
JSON-safe snapshot of the latest graph version's aggregates and
:meth:`CostProfile.import_state` folds such a snapshot back in under
the importing session's graph version — how a fresh process starts
with last run's calibration instead of :data:`MIN_SAMPLES` cold
executions.

:class:`repro.engine.session.QuerySession` owns one profile, records
into it after every execution, and passes it to every compilation
(``session.cost_profile``).  Cached plans are *not* recompiled when the
profile moves — feedback applies to cold fingerprints and to plans
recompiled after invalidation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: operators whose input sizes denominate the GTEA per-element cost —
#: the initial candidate volume, matching the abstract model's
#: ``GTEA_CANDIDATE_PASSES * total_candidates``.
_GTEA_VOLUME_OP = "CandidateScan"

#: observed executions required before a calibration is trusted.
MIN_SAMPLES = 3

#: an observed alternative index must beat the ladder pick's observed
#: per-element cost by this factor before the profile overrides it.
INDEX_OVERRIDE_MARGIN = 0.8


@dataclass
class OperatorObservation:
    """Aggregated runtime of one operator kind under one profile key."""

    runs: int = 0
    items: int = 0  #: summed input sizes.
    produced: int = 0  #: summed output sizes.
    seconds: float = 0.0
    index_lookups: int = 0
    index_entries: int = 0

    def fold(self, record) -> None:
        self.runs += 1
        self.items += record.input_size
        self.produced += record.output_size
        self.seconds += record.seconds
        self.index_lookups += record.index_lookups
        self.index_entries += record.index_entries

    def merge(self, other: "OperatorObservation") -> None:
        """Fold another aggregate in (store rehydration path)."""
        self.runs += other.runs
        self.items += other.items
        self.produced += other.produced
        self.seconds += other.seconds
        self.index_lookups += other.index_lookups
        self.index_entries += other.index_entries


@dataclass
class _KeyProfile:
    """All observations under one (index, executor, graph-version)."""

    executions: int = 0
    by_operator: dict[str, OperatorObservation] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return sum(obs.seconds for obs in self.by_operator.values())

    @property
    def volume(self) -> int:
        """Elements the per-element cost is denominated in.

        GTEA keys divide by the scanned candidate volume — the elements
        ``CandidateScan`` produced (falling back to the summed
        downward-prune inputs for shared-batch executions, which fetch
        candidates inside the DAG); the baseline key divides by the
        graph elements its sweeps touch (the ``BaselineDelegate`` input
        size).
        """
        scan = self.by_operator.get(_GTEA_VOLUME_OP)
        if scan is not None and scan.produced > 0:
            return scan.produced
        prune = self.by_operator.get("DownwardPrune")
        if prune is not None and prune.items > 0:
            return prune.items
        compiled = self.by_operator.get("CodegenExecute")
        if compiled is not None and compiled.items > 0:
            # Compiled executions record one whole-plan observation whose
            # input size is the scanned candidate volume ("gtea-codegen"
            # keys only — never consulted for calibration, but the
            # snapshot rate should still mean something).
            return compiled.items
        delegate = self.by_operator.get("BaselineDelegate")
        return delegate.items if delegate is not None else 0

    def seconds_per_element(self) -> float | None:
        volume = self.volume
        if self.executions < MIN_SAMPLES or volume <= 0:
            return None
        return self.seconds / volume


class CostProfile:
    """Observed operator statistics, aggregated for the planner.

    One instance is session-held (``QuerySession.cost_profile``).  All
    methods are cheap; the profile never stores per-execution records,
    only running sums per ``(index, executor, graph_version)``.
    """

    def __init__(self):
        self._keys: dict[tuple[str, str, int], _KeyProfile] = {}
        self._latest_version: int | None = None

    def record(
        self,
        *,
        index_name: str,
        executor: str,
        graph_version: int,
        operator_stats,
    ) -> None:
        """Fold one execution's observed operator records into the profile.

        Aggregates for versions older than the previous one are dropped
        on the first record of a newer version, so a session over a
        frequently mutated graph keeps at most two versions' worth of
        keys instead of growing forever.
        """
        if not operator_stats:
            return
        if self._latest_version is None or graph_version > self._latest_version:
            self._latest_version = graph_version
            self._keys = {
                key: profile
                for key, profile in self._keys.items()
                if key[2] >= graph_version - 1
            }
        key = self._keys.setdefault((index_name, executor, graph_version), _KeyProfile())
        key.executions += 1
        for record in operator_stats:
            key.by_operator.setdefault(record.op, OperatorObservation()).fold(record)

    # ------------------------------------------------------------------
    # Planner consultation
    # ------------------------------------------------------------------
    def executor_costs(self, index_name: str, graph_version: int) -> tuple[float, float] | None:
        """Observed (gtea, baseline) seconds-per-element, or None.

        The GTEA figure is specific to ``index_name``; the baseline
        figure is index-independent (its sweeps never probe one), so the
        *cheapest* observed rate under any index key of this graph
        version is used — an optimistic bound for the baseline arm.
        Returns None until *both* sides have :data:`MIN_SAMPLES`
        observed executions — calibration needs a measured alternative
        on each arm of the comparison.
        """
        gtea = self._keys.get((index_name, "gtea", graph_version))
        gtea_rate = gtea.seconds_per_element() if gtea is not None else None
        baseline_rate = None
        for (_, executor, version), key in self._keys.items():
            if executor != "twigstackd" or version != graph_version:
                continue
            rate = key.seconds_per_element()
            if rate is not None and (baseline_rate is None or rate < baseline_rate):
                baseline_rate = rate
        if gtea_rate is None or baseline_rate is None:
            return None
        return gtea_rate, baseline_rate

    def preferred_index(
        self, graph_version: int, executor: str = "gtea"
    ) -> tuple[str, float] | None:
        """The observed cheapest *full-scope* index for this graph version.

        Returns ``(index_name, seconds_per_element)`` over executions of
        exactly the ``executor`` arm being costed, or None when no index
        has enough samples.  Keys recorded under other executors
        ("gtea-shared", "gtea-parallel", "gtea-codegen", ...) never
        steer the comparison, and neither do scope-tagged index names
        ("tc@partial", ...): a partial build's per-element rate is not
        an offer the full-index ladder can take — emitting a scoped name
        as a full index choice would not even resolve in the factory.
        """
        best: tuple[str, float] | None = None
        for (index_name, key_executor, version), key in self._keys.items():
            if key_executor != executor or version != graph_version:
                continue
            if "@" in index_name:
                continue
            rate = key.seconds_per_element()
            if rate is not None and (best is None or rate < best[1]):
                best = (index_name, rate)
        return best

    def observed_rate(
        self, index_name: str, graph_version: int, executor: str = "gtea"
    ) -> float | None:
        """Observed seconds-per-element under one (index, executor) arm.

        ``index_name`` may be scope-tagged ("tc@partial") — that is how
        the per-query costing layer reads back what partial builds cost.
        """
        key = self._keys.get((index_name, executor, graph_version))
        return key.seconds_per_element() if key is not None else None

    # ------------------------------------------------------------------
    # Persistence (the warm store of :mod:`repro.store`)
    # ------------------------------------------------------------------
    def export_state(self) -> dict | None:
        """A JSON-safe snapshot of the latest graph version's aggregates.

        Only the newest version's keys are exported — older versions are
        already on their way out of the in-memory profile (see
        :meth:`record`) and a persisted store is keyed by graph
        *content*, under which exactly one version is ever live.
        Returns None when the profile holds nothing exportable.
        """
        if self._latest_version is None:
            return None
        keys = []
        for (index_name, executor, version), profile in sorted(self._keys.items()):
            if version != self._latest_version:
                continue
            keys.append(
                {
                    "index": index_name,
                    "executor": executor,
                    "executions": profile.executions,
                    "operators": {
                        op: {
                            "runs": obs.runs,
                            "items": obs.items,
                            "produced": obs.produced,
                            "seconds": obs.seconds,
                            "index_lookups": obs.index_lookups,
                            "index_entries": obs.index_entries,
                        }
                        for op, obs in sorted(profile.by_operator.items())
                    },
                }
            )
        return {"keys": keys} if keys else None

    def import_state(self, state: dict | None, graph_version: int) -> int:
        """Fold an :meth:`export_state` snapshot in under ``graph_version``.

        The exporting process's graph version is irrelevant — two
        processes building the same graph can disagree on the mutation
        count — so imported aggregates are re-keyed to the *importing*
        session's version.  Returns the number of executions folded in.
        Malformed snapshots (hand-edited reports, schema drift) import
        zero rather than raising.
        """
        if not isinstance(state, dict):
            return 0
        imported = 0
        for entry in state.get("keys", ()):
            try:
                index_name = str(entry["index"])
                executor = str(entry["executor"])
                executions = int(entry["executions"])
                operators = {
                    str(op): OperatorObservation(
                        runs=int(fields["runs"]),
                        items=int(fields["items"]),
                        produced=int(fields["produced"]),
                        seconds=float(fields["seconds"]),
                        index_lookups=int(fields["index_lookups"]),
                        index_entries=int(fields["index_entries"]),
                    )
                    for op, fields in entry.get("operators", {}).items()
                }
            except (KeyError, TypeError, ValueError):
                continue
            key = self._keys.setdefault(
                (index_name, executor, graph_version), _KeyProfile()
            )
            key.executions += executions
            for op, observation in operators.items():
                key.by_operator.setdefault(op, OperatorObservation()).merge(observation)
            imported += executions
        if imported and (
            self._latest_version is None or graph_version > self._latest_version
        ):
            self._latest_version = graph_version
        return imported

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def executions(self) -> int:
        """Total executions folded into the profile, across all keys."""
        return sum(key.executions for key in self._keys.values())

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-key summary: executions, seconds, volume, rate."""
        summary: dict[str, dict[str, float]] = {}
        for (index_name, executor, version), key in sorted(self._keys.items()):
            rate = key.seconds_per_element()
            summary[f"{index_name}/{executor}/v{version}"] = {
                "executions": key.executions,
                "seconds": round(key.seconds, 6),
                "volume": key.volume,
                "seconds_per_element": rate if rate is not None else 0.0,
            }
        return summary

    def __repr__(self) -> str:
        return f"CostProfile(keys={len(self._keys)}, executions={self.executions()})"
