"""Plan codegen — lower a physical plan into specialized Python.

The interpreted pipeline (:mod:`repro.engine.operators`) pays, per warm
execution, per-operator dispatch, a lazy ``PruningContext`` re-check per
node (``needs_pred_contour``), and a recursive
:func:`repro.logic.assignment.evaluate` call with a dict-backed
valuation for every fext on every candidate.  None of that work depends
on the data — only on the *plan* — so this backend performs it once per
plan fingerprint:

* each node's fext formula is lowered to a flat Python boolean
  expression (:mod:`repro.logic.codegen`): constant-TRUE fexts become a
  straight copy, constant-FALSE fexts (the PR 3 bug class — minimization
  can fold a subtree to ``0``) become the empty set, and everything else
  evaluates without AST traversal or dict lookups;
* the downward-prune loop is inlined for the concretely chosen
  reachability index — the 3-hop chain/contour path or the generic
  ``reaches`` fallback is decided at compile time, not per node;
* index probes are batched per candidate set: AD-child valuations are
  computed once per DAG component for the whole set (one call into the
  chain-shared scan), never per candidate.

Two modes share one analysis (:func:`analyze_plan`):

* ``mode="source"`` (default) emits Python source for the whole
  scan + downward phase and runs it through :func:`compile`; the source
  is kept on the artifact (``CompiledPlanFunction.source``) for
  inspection;
* ``mode="closure"`` interprets the same per-node step specs with
  closures from :func:`repro.logic.codegen.compile_formula` — slower,
  but every step is ordinary Python visible to a debugger.

The suffix of the pipeline (UpwardPrune → BuildMatchingGraph →
CollectResults) is *not* specialized: the generated function hands the
execution state to the existing operators, bypassing the per-operator
stats wrapper so a codegen execution never feeds
:class:`repro.plan.feedback.CostProfile` calibration (its wall times
describe the specialized loop, not the interpreted arms the profile
compares).

A plan qualifies when it routes to the GTEA executor and its downward
order covers the rewritten query (``PhysicalPlan.covers_query``);
baseline-routed, constant-empty and partially-ordered plans raise
:class:`CodegenError` — callers (``GTEA.execute`` behind
``QuerySession(codegen=...)``) fall back to the interpreted pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter
from typing import Callable

from ..logic import Const, Formula
from ..logic.codegen import compile_formula, lower_formula
from ..query.gtpq import EdgeType
from .compile import CompiledPlan

#: modes :func:`compile_plan` accepts.
MODES = ("source", "closure")


class CodegenError(Exception):
    """The plan cannot be specialized; run the interpreted pipeline."""


# ----------------------------------------------------------------------
# Compile-time analysis — shared by both modes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NodeStep:
    """One downward-prune node visit, fully resolved at compile time.

    Attributes:
        node_id: the query node this step refines.
        backbone: empty survivors here empty the whole answer.
        kind: ``"copy"`` (constant-TRUE fext), ``"empty"``
            (constant-FALSE fext) or ``"filter"`` (per-candidate
            evaluation of ``fext``).
        fext: the non-constant formula for ``"filter"`` steps.
        ad_used: AD children the fext mentions, in child order — the
            positional AD bits of the lowered predicate.
        pc_used: PC children the fext mentions, in child order.
        needs_contour: a later step reads this node's predecessor
            contour (3-hop index only; AD children the parent's fext
            never mentions are skipped — fewer probes than the
            interpreted path, identical answers).
        label_scan: when the node's attribute predicate is a single
            ``label =`` atom, that label — the candidate scan is the
            graph's label posting itself, skipping the per-node
            ``predicate.matches`` re-check the generic scan pays.
    """

    node_id: str
    backbone: bool
    kind: str
    fext: Formula | None
    ad_used: tuple[str, ...]
    pc_used: tuple[str, ...]
    needs_contour: bool = False
    label_scan: str | None = None


@dataclass(frozen=True)
class PlanAnalysis:
    """Everything the emitter / closure driver needs about one plan."""

    steps: tuple[NodeStep, ...]
    index_name: str
    three_hop: bool
    root: str

    @property
    def node_ids(self) -> tuple[str, ...]:
        return tuple(step.node_id for step in self.steps)

    @property
    def folded_steps(self) -> int:
        """Steps decided entirely at compile time (constant fext)."""
        return sum(1 for step in self.steps if step.kind != "filter")


def analyze_plan(plan: CompiledPlan) -> PlanAnalysis:
    """Resolve every per-node decision of the downward phase, or raise.

    :class:`CodegenError` carries the disqualification reason — the
    same conditions under which :meth:`GTEA._instantiate` would
    abandon the plan's operator list.
    """
    physical = plan.physical
    if physical.executor != "gtea":
        raise CodegenError(f"executor {physical.executor!r} is not specializable")
    if getattr(physical, "index_scope", "full") != "full":
        # Partial-scope plans bind to a footprint-restricted index whose
        # lifetime the session pool controls; compiled functions cache by
        # plan fingerprint and would outlive (and pin) that domain.
        raise CodegenError("partial-scope index choice is not specializable")
    query = plan.query
    if not physical.covers_query(query):
        raise CodegenError("downward order does not cover the rewritten query")

    three_hop = physical.index_name == "3hop"
    steps: list[NodeStep] = []
    for node_id in physical.downward_order:
        fext = query.fext(node_id)
        backbone = query.nodes[node_id].is_backbone
        label = _label_only_scan(query.attribute(node_id))
        if isinstance(fext, Const):
            kind = "copy" if fext.value else "empty"
            steps.append(NodeStep(node_id, backbone, kind, None, (), (), label_scan=label))
            continue
        mentioned = fext.variables()
        children = query.children[node_id]
        if not mentioned <= set(children):
            stray = sorted(mentioned - set(children))
            raise CodegenError(f"fext of {node_id!r} mentions non-children {stray}")
        ad_used = tuple(
            c for c in children if c in mentioned and query.edge_type(c) is EdgeType.DESCENDANT
        )
        pc_used = tuple(
            c for c in children if c in mentioned and query.edge_type(c) is EdgeType.CHILD
        )
        steps.append(
            NodeStep(node_id, backbone, "filter", fext, ad_used, pc_used, label_scan=label)
        )

    contoured = {child for step in steps for child in step.ad_used} if three_hop else set()
    resolved = tuple(replace(step, needs_contour=step.node_id in contoured) for step in steps)
    return PlanAnalysis(
        steps=resolved,
        index_name=physical.index_name,
        three_hop=three_hop,
        root=query.root,
    )


def _label_only_scan(predicate) -> str | None:
    """The pinned label when the predicate is exactly ``label = x``.

    The graph's label index then *is* ``mat(u)`` — the generic scan's
    per-node ``predicate.matches`` pass over the posting is a no-op the
    specialized scan skips.
    """
    atoms = predicate.atoms
    if len(atoms) == 1 and atoms[0][0] == "label" and atoms[0][1] == "=":
        return atoms[0][2]
    return None


def supports_plan(plan: CompiledPlan) -> bool:
    """Can :func:`compile_plan` specialize this plan?"""
    try:
        analyze_plan(plan)
    except CodegenError:
        return False
    return True


# ----------------------------------------------------------------------
# Runtime helpers — shared by generated source and closure mode
# ----------------------------------------------------------------------
def _ad_bit_chain(context, candidates, child_id, contour, down):
    """One AD child's valuation per DAG component (3-hop chain scan)."""
    from ..engine.prune import _ad_valuations_by_component

    valuations = _ad_valuations_by_component(
        context, candidates, {child_id: contour}, {child_id: down}
    )
    return {component: v[child_id] for component, v in valuations.items()}


def _ad_bits_chain(context, candidates, specs):
    """AD bit tuples per DAG component; ``specs`` is ``((child, contour,
    down), ...)`` in the predicate's positional bit order."""
    from ..engine.prune import _ad_valuations_by_component

    valuations = _ad_valuations_by_component(
        context,
        candidates,
        {child_id: contour for child_id, contour, _ in specs},
        {child_id: down for child_id, _, down in specs},
    )
    order = tuple(spec[0] for spec in specs)
    return {
        component: tuple(v[child_id] for child_id in order)
        for component, v in valuations.items()
    }


def _ad_bit_generic(context, candidates, child_id, down):
    """One AD child's valuation per component, via plain ``reaches``."""
    from ..engine.prune import _ad_valuations_generic

    valuations = _ad_valuations_generic(context, candidates, {child_id: down})
    return {component: v[child_id] for component, v in valuations.items()}


def _ad_bits_generic(context, candidates, specs):
    """AD bit tuples per component; ``specs`` is ``((child, down), ...)``."""
    from ..engine.prune import _ad_valuations_generic

    valuations = _ad_valuations_generic(
        context, candidates, {child_id: down for child_id, down in specs}
    )
    order = tuple(spec[0] for spec in specs)
    return {
        component: tuple(v[child_id] for child_id in order)
        for component, v in valuations.items()
    }


def _close_downward(state, context, ops, started) -> None:
    """Book the downward phase's op count and wall time."""
    stats = state.stats
    context.downward_ops += ops
    stats.downward_prune_ops += ops
    phases = stats.phase_seconds
    phases["prune_downward"] = phases.get("prune_downward", 0.0) + (perf_counter() - started)


def _charge_probes(state, context, lookups0, entries0) -> None:
    """Attribute index probes issued since the baseline snapshot."""
    counters = context.reach.counters
    state.stats.index_lookups += counters.lookups - lookups0
    state.stats.index_entries += counters.entries_scanned - entries0


def _bail_empty_backbone(state, context, ops, started, lookups0, entries0):
    """Backbone-empty early exit: every match embeds every backbone
    node, so the remaining downward steps cannot matter (the same
    shortcut the adaptive driver takes)."""
    _close_downward(state, context, ops, started)
    _charge_probes(state, context, lookups0, entries0)
    return state.finish_empty()


def _finish_pipeline(state, context, ops, started, lookups0, entries0):
    """Close the downward phase and run the interpreted suffix.

    The suffix operators run directly (no ``_run_operator`` wrapper), so
    a codegen execution records *no* per-operator ``operator_stats``.
    The session instead files one whole-execution record under the
    dedicated ``"gtea-codegen"`` cost-profile key
    (``QuerySession._record_codegen_feedback``), keeping the interpreted
    arms' calibration untouched by compiled timings.
    """
    from ..engine.operators import BuildMatchingGraph, CollectResults, UpwardPrune

    _close_downward(state, context, ops, started)
    UpwardPrune().run(state)
    if not state.finished:
        BuildMatchingGraph().run(state)
    if not state.finished:
        CollectResults().run(state)
    _charge_probes(state, context, lookups0, entries0)
    return state


# ----------------------------------------------------------------------
# Source emission
# ----------------------------------------------------------------------
def emit_plan_source(analysis: PlanAnalysis) -> str:
    """The specialized function's Python source for one analyzed plan."""
    position_of = {step.node_id: k for k, step in enumerate(analysis.steps)}
    lines: list[str] = []
    emit = lines.append
    emit("def _specialized(state):")
    emit(
        f"    # {len(analysis.steps)}-node downward phase, "
        f"{analysis.index_name} index, {analysis.folded_steps} step(s) const-folded"
    )
    emit("    stats = state.stats")
    emit("    query = state.query")
    emit("    mats = state.mats")
    emit("    _t = _perf()")
    emit("    _prov = state.candidate_provider")
    emit("    if _prov is None:")
    emit("        _g = state.graph")
    if any(step.label_scan is not None for step in analysis.steps):
        emit("        _lbl = _g.nodes_with_label")
    for step in analysis.steps:
        if step.label_scan is not None:
            emit(f"        mats[{step.node_id!r}] = list(_lbl({step.label_scan!r}))")
        else:
            emit(f"        mats[{step.node_id!r}] = _cand(_g, query, {step.node_id!r})")
    emit("    else:")
    emit("        for _nid in _NODES:")
    emit("            mats[_nid] = list(_prov(query, _nid))")
    emit("    _ci = stats.candidates_initial")
    emit("    _tot = 0")
    emit("    for _nid in _NODES:")
    emit("        _n = len(mats[_nid])")
    emit("        _ci[_nid] = _n")
    emit("        _tot += _n")
    emit("    stats.input_nodes = _tot")
    emit("    _ph = stats.phase_seconds")
    emit("    _ph['candidates'] = _ph.get('candidates', 0.0) + (_perf() - _t)")
    emit(f"    if not mats[{analysis.root!r}]:")
    emit("        state.finish_empty()")
    emit("        return state")
    emit("    _ctx = state.context")
    emit("    _ic = _ctx.reach.counters")
    emit("    _lk0 = _ic.lookups")
    emit("    _es0 = _ic.entries_scanned")
    emit("    down = state.down")
    emit("    _cad = stats.candidates_after_downward")
    if any(step.ad_used for step in analysis.steps):
        emit("    _cof = _ctx.reach.component_of")
    if any(step.pc_used for step in analysis.steps):
        emit("    _pred = state.graph.predecessors")
    if any(step.needs_contour for step in analysis.steps):
        emit("    _idx = _ctx.index")
        emit("    _dimg = _ctx.dag_images")
    emit("    _ops = 0")
    emit("    _t = _perf()")
    for step in analysis.steps:
        _emit_step(emit, step, position_of, analysis.three_hop)
    emit("    return _finish(state, _ctx, _ops, _t, _lk0, _es0)")
    return "\n".join(lines) + "\n"


def _emit_step(emit, step: NodeStep, position_of: dict[str, int], three_hop: bool) -> None:
    """Emit one node's downward block into the specialized function."""
    k = position_of[step.node_id]
    nid = repr(step.node_id)
    if step.kind == "copy":
        emit(f"    # {step.node_id}: fext = 1 (copy)")
        emit(f"    _d{k} = down[{nid}] = mats[{nid}]")
    elif step.kind == "empty":
        emit(f"    # {step.node_id}: fext = 0 (const-empty)")
        emit(f"    _d{k} = down[{nid}] = []")
    else:
        emit(f"    # {step.node_id}: fext = {step.fext}")
        emit(f"    _m{k} = mats[{nid}]")
        names: dict[str, str] = {}
        for position, child in enumerate(step.ad_used):
            names[child] = f"_b{position}"
        for child in step.pc_used:
            j = position_of[child]
            names[child] = f"(_x in _ps{j})"
            emit(f"    _ps{j} = {{_p for _w in _d{j} for _p in _pred(_w)}}")
        if step.ad_used:
            emit(f"    _fl{k} = {_ad_call(step, position_of, f'_m{k}', three_hop)}")
        expression = lower_formula(step.fext, names)
        if step.ad_used and not step.pc_used:
            bits = _bit_pattern(len(step.ad_used))
            emit(f"    _ok{k} = {{_co for _co, {bits} in _fl{k}.items() if {expression}}}")
            emit(f"    _d{k} = down[{nid}] = [_x for _x in _m{k} if _cof(_x) in _ok{k}]")
        elif not step.ad_used:
            emit(f"    _d{k} = down[{nid}] = [_x for _x in _m{k} if {expression}]")
        else:
            bits = _bit_pattern(len(step.ad_used))
            emit(f"    _sv{k} = []")
            emit(f"    _ap{k} = _sv{k}.append")
            emit(f"    for _x in _m{k}:")
            emit(f"        {bits} = _fl{k}[_cof(_x)]")
            emit(f"        if {expression}:")
            emit(f"            _ap{k}(_x)")
            emit(f"    _d{k} = down[{nid}] = _sv{k}")
    emit(f"    _cad[{nid}] = len(_d{k})")
    emit("    _ops += 1")
    if step.backbone:
        emit(f"    if not _d{k}:")
        emit("        return _bail(state, _ctx, _ops, _t, _lk0, _es0)")
    if step.needs_contour:
        emit(f"    _ct{k} = _mpred(_idx, _dimg(_d{k}))")


def _bit_pattern(count: int) -> str:
    """Unpack target for one component's AD bits (``_b0`` / ``(_b0, _b1)``)."""
    if count == 1:
        return "_b0"
    return "(" + ", ".join(f"_b{p}" for p in range(count)) + ")"


def _ad_call(step: NodeStep, position_of: dict[str, int], candidates: str, three_hop: bool) -> str:
    """The batched AD-valuation call for one filter step — the 3-hop
    chain scan or the generic ``reaches`` fallback, decided here at
    compile time rather than per node at run time."""
    positions = [position_of[child] for child in step.ad_used]
    if len(step.ad_used) == 1:
        child, j = step.ad_used[0], positions[0]
        if three_hop:
            return f"_ad1(_ctx, {candidates}, {child!r}, _ct{j}, _d{j})"
        return f"_gad1(_ctx, {candidates}, {child!r}, _d{j})"
    if three_hop:
        specs = ", ".join(
            f"({child!r}, _ct{j}, _d{j})" for child, j in zip(step.ad_used, positions)
        )
        return f"_adn(_ctx, {candidates}, ({specs}))"
    specs = ", ".join(f"({child!r}, _d{j})" for child, j in zip(step.ad_used, positions))
    return f"_gadn(_ctx, {candidates}, ({specs}))"


def _runtime_namespace(analysis: PlanAnalysis) -> dict:
    """The exec namespace of a generated function — every helper the
    emitted source references, nothing else (builtins restricted)."""
    from ..query.naive import candidate_nodes
    from ..reachability.contour import merge_pred_lists

    return {
        "__builtins__": {"len": len, "list": list},
        "_perf": perf_counter,
        "_cand": candidate_nodes,
        "_NODES": analysis.node_ids,
        "_mpred": merge_pred_lists,
        "_ad1": _ad_bit_chain,
        "_adn": _ad_bits_chain,
        "_gad1": _ad_bit_generic,
        "_gadn": _ad_bits_generic,
        "_bail": _bail_empty_backbone,
        "_finish": _finish_pipeline,
    }


# ----------------------------------------------------------------------
# Closure mode
# ----------------------------------------------------------------------
class _ClosureRunner:
    """Interpret the analysis' step specs with compiled predicates.

    Same counters, phases and early exits as the generated source, but
    every step is ordinary Python a debugger can walk through.
    """

    __slots__ = ("analysis", "predicates")

    def __init__(self, analysis: PlanAnalysis):
        self.analysis = analysis
        self.predicates = {
            step.node_id: compile_formula(step.fext, step.ad_used + step.pc_used)
            for step in analysis.steps
            if step.kind == "filter"
        }

    def __call__(self, state):
        from ..query.naive import candidate_nodes
        from ..reachability.contour import merge_pred_lists

        analysis = self.analysis
        stats, query, mats = state.stats, state.query, state.mats
        started = perf_counter()
        provider = state.candidate_provider
        for step in analysis.steps:
            node_id = step.node_id
            if provider is not None:
                mats[node_id] = list(provider(query, node_id))
            elif step.label_scan is not None:
                mats[node_id] = list(state.graph.nodes_with_label(step.label_scan))
            else:
                mats[node_id] = candidate_nodes(state.graph, query, node_id)
            stats.candidates_initial[node_id] = len(mats[node_id])
        stats.input_nodes = sum(stats.candidates_initial.values())
        phases = stats.phase_seconds
        phases["candidates"] = phases.get("candidates", 0.0) + (perf_counter() - started)
        if not mats[analysis.root]:
            return state.finish_empty()

        context = state.context
        counters = context.reach.counters
        lookups0, entries0 = counters.lookups, counters.entries_scanned
        down = state.down
        contours: dict[str, object] = {}
        ops = 0
        started = perf_counter()
        for step in analysis.steps:
            node_id = step.node_id
            candidates = mats[node_id]
            if step.kind == "copy":
                survivors = candidates
            elif step.kind == "empty":
                survivors = []
            else:
                survivors = self._filter(state, step, candidates, contours)
            down[node_id] = survivors
            stats.candidates_after_downward[node_id] = len(survivors)
            ops += 1
            if step.backbone and not survivors:
                return _bail_empty_backbone(state, context, ops, started, lookups0, entries0)
            if step.needs_contour:
                contours[node_id] = merge_pred_lists(context.index, context.dag_images(survivors))
        return _finish_pipeline(state, context, ops, started, lookups0, entries0)

    def _filter(self, state, step: NodeStep, candidates, contours):
        """One filter step: batched AD bits + PC membership + predicate."""
        context = state.context
        down = state.down
        predecessors = state.graph.predecessors
        pc_sets = [{p for w in down[child] for p in predecessors(w)} for child in step.pc_used]
        predicate = self.predicates[step.node_id]
        if not step.ad_used:
            survivors = []
            for candidate in candidates:
                if predicate(tuple(candidate in s for s in pc_sets)):
                    survivors.append(candidate)
            return survivors
        if self.analysis.three_hop:
            flat = _ad_bits_chain(
                context,
                candidates,
                tuple((c, contours[c], down[c]) for c in step.ad_used),
            )
        else:
            flat = _ad_bits_generic(context, candidates, tuple((c, down[c]) for c in step.ad_used))
        component_of = context.reach.component_of
        survivors = []
        for candidate in candidates:
            bits = flat[component_of(candidate)] + tuple(candidate in s for s in pc_sets)
            if predicate(bits):
                survivors.append(candidate)
        return survivors


# ----------------------------------------------------------------------
# The public artifact
# ----------------------------------------------------------------------
class CompiledPlanFunction:
    """A specialized executor for one plan: ``fn(state) -> state``.

    Cached by :class:`repro.engine.session.QuerySession` next to the
    plan cache (same fingerprint key, same graph-version invalidation).
    """

    __slots__ = ("fn", "mode", "source", "analysis")

    def __init__(self, fn: Callable, mode: str, source: str | None, analysis: PlanAnalysis):
        self.fn = fn
        self.mode = mode
        self.source = source
        self.analysis = analysis

    def __call__(self, state):
        return self.fn(state)

    @property
    def index_name(self) -> str:
        return self.analysis.index_name

    def describe(self) -> str:
        """One-line summary for ``explain()`` annotations."""
        folded = self.analysis.folded_steps
        note = f", {folded} const-folded" if folded else ""
        return (
            f"codegen[{self.mode}] {len(self.analysis.steps)} nodes, "
            f"{self.analysis.index_name} index{note}"
        )

    def __repr__(self) -> str:
        return f"CompiledPlanFunction({self.describe()})"


def compile_plan(plan: CompiledPlan, mode: str = "source") -> CompiledPlanFunction:
    """Specialize ``plan``; raises :class:`CodegenError` if it can't be.

    ``mode="source"`` emits and compiles Python source (fastest);
    ``mode="closure"`` builds a debuggable interpreter over the same
    analysis.  Both produce identical answers, survivor sets and
    counters.
    """
    if mode not in MODES:
        raise ValueError(f"unknown codegen mode {mode!r}; expected one of {MODES}")
    analysis = analyze_plan(plan)
    if mode == "closure":
        return CompiledPlanFunction(_ClosureRunner(analysis), mode, None, analysis)
    source = emit_plan_source(analysis)
    namespace = _runtime_namespace(analysis)
    exec(compile(source, "<repro.plan.codegen>", "exec"), namespace)
    return CompiledPlanFunction(namespace["_specialized"], mode, source, analysis)


def rehydrate_plan_function(
    analysis: PlanAnalysis, mode: str = "source", source: str | None = None
) -> CompiledPlanFunction:
    """Rebuild a specialized function from persisted pieces.

    The warm store (:mod:`repro.store`) can only serialize the pure-data
    half of a :class:`CompiledPlanFunction` — its :class:`PlanAnalysis`
    and emitted source text; the executable half (an ``exec``'d function
    object) does not pickle.  Rehydration skips :func:`analyze_plan` and
    goes straight to ``compile``/``exec`` over the stored source (or
    rebuilds the closure interpreter from the analysis alone).  When the
    source text is absent in source mode — e.g. the store was written by
    a closure-mode session — it is re-emitted from the analysis, which
    is deterministic.
    """
    if mode not in MODES:
        raise ValueError(f"unknown codegen mode {mode!r}; expected one of {MODES}")
    if mode == "closure":
        return CompiledPlanFunction(_ClosureRunner(analysis), mode, None, analysis)
    if source is None:
        source = emit_plan_source(analysis)
    namespace = _runtime_namespace(analysis)
    exec(compile(source, "<repro.plan.codegen rehydrated>", "exec"), namespace)
    return CompiledPlanFunction(namespace["_specialized"], mode, source, analysis)
