"""Phase 2 of query compilation: the logical plan.

An inspectable IR describing *what* evaluation has to do for one
(already normalized) query, independent of index or executor choice:

* one :class:`CandidateSource` per query node — where its ``mat(u)``
  comes from (label posting list vs. full scan) and how large it is
  estimated to be;
* one :class:`PruneObligation` per structural constraint the pruning
  phases must discharge (downward ``fext`` evaluation per internal
  node, upward reachability refinement per prime-subtree edge);
* the output structure the result collector assembles.

The plan also fixes the **downward prune order**: any
children-before-parents order is admissible (Procedure 6 only reads
refined child sets), so the planner visits cheaper subtrees first —
selective children are refined early, and their parent-set/contour
by-products are built from the smallest possible survivor sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.digraph import DataGraph
from ..query.gtpq import GTPQ, EdgeType
from ..query.serialize import subtree_fingerprints
from .cost import estimate_candidates
from .normalize import NormalizedQuery


@dataclass(frozen=True)
class CandidateSource:
    """Where one query node's candidate set comes from."""

    node_id: str
    kind: str  #: ``"backbone"`` or ``"predicate"``
    source: str  #: ``"label-index"`` or ``"full-scan"``
    predicate: str  #: display form of ``fa(u)``
    estimate: int  #: estimated ``|mat(u)|`` (upper bound)


@dataclass(frozen=True)
class PruneObligation:
    """One constraint a pruning phase must discharge."""

    node_id: str
    phase: str  #: ``"downward"`` or ``"upward"``
    test: str  #: display form of the check


@dataclass(frozen=True)
class LogicalPlan:
    """The logical IR of one normalized query.

    Attributes:
        query: the (rewritten) query this plan describes.
        sources: candidate source per query node, in plan order.
        downward_order: children-before-parents node order for
            Procedure 6, cheapest subtrees first.
        obligations: the prune obligations, downward then upward.
        outputs: output node ids of the rewritten query.
        total_candidate_estimate: sum of the per-node estimates.
        subtree_fingerprints: per query node, the canonical fingerprint
            of its rooted subtree (:func:`repro.query.serialize.subtree_fingerprints`)
            — the sharing key of the batch compiler in
            :mod:`repro.plan.shared`.
    """

    query: GTPQ
    sources: tuple[CandidateSource, ...]
    downward_order: tuple[str, ...]
    obligations: tuple[PruneObligation, ...]
    outputs: tuple[str, ...]
    total_candidate_estimate: int
    subtree_fingerprints: tuple[tuple[str, str], ...] = ()

    @property
    def subtree_fingerprint_map(self) -> dict[str, str]:
        """``node id -> subtree fingerprint`` as a dictionary."""
        return dict(self.subtree_fingerprints)

    def explain_lines(self) -> list[str]:
        lines = ["candidate sources:"]
        for source in self.sources:
            lines.append(
                f"  {source.node_id:<12} {source.kind:<9} "
                f"{source.source:<11} ~{source.estimate:<6} {source.predicate}"
            )
        lines.append(
            "downward prune order (cheap subtrees first): "
            + " -> ".join(self.downward_order)
        )
        lines.append("prune obligations:")
        for obligation in self.obligations:
            lines.append(f"  [{obligation.phase}] {obligation.node_id}: {obligation.test}")
        lines.append(f"outputs: {tuple(self.outputs)}")
        if self.subtree_fingerprints:
            distinct = len({fp for _, fp in self.subtree_fingerprints})
            lines.append(
                f"subtrees: {len(self.subtree_fingerprints)} rooted, "
                f"{distinct} distinct fingerprints"
            )
        return lines


def _selectivity_order(query: GTPQ, estimates: dict[str, int]) -> tuple[str, ...]:
    """Post-order with siblings visited by ascending subtree estimate."""
    subtree_cost: dict[str, int] = {}
    for node_id in query.bottom_up():
        subtree_cost[node_id] = estimates[node_id] + sum(
            subtree_cost[child] for child in query.children[node_id]
        )

    order: list[str] = []

    def visit(node_id: str) -> None:
        for child in sorted(query.children[node_id], key=lambda c: (subtree_cost[c], c)):
            visit(child)
        order.append(node_id)

    visit(query.root)
    return tuple(order)


def build_logical_plan(
    graph: DataGraph,
    normalized: NormalizedQuery,
    candidate_estimates: dict[str, int] | None = None,
) -> LogicalPlan:
    """Build the logical IR for ``normalized.rewritten`` over ``graph``."""
    query = normalized.rewritten
    estimates = (
        candidate_estimates
        if candidate_estimates is not None
        else estimate_candidates(graph, query)
    )

    sources = []
    for node_id in query.depth_first():
        predicate = query.attribute(node_id)
        pins_label = any(
            attribute == "label" and op == "=" for attribute, op, _ in predicate.atoms
        )
        sources.append(
            CandidateSource(
                node_id=node_id,
                kind="backbone" if query.nodes[node_id].is_backbone else "predicate",
                source="label-index" if pins_label else "full-scan",
                predicate=str(predicate),
                estimate=estimates[node_id],
            )
        )

    obligations = []
    for node_id in query.depth_first():
        if query.children[node_id]:
            obligations.append(
                PruneObligation(
                    node_id=node_id,
                    phase="downward",
                    test=f"fext = {query.fext(node_id)}",
                )
            )
    for node_id in query.depth_first():
        if node_id == query.root or not query.nodes[node_id].is_backbone:
            continue
        edge = "child" if query.edge_type(node_id) is EdgeType.CHILD else "descendant"
        obligations.append(
            PruneObligation(
                node_id=node_id,
                phase="upward",
                test=f"{edge} of a surviving mat({query.parent[node_id]}) node",
            )
        )

    return LogicalPlan(
        query=query,
        sources=tuple(sources),
        downward_order=_selectivity_order(query, estimates),
        obligations=tuple(obligations),
        outputs=tuple(query.outputs),
        total_candidate_estimate=sum(estimates.values()),
        subtree_fingerprints=tuple(subtree_fingerprints(query).items()),
    )
