"""Phase 3 of query compilation: the physical plan.

Turns a :class:`~repro.plan.logical.LogicalPlan` into concrete execution
decisions using the cost model of :mod:`repro.plan.cost`:

* which reachability index the executor should probe (the ladder that
  used to be hardwired in ``reachability.factory.select_auto_index``,
  optionally overridden by the session's observed
  :class:`~repro.plan.feedback.CostProfile`);
* the **operator pipeline** — an explicit ordered list of
  :class:`PhysicalOperator` rows that
  :mod:`repro.engine.operators` instantiates and runs: CandidateScan →
  one DownwardPrune per query node (in the logical plan's selectivity
  order) → UpwardPrune → BuildMatchingGraph → CollectResults for GTEA,
  a single BaselineDelegate for TwigStackD-routed plans, or a single
  ConstantEmpty for plans the normalize phase proved unsatisfiable;
* the executor cost comparison itself (estimated, or calibrated from
  observed runtime stats when the profile has enough samples).

``explain()`` renders the operator rows with their compile-time
estimates; pass the observed
:class:`~repro.engine.operators.OperatorStats` of an execution to get
the estimated-vs-observed comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..graph.digraph import DataGraph
from ..graph.stats import GraphStats, graph_stats
from .cost import (
    CostEstimate,
    choose_scoped_index,
    estimate_executor,
    scoped_index_key,
)
from .logical import LogicalPlan
from .normalize import NormalizedQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .feedback import CostProfile

#: executor names a physical plan may carry.
EXECUTORS = ("gtea", "twigstackd", "constant-empty")


@dataclass(frozen=True)
class PhysicalOperator:
    """One row of the physical plan's operator pipeline.

    A *specification*: the executor instantiates the matching stateful
    operator class from :mod:`repro.engine.operators` at run time (plans
    are cached and reused; operator instances are not).
    """

    op: str  #: operator class name (``"DownwardPrune"``, ...).
    target: str | None = None  #: query node for per-node operators.
    estimate: int | None = None  #: estimated input elements, if priced.

    @property
    def label(self) -> str:
        return f"{self.op}({self.target})" if self.target else self.op


@dataclass(frozen=True)
class PhysicalPlan:
    """Concrete execution decisions for one compiled query.

    Attributes:
        index_name: reachability index the executor probes (resolved,
            never ``"auto"``).
        executor: one of :data:`EXECUTORS`.
        downward_order: node order for Procedure 6 (valid for the
            *rewritten* query only; executors fall back to the default
            bottom-up order when running the original query).
        cost: the executor cost comparison, or None for constant-empty.
        index_reason: why this index was picked.
        operators: the ordered operator pipeline the executor drives
            (see :class:`PhysicalOperator`).
        index_scope: ``"full"`` (one index over the whole graph) or
            ``"partial"`` (built lazily over this query's candidate
            footprint — see :mod:`repro.reachability.partial`).
        footprint_estimate: the costing-time footprint estimate behind a
            partial-scope choice; None for full-scope plans.
    """

    index_name: str
    executor: str
    downward_order: tuple[str, ...]
    cost: CostEstimate | None
    index_reason: str
    operators: tuple[PhysicalOperator, ...] = ()
    index_scope: str = "full"
    footprint_estimate: int | None = None

    @property
    def scoped_index_name(self) -> str:
        """The pool/profile key of this plan's index choice
        (``"tc"``, ``"tc@partial"``, ...)."""
        return scoped_index_key(self.index_name, self.index_scope)

    def covers_query(self, query) -> bool:
        """Does the downward order cover every node of ``query``?

        Executors key off this: :meth:`repro.engine.gtea.GTEA._instantiate`
        falls back to the default bottom-up order when it is False, and
        the codegen backend (:mod:`repro.plan.codegen`) refuses to
        specialize the plan.
        """
        return set(self.downward_order) == set(query.nodes)

    def explain_lines(self, observed: "Sequence | None" = None) -> list[str]:
        """Render the plan; with ``observed`` operator stats (an
        execution's ``EvaluationStats.operator_stats``), each pipeline
        row also shows what actually happened — including runtime
        reorderings, early exits and skipped operators."""
        if self.index_scope == "full":
            lines = [f"index: {self.index_name} ({self.index_reason})"]
        else:
            footprint = (
                f"footprint≈{self.footprint_estimate}"
                if self.footprint_estimate is not None
                else "footprint unknown"
            )
            lines = [
                f"index: [index {self.index_name}/{self.index_scope} · "
                f"{footprint}] ({self.index_reason})"
            ]
        if self.cost is not None:
            lines.append(f"executor: {self.executor} ({self.cost.reason})")
            unit = "s" if self.cost.calibrated else ""
            lines.append(
                f"  cost estimate: gtea={_fmt(self.cost.gtea_cost)}{unit} "
                f"baseline={_fmt(self.cost.baseline_cost)}{unit} "
                f"candidates~{self.cost.total_candidates}"
            )
        else:
            lines.append(f"executor: {self.executor}")
        lines.append("operator pipeline:")
        observed_by_key: dict[tuple[str, str | None], object] = {}
        for record in observed or ():
            observed_by_key.setdefault((record.op, record.target), record)
        for step, operator in enumerate(self.operators):
            row = f"  {step:>2}. {operator.label:<28}"
            if operator.estimate is not None:
                row += f" est~{operator.estimate:<8}"
            else:
                row += " " * 13
            record = observed_by_key.get((operator.op, operator.target))
            if record is not None:
                row += (
                    f" obs in={record.input_size} out={record.output_size}"
                    f" {1e3 * record.seconds:.2f}ms probes={record.index_lookups}"
                )
                if record.note:
                    row += f" [{record.note}]"
            elif observed:
                row += " obs (not executed)"
            lines.append(row.rstrip())
        if observed:
            executed = [r.label for r in observed if r.op == "DownwardPrune"]
            planned = [o.label for o in self.operators if o.op == "DownwardPrune"]
            if executed and executed != planned[: len(executed)]:
                lines.append("  executed downward order (adaptive): " + " -> ".join(executed))
        return lines


def _fmt(cost: float) -> str:
    return f"{cost:.3e}" if isinstance(cost, float) and cost != int(cost) else str(int(cost))


def build_operator_pipeline(
    executor: str,
    logical: LogicalPlan,
    downward_order: tuple[str, ...],
) -> tuple[PhysicalOperator, ...]:
    """The explicit operator list for one executor routing decision."""
    if executor == "constant-empty":
        return (PhysicalOperator(op="ConstantEmpty"),)
    estimates = {source.node_id: source.estimate for source in logical.sources}
    total = sum(estimates.values())
    if executor == "twigstackd":
        return (PhysicalOperator(op="BaselineDelegate", estimate=total),)
    pipeline = [PhysicalOperator(op="CandidateScan", estimate=total)]
    pipeline.extend(
        PhysicalOperator(op="DownwardPrune", target=node_id, estimate=estimates[node_id])
        for node_id in downward_order
    )
    pipeline.extend(
        [
            PhysicalOperator(op="UpwardPrune", estimate=total),
            PhysicalOperator(op="BuildMatchingGraph"),
            PhysicalOperator(op="CollectResults"),
        ]
    )
    return tuple(pipeline)


def build_physical_plan(
    graph: DataGraph,
    normalized: NormalizedQuery,
    logical: LogicalPlan,
    *,
    index: str = "auto",
    stats: GraphStats | None = None,
    profile: "CostProfile | None" = None,
    pooled: Iterable[str] = (),
) -> PhysicalPlan:
    """Cost the logical plan and fix index, executor and operator list.

    Args:
        graph: the data graph.
        normalized: the normalize-phase outcome (for the unsatisfiable
            short circuit).
        logical: the logical plan to realize.
        index: an explicit index name pins the choice; ``"auto"`` lets
            the cost model decide from the graph statistics.
        stats: precomputed :func:`~repro.graph.stats.graph_stats` (the
            session layer caches them per graph version); computed on
            demand when omitted.
        profile: the session's observed :class:`CostProfile`; when given,
            measured per-element rates calibrate the executor inequality
            and may override the index ladder.
        pooled: names of full-scope indexes the session has already
            built; an already-built index makes the full arm free, so
            per-query costing never picks partial against it.
    """
    if stats is None:
        stats = graph_stats(graph)
    index_scope = "full"
    footprint_estimate: int | None = None
    if index == "auto":
        choice = choose_scoped_index(
            stats, logical.sources, profile, graph.version, pooled=pooled
        )
        index_name = choice.index_name
        index_reason = choice.reason
        index_scope = choice.scope
        if choice.scope != "full":
            footprint_estimate = choice.footprint_estimate
    else:
        # Deferred import: the factory imports this package's cost model.
        from ..reachability.factory import available_indexes

        if index not in available_indexes():
            raise ValueError(
                f"unknown index {index!r}; available: "
                f"{', '.join(available_indexes())} (or 'auto')"
            )
        index_name = index
        index_reason = "pinned by caller"

    if not normalized.satisfiable:
        return PhysicalPlan(
            index_name=index_name,
            executor="constant-empty",
            downward_order=logical.downward_order,
            cost=None,
            index_reason=index_reason,
            operators=build_operator_pipeline("constant-empty", logical, logical.downward_order),
            index_scope=index_scope,
            footprint_estimate=footprint_estimate,
        )

    estimates = {source.node_id: source.estimate for source in logical.sources}
    cost = estimate_executor(
        stats,
        logical.query,
        estimates,
        profile=profile,
        index_name=scoped_index_key(index_name, index_scope),
        graph_version=graph.version,
    )
    if cost.executor != "gtea" and index_scope != "full":
        # Partial indexes serve the GTEA pipeline only; a baseline-routed
        # plan performs whole-graph sweeps, so fall back to the full arm —
        # the ladder pick, not the partial inner (a small-footprint inner
        # like tc must never become a whole-graph build).
        from .cost import choose_index_detail

        index_name, _ = choose_index_detail(stats, profile, graph.version)
        index_scope = "full"
        footprint_estimate = None
        index_reason += " [full scope: baseline executor]"
    return PhysicalPlan(
        index_name=index_name,
        executor=cost.executor,
        downward_order=logical.downward_order,
        cost=cost,
        index_reason=index_reason,
        operators=build_operator_pipeline(cost.executor, logical, logical.downward_order),
        index_scope=index_scope,
        footprint_estimate=footprint_estimate,
    )
