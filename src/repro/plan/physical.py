"""Phase 3 of query compilation: the physical plan.

Turns a :class:`~repro.plan.logical.LogicalPlan` into concrete execution
decisions using the cost model of :mod:`repro.plan.cost`:

* which reachability index the executor should probe (the ladder that
  used to be hardwired in ``reachability.factory.select_auto_index``);
* which executor runs the query — GTEA's prune-and-match pipeline, the
  TwigStackD baseline for low-selectivity conjunctive queries on DAGs
  (behind the existing :class:`repro.baselines.base.BaselineEvaluator`
  interface), or the constant-empty executor for queries the normalize
  phase proved unsatisfiable;
* the downward prune order (inherited from the logical plan's
  selectivity ordering).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.digraph import DataGraph
from ..graph.stats import GraphStats, graph_stats
from .cost import CostEstimate, choose_index, estimate_executor
from .logical import LogicalPlan
from .normalize import NormalizedQuery

#: executor names a physical plan may carry.
EXECUTORS = ("gtea", "twigstackd", "constant-empty")


@dataclass(frozen=True)
class PhysicalPlan:
    """Concrete execution decisions for one compiled query.

    Attributes:
        index_name: reachability index the executor probes (resolved,
            never ``"auto"``).
        executor: one of :data:`EXECUTORS`.
        downward_order: node order for Procedure 6 (valid for the
            *rewritten* query only; executors fall back to the default
            bottom-up order when running the original query).
        cost: the executor cost comparison, or None for constant-empty.
        index_reason: why this index was picked.
    """

    index_name: str
    executor: str
    downward_order: tuple[str, ...]
    cost: CostEstimate | None
    index_reason: str

    def explain_lines(self) -> list[str]:
        lines = [f"index: {self.index_name} ({self.index_reason})"]
        if self.cost is not None:
            lines.append(f"executor: {self.executor} ({self.cost.reason})")
            lines.append(
                f"  cost estimate: gtea={self.cost.gtea_cost} "
                f"baseline={self.cost.baseline_cost} "
                f"candidates~{self.cost.total_candidates}"
            )
        else:
            lines.append(f"executor: {self.executor}")
        return lines


def build_physical_plan(
    graph: DataGraph,
    normalized: NormalizedQuery,
    logical: LogicalPlan,
    *,
    index: str = "auto",
    stats: GraphStats | None = None,
) -> PhysicalPlan:
    """Cost the logical plan and fix index, executor and prune order.

    Args:
        graph: the data graph.
        normalized: the normalize-phase outcome (for the unsatisfiable
            short circuit).
        logical: the logical plan to realize.
        index: an explicit index name pins the choice; ``"auto"`` lets
            the cost model decide from the graph statistics.
        stats: precomputed :func:`~repro.graph.stats.graph_stats` (the
            session layer caches them per graph version); computed on
            demand when omitted.
    """
    if stats is None:
        stats = graph_stats(graph)
    if index == "auto":
        index_name = choose_index(stats)
        index_reason = "cost model: graph-shape ladder"
    else:
        # Deferred import: the factory imports this package's cost model.
        from ..reachability.factory import available_indexes

        if index not in available_indexes():
            raise ValueError(
                f"unknown index {index!r}; available: "
                f"{', '.join(available_indexes())} (or 'auto')"
            )
        index_name = index
        index_reason = "pinned by caller"

    if not normalized.satisfiable:
        return PhysicalPlan(
            index_name=index_name,
            executor="constant-empty",
            downward_order=logical.downward_order,
            cost=None,
            index_reason=index_reason,
        )

    estimates = {source.node_id: source.estimate for source in logical.sources}
    cost = estimate_executor(stats, logical.query, estimates)
    return PhysicalPlan(
        index_name=index_name,
        executor=cost.executor,
        downward_order=logical.downward_order,
        cost=cost,
        index_reason=index_reason,
    )
