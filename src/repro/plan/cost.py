"""The physical planner's cost model.

Two decisions are made here, both from statistics only (no index is
built and no candidate list is materialized at costing time):

* **index choice** — the heuristic ladder that used to live in
  :func:`repro.reachability.factory.select_auto_index`; the factory now
  delegates to :func:`choose_index` so the cost model is the single
  owner of the decision;
* **executor choice** — GTEA versus the TwigStackD baseline.  GTEA's
  per-query work scales with the candidate sets it prunes and joins,
  while TwigStackD's pre-filter performs two whole-graph sweeps
  regardless of selectivity (paper Section 5.2, Fig. 10).  When the
  estimated candidate volume exceeds the cost of those sweeps — a
  conjunctive low-selectivity query on a DAG — the sweeps are the
  cheaper plan.

Candidate-set sizes are *estimated* from the graph's label index
(:func:`estimate_candidates`): a predicate that pins ``label`` costs one
posting-list length lookup; anything else is bounded by the node count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..graph.digraph import DataGraph
from ..graph.stats import GraphStats
from ..query.gtpq import GTPQ

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .feedback import CostProfile
    from .logical import CandidateSource

#: node count up to which the packed-bitset transitive closure is the
#: obvious winner (O(1) queries; the bit matrix stays under ~32 KiB).
AUTO_TC_MAX_NODES = 512

#: edge/node ratio under which a DAG counts as "near-tree".
AUTO_NEAR_TREE_RATIO = 1.1

#: cost units of one whole-graph pre-filter sweep, per graph element.
#: TwigStackD sweeps twice (forward + backward DP over the DAG).
BASELINE_SWEEPS = 2

#: GTEA touches each candidate roughly thrice: the initial fetch, the
#: bottom-up re-read of Procedure 6, and the matching-graph assembly.
GTEA_CANDIDATE_PASSES = 3

#: a partial index only pays when its footprint stays under this
#: fraction of the graph — beyond it the "partial" build approaches a
#: full build plus adapter overhead.
PARTIAL_FOOTPRINT_FRACTION = 0.25

#: estimated cone size per candidate: the label posting lists give the
#: seeds; their reachable cone is guessed at this multiple (footprints
#: are descendant-closed, so the cone can only grow the seed set).
PARTIAL_CONE_EXPANSION = 4.0


def choose_index(
    stats: GraphStats,
    profile: "CostProfile | None" = None,
    graph_version: int | None = None,
) -> str:
    """Cost-based index choice from graph statistics (and observations).

    The heuristic ladder:

    1. tiny graphs — packed transitive closure (quadratic space is noise,
       queries are one bit probe);
    2. forests (acyclic, every non-root with exactly one parent) —
       interval labels, whose containment test is exact there;
    3. near-tree DAGs (edge count within :data:`AUTO_NEAR_TREE_RATIO` of
       the node count) — the Agrawal tree cover, which keeps one interval
       per node on such graphs;
    4. everything else — 3-hop, the paper's default.

    Cyclic graphs skip the forest/near-tree rungs: the statistics describe
    the raw graph, not its condensation, so tree-shape evidence is absent.

    When a :class:`~repro.plan.feedback.CostProfile` with observations for
    ``graph_version`` is given, measured per-element execution rates can
    override the ladder — see :func:`choose_index_detail`.
    """
    return choose_index_detail(stats, profile, graph_version)[0]


def choose_index_detail(
    stats: GraphStats,
    profile: "CostProfile | None" = None,
    graph_version: int | None = None,
) -> tuple[str, str]:
    """:func:`choose_index` plus the reason for the pick.

    The shape ladder decides first.  If the session's cost profile has
    observed the ladder pick *and* a cheaper alternative index on this
    graph version — cheaper by the
    :data:`~repro.plan.feedback.INDEX_OVERRIDE_MARGIN` factor — the
    measurement wins over the heuristic.
    """
    if stats.num_nodes <= AUTO_TC_MAX_NODES:
        ladder = "tc"
    elif stats.is_dag and stats.num_edges == stats.num_nodes - stats.num_roots:
        ladder = "interval"
    elif stats.is_dag and stats.num_edges <= AUTO_NEAR_TREE_RATIO * stats.num_nodes:
        ladder = "tree-cover"
    else:
        ladder = "3hop"

    if profile is not None and graph_version is not None:
        from .feedback import INDEX_OVERRIDE_MARGIN

        ladder_rate = profile.observed_rate(ladder, graph_version)
        best = profile.preferred_index(graph_version)
        if (
            ladder_rate is not None
            and best is not None
            and best[0] != ladder
            and best[1] < INDEX_OVERRIDE_MARGIN * ladder_rate
        ):
            return best[0], (
                f"cost profile: observed {best[1]:.2e}s/element beats "
                f"{ladder} at {ladder_rate:.2e}s/element"
            )
    return ladder, "cost model: graph-shape ladder"


def scoped_index_key(index_name: str, scope: str) -> str:
    """The profile/pool key of one (index, scope) arm.

    Full-scope arms keep the bare index name, so every pre-existing
    profile key and pool entry reads unchanged; partial arms append the
    scope tag (``"tc@partial"``).
    """
    return index_name if scope == "full" else f"{index_name}@{scope}"


@dataclass(frozen=True)
class IndexChoice:
    """The per-query (index, scope) decision and why it was made.

    ``scope`` is ``"full"`` (one index over the whole graph, shared by
    every query) or ``"partial"`` (an index over this query's candidate
    footprint, built lazily and pooled by domain fingerprint).
    ``footprint_estimate`` is the costing-time cone estimate — the
    executor recomputes the real footprint before building.
    """

    index_name: str
    scope: str
    reason: str
    footprint_estimate: int | None = None

    @property
    def scoped_name(self) -> str:
        return scoped_index_key(self.index_name, self.scope)


def index_build_units(index_name: str, num_nodes: int, num_edges: int) -> float:
    """Rough build cost of one index, in graph-element units.

    Only the *relative* order across (index, scope) arms matters: the
    packed transitive closure is quadratic in nodes, interval labels and
    the tree cover are one traversal, and the chain/contour/hop family
    pays a few passes plus its chain decomposition.
    """
    if index_name == "tc":
        return num_nodes * num_nodes / 8 + num_nodes + num_edges
    if index_name in ("interval", "tree-cover"):
        return num_nodes + num_edges
    return 4.0 * (num_nodes + num_edges)


def choose_scoped_index(
    stats: GraphStats,
    sources: Sequence["CandidateSource"],
    profile: "CostProfile | None" = None,
    graph_version: int | None = None,
    *,
    pooled: Iterable[str] = (),
) -> IndexChoice:
    """Per-query index costing: pick an (index, scope) arm.

    The graph-shape ladder (:func:`choose_index_detail`) prices the
    full-scope arm.  The partial arm is admissible when every candidate
    source is bounded by a label posting list and the estimated
    footprint (seeds times :data:`PARTIAL_CONE_EXPANSION`, clamped to
    the node count) stays under :data:`PARTIAL_FOOTPRINT_FRACTION` of
    the graph; it wins when its estimated build
    (:func:`index_build_units` over the footprint) undercuts the full
    build — trivially true once the full index is this cheap to skip.
    Already-built pool entries (``pooled``) make the full arm free, so
    it always wins; and when the cost profile has observed both arms,
    measured seconds-per-element settle the race instead.
    """
    full_name, full_reason = choose_index_detail(stats, profile, graph_version)
    full = IndexChoice(full_name, "full", full_reason)
    if full_name in pooled:
        return IndexChoice(
            full_name, "full", f"pooled: {full_name} already built", None
        )
    if stats.num_nodes <= AUTO_TC_MAX_NODES:
        return full
    if not sources or any(s.source != "label-index" for s in sources):
        return full
    seeds = sum(s.estimate for s in sources)
    footprint = min(stats.num_nodes, int(PARTIAL_CONE_EXPANSION * seeds) + 1)
    if footprint > PARTIAL_FOOTPRINT_FRACTION * stats.num_nodes:
        return full
    inner = "tc" if footprint <= AUTO_TC_MAX_NODES else full_name
    edge_density = stats.num_edges / max(1, stats.num_nodes)
    partial_units = index_build_units(
        inner, footprint, int(edge_density * footprint) + 1
    )
    full_units = index_build_units(full_name, stats.num_nodes, stats.num_edges)
    if partial_units >= full_units:
        return full
    choice = IndexChoice(
        inner,
        "partial",
        f"per-query: footprint≈{footprint} of {stats.num_nodes} nodes; "
        f"{inner} over the cone undercuts a full {full_name} build",
        footprint,
    )
    if profile is not None and graph_version is not None:
        from .feedback import INDEX_OVERRIDE_MARGIN

        partial_rate = profile.observed_rate(choice.scoped_name, graph_version)
        full_rate = profile.observed_rate(full_name, graph_version)
        if (
            partial_rate is not None
            and full_rate is not None
            and full_rate < INDEX_OVERRIDE_MARGIN * partial_rate
        ):
            return IndexChoice(
                full_name,
                "full",
                f"cost profile: observed full {full_name} at "
                f"{full_rate:.2e}s/element beats partial at "
                f"{partial_rate:.2e}s/element",
                footprint,
            )
    return choice


def estimate_candidates(graph: DataGraph, query: GTPQ) -> dict[str, int]:
    """Estimated ``|mat(u)|`` per query node, without materializing lists.

    A predicate pinning ``label`` is bounded by the posting-list length;
    any other predicate conservatively by the node count.  Extra atoms
    beyond the label pin can only shrink the set, so these are upper
    bounds — exactly what the executor-choice inequality needs.
    """
    estimates: dict[str, int] = {}
    for node_id in query.nodes:
        predicate = query.attribute(node_id)
        pinned = next(
            (
                constant
                for attribute, op, constant in predicate.atoms
                if attribute == "label" and op == "="
            ),
            None,
        )
        if pinned is not None:
            estimates[node_id] = len(graph.nodes_with_label(pinned))
        else:
            estimates[node_id] = graph.num_nodes
    return estimates


@dataclass(frozen=True)
class CostEstimate:
    """The two executor costs and the resulting pick.

    Costs are in abstract "elements touched" units — or, when the cost
    profile calibrated them (``calibrated=True``), in observed seconds.
    Only their relative order matters either way.
    """

    total_candidates: int
    gtea_cost: float
    baseline_cost: float
    executor: str
    reason: str
    calibrated: bool = False


def estimate_executor(
    stats: GraphStats,
    query: GTPQ,
    candidate_estimates: dict[str, int],
    profile: "CostProfile | None" = None,
    index_name: str | None = None,
    graph_version: int | None = None,
) -> CostEstimate:
    """Pick the executor for one query: ``"gtea"`` or ``"twigstackd"``.

    TwigStackD is only admissible for conjunctive queries on acyclic
    data (its pre-filter DP assumes both); within that class it wins when
    its two fixed whole-graph sweeps undercut GTEA's candidate-volume
    work.

    With a :class:`~repro.plan.feedback.CostProfile` holding enough
    observed executions of *both* executors on this graph version, the
    abstract unit constants are replaced by measured seconds-per-element
    rates, so the inequality compares predicted wall time instead.
    """
    total = sum(candidate_estimates.values())
    gtea_cost: float = GTEA_CANDIDATE_PASSES * total
    baseline_cost: float = BASELINE_SWEEPS * (stats.num_nodes + stats.num_edges) + total
    calibrated = False
    if profile is not None and index_name is not None and graph_version is not None:
        rates = profile.executor_costs(index_name, graph_version)
        if rates is not None:
            gtea_rate, baseline_rate = rates
            gtea_cost = gtea_rate * total
            baseline_cost = baseline_rate * (stats.num_nodes + stats.num_edges)
            calibrated = True
    if not query.is_conjunctive():
        return CostEstimate(
            total,
            gtea_cost,
            baseline_cost,
            "gtea",
            "query uses OR/NOT: GTEA evaluates logical operators natively",
            calibrated,
        )
    if not stats.is_dag:
        return CostEstimate(
            total,
            gtea_cost,
            baseline_cost,
            "gtea",
            "cyclic data: the baseline pre-filter assumes a DAG",
            calibrated,
        )
    suffix = " [calibrated from observed stats]" if calibrated else ""
    if baseline_cost < gtea_cost:
        return CostEstimate(
            total,
            gtea_cost,
            baseline_cost,
            "twigstackd",
            f"low selectivity (~{total} candidates): two whole-graph "
            f"sweeps undercut candidate-volume pruning{suffix}",
            calibrated,
        )
    return CostEstimate(
        total,
        gtea_cost,
        baseline_cost,
        "gtea",
        f"selective candidates (~{total}): pruning beats graph sweeps{suffix}",
        calibrated,
    )
