"""The physical planner's cost model.

Two decisions are made here, both from statistics only (no index is
built and no candidate list is materialized at costing time):

* **index choice** — the heuristic ladder that used to live in
  :func:`repro.reachability.factory.select_auto_index`; the factory now
  delegates to :func:`choose_index` so the cost model is the single
  owner of the decision;
* **executor choice** — GTEA versus the TwigStackD baseline.  GTEA's
  per-query work scales with the candidate sets it prunes and joins,
  while TwigStackD's pre-filter performs two whole-graph sweeps
  regardless of selectivity (paper Section 5.2, Fig. 10).  When the
  estimated candidate volume exceeds the cost of those sweeps — a
  conjunctive low-selectivity query on a DAG — the sweeps are the
  cheaper plan.

Candidate-set sizes are *estimated* from the graph's label index
(:func:`estimate_candidates`): a predicate that pins ``label`` costs one
posting-list length lookup; anything else is bounded by the node count.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.digraph import DataGraph
from ..graph.stats import GraphStats
from ..query.gtpq import GTPQ

#: node count up to which the packed-bitset transitive closure is the
#: obvious winner (O(1) queries; the bit matrix stays under ~32 KiB).
AUTO_TC_MAX_NODES = 512

#: edge/node ratio under which a DAG counts as "near-tree".
AUTO_NEAR_TREE_RATIO = 1.1

#: cost units of one whole-graph pre-filter sweep, per graph element.
#: TwigStackD sweeps twice (forward + backward DP over the DAG).
BASELINE_SWEEPS = 2

#: GTEA touches each candidate roughly thrice: the initial fetch, the
#: bottom-up re-read of Procedure 6, and the matching-graph assembly.
GTEA_CANDIDATE_PASSES = 3


def choose_index(stats: GraphStats) -> str:
    """Cost-based index choice from graph statistics alone.

    The heuristic ladder:

    1. tiny graphs — packed transitive closure (quadratic space is noise,
       queries are one bit probe);
    2. forests (acyclic, every non-root with exactly one parent) —
       interval labels, whose containment test is exact there;
    3. near-tree DAGs (edge count within :data:`AUTO_NEAR_TREE_RATIO` of
       the node count) — the Agrawal tree cover, which keeps one interval
       per node on such graphs;
    4. everything else — 3-hop, the paper's default.

    Cyclic graphs skip the forest/near-tree rungs: the statistics describe
    the raw graph, not its condensation, so tree-shape evidence is absent.
    """
    if stats.num_nodes <= AUTO_TC_MAX_NODES:
        return "tc"
    if stats.is_dag:
        if stats.num_edges == stats.num_nodes - stats.num_roots:
            return "interval"
        if stats.num_edges <= AUTO_NEAR_TREE_RATIO * stats.num_nodes:
            return "tree-cover"
    return "3hop"


def estimate_candidates(graph: DataGraph, query: GTPQ) -> dict[str, int]:
    """Estimated ``|mat(u)|`` per query node, without materializing lists.

    A predicate pinning ``label`` is bounded by the posting-list length;
    any other predicate conservatively by the node count.  Extra atoms
    beyond the label pin can only shrink the set, so these are upper
    bounds — exactly what the executor-choice inequality needs.
    """
    estimates: dict[str, int] = {}
    for node_id in query.nodes:
        predicate = query.attribute(node_id)
        pinned = next(
            (
                constant
                for attribute, op, constant in predicate.atoms
                if attribute == "label" and op == "="
            ),
            None,
        )
        if pinned is not None:
            estimates[node_id] = len(graph.nodes_with_label(pinned))
        else:
            estimates[node_id] = graph.num_nodes
    return estimates


@dataclass(frozen=True)
class CostEstimate:
    """The two executor costs and the resulting pick.

    Costs are in abstract "elements touched" units; only their relative
    order matters.
    """

    total_candidates: int
    gtea_cost: int
    baseline_cost: int
    executor: str
    reason: str


def estimate_executor(
    stats: GraphStats, query: GTPQ, candidate_estimates: dict[str, int]
) -> CostEstimate:
    """Pick the executor for one query: ``"gtea"`` or ``"twigstackd"``.

    TwigStackD is only admissible for conjunctive queries on acyclic
    data (its pre-filter DP assumes both); within that class it wins when
    its two fixed whole-graph sweeps undercut GTEA's candidate-volume
    work.
    """
    total = sum(candidate_estimates.values())
    gtea_cost = GTEA_CANDIDATE_PASSES * total
    baseline_cost = BASELINE_SWEEPS * (stats.num_nodes + stats.num_edges) + total
    if not query.is_conjunctive():
        return CostEstimate(
            total,
            gtea_cost,
            baseline_cost,
            "gtea",
            "query uses OR/NOT: GTEA evaluates logical operators natively",
        )
    if not stats.is_dag:
        return CostEstimate(
            total,
            gtea_cost,
            baseline_cost,
            "gtea",
            "cyclic data: the baseline pre-filter assumes a DAG",
        )
    if baseline_cost < gtea_cost:
        return CostEstimate(
            total,
            gtea_cost,
            baseline_cost,
            "twigstackd",
            f"low selectivity (~{total} candidates): two whole-graph "
            "sweeps undercut candidate-volume pruning",
        )
    return CostEstimate(
        total,
        gtea_cost,
        baseline_cost,
        "gtea",
        f"selective candidates (~{total}): pruning beats graph sweeps",
    )
