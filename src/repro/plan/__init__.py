"""Query compilation (S9): normalize → logical plan → physical plan.

The optimizer layer between :mod:`repro.query` and :mod:`repro.engine`.
:func:`compile_query` turns a GTPQ into a :class:`CompiledPlan` — an
inspectable artifact whose ``explain()`` shows the rewrites of the
normalize phase (simplification, Theorem-1 satisfiability, Algorithm-1
minimization), the logical IR (candidate sources, prune obligations,
prune order) and the physical decisions (reachability index, executor,
cost estimates).  :class:`repro.engine.GTEA` executes compiled plans;
:class:`repro.engine.QuerySession` caches them per query fingerprint.
"""

from .codegen import (
    CodegenError,
    CompiledPlanFunction,
    analyze_plan,
    compile_plan,
    rehydrate_plan_function,
    supports_plan,
)
from .compile import CompiledPlan, compile_query
from .shared import (
    BatchPlan,
    SharedPlanDAG,
    SharedSubtree,
    build_shared_dag,
    compile_batch,
    estimated_sharing_savings,
    should_share,
)
from .cost import (
    AUTO_NEAR_TREE_RATIO,
    AUTO_TC_MAX_NODES,
    PARTIAL_CONE_EXPANSION,
    PARTIAL_FOOTPRINT_FRACTION,
    CostEstimate,
    IndexChoice,
    choose_index,
    choose_index_detail,
    choose_scoped_index,
    estimate_candidates,
    estimate_executor,
    index_build_units,
    scoped_index_key,
)
from .feedback import CostProfile
from .logical import CandidateSource, LogicalPlan, PruneObligation, build_logical_plan
from .normalize import NormalizedQuery, normalize
from .physical import (
    PhysicalOperator,
    PhysicalPlan,
    build_operator_pipeline,
    build_physical_plan,
)

__all__ = [
    "AUTO_NEAR_TREE_RATIO",
    "AUTO_TC_MAX_NODES",
    "BatchPlan",
    "CandidateSource",
    "CodegenError",
    "CompiledPlan",
    "CompiledPlanFunction",
    "CostEstimate",
    "CostProfile",
    "IndexChoice",
    "LogicalPlan",
    "NormalizedQuery",
    "PARTIAL_CONE_EXPANSION",
    "PARTIAL_FOOTPRINT_FRACTION",
    "PhysicalOperator",
    "PhysicalPlan",
    "PruneObligation",
    "SharedPlanDAG",
    "SharedSubtree",
    "analyze_plan",
    "build_logical_plan",
    "build_operator_pipeline",
    "build_physical_plan",
    "build_shared_dag",
    "choose_index",
    "choose_index_detail",
    "choose_scoped_index",
    "compile_batch",
    "compile_plan",
    "compile_query",
    "estimate_candidates",
    "estimate_executor",
    "estimated_sharing_savings",
    "index_build_units",
    "normalize",
    "scoped_index_key",
    "rehydrate_plan_function",
    "should_share",
    "supports_plan",
]
