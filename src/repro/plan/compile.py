"""The query compiler: normalize → logical plan → physical plan.

One entry point, :func:`compile_query`, produces a :class:`CompiledPlan`
that the executors in :mod:`repro.engine` run.  The compiled artifact is
inspectable end to end — ``CompiledPlan.explain()`` renders all three
stages — and is what :class:`repro.engine.session.QuerySession` caches
per canonical query fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.digraph import DataGraph
from ..graph.stats import GraphStats
from ..query.gtpq import GTPQ
from .logical import LogicalPlan, build_logical_plan
from .normalize import NormalizedQuery, normalize
from .physical import PhysicalPlan, build_physical_plan


@dataclass(frozen=True)
class CompiledPlan:
    """A fully compiled query, ready for repeated execution."""

    normalized: NormalizedQuery
    logical: LogicalPlan
    physical: PhysicalPlan

    @property
    def original(self) -> GTPQ:
        """The query as submitted."""
        return self.normalized.original

    @property
    def query(self) -> GTPQ:
        """The (possibly rewritten) query the executor runs."""
        return self.normalized.rewritten

    @property
    def unsatisfiable(self) -> bool:
        return not self.normalized.satisfiable

    @property
    def subtree_fingerprints(self) -> dict[str, str]:
        """Per rewritten-query node, its canonical subtree fingerprint."""
        return self.logical.subtree_fingerprint_map

    def explain(self, observed=None) -> str:
        """Render every compilation stage, one section per phase.

        Args:
            observed: optional operator records of one execution
                (``EvaluationStats.operator_stats``); the physical-plan
                section then shows estimated *and* observed per-operator
                stats, including runtime reorderings.
        """
        sections = [
            ("normalize", self.normalized.explain_lines()),
            ("logical plan", self.logical.explain_lines()),
            ("physical plan", self.physical.explain_lines(observed=observed)),
        ]
        lines: list[str] = []
        for title, body in sections:
            lines.append(f"== {title} ==")
            lines.extend(body)
        return "\n".join(lines)


def compile_query(
    graph: DataGraph,
    query: GTPQ,
    *,
    index: str = "auto",
    minimize: bool = True,
    stats: GraphStats | None = None,
    profile=None,
    pooled=(),
) -> CompiledPlan:
    """Compile ``query`` for evaluation over ``graph``.

    Args:
        graph: the data graph.
        query: the query to compile.
        index: reachability index name, or ``"auto"`` for the cost
            model's choice.
        minimize: run Algorithm-1 minimization during the normalize
            phase (simplification and the satisfiability short circuit
            always run).
        stats: precomputed graph statistics, to skip the per-compile
            :func:`~repro.graph.stats.graph_stats` walk.
        profile: optional :class:`~repro.plan.feedback.CostProfile` of
            observed runtime stats; calibrates the physical planner's
            executor inequality and index choice.
        pooled: full-scope index names already built by the caller (the
            session's reachability pool); per-query costing treats those
            as free and never picks a partial index against them.
    """
    normalized = normalize(query, minimize=minimize)
    logical = build_logical_plan(graph, normalized)
    physical = build_physical_plan(
        graph, normalized, logical, index=index, stats=stats, profile=profile,
        pooled=pooled,
    )
    return CompiledPlan(normalized=normalized, logical=logical, physical=physical)
