"""Phase 1 of query compilation: normalize and shrink the query.

Runs the paper's own logical machinery *before* any candidate set is
fetched:

* every structural predicate goes through
  :func:`repro.logic.transform.simplify` (substitution residue such as
  ``p & 1`` or duplicated operands disappears);
* whole-query satisfiability is decided with
  :func:`repro.analysis.satisfiability.is_query_satisfiable` (Theorem 1)
  plus the backbone check the theorem assumes — a backbone node whose
  attribute predicate is unsatisfiable can never have an image, so the
  query is unsatisfiable regardless of ``fcs``;
* satisfiable queries are shrunk with
  :func:`repro.analysis.minimization.minimize_query` (Algorithm 1).

Minimization may *relocate* output nodes into isomorphic counterparts
(Algorithm 1 lines 12–15); :attr:`NormalizedQuery.output_mapping`
records original-output → rewritten-node so downstream consumers can
report results against the original query's output nodes.  Column order
is preserved by construction, so the rewritten query's answer tuples
are already aligned with the original outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.minimization import minimize_query
from ..analysis.satisfiability import is_query_satisfiable
from ..logic import Formula
from ..logic.transform import simplify
from ..query.gtpq import GTPQ


@dataclass(frozen=True)
class NormalizedQuery:
    """Outcome of the normalize phase.

    Attributes:
        original: the query as submitted.
        rewritten: the query the executor should run — simplified and
            minimized; equals ``original`` when nothing changed.
        satisfiable: Theorem-1 verdict; unsatisfiable queries compile to
            a constant-empty plan and never touch the graph.
        output_mapping: original output node → rewritten node carrying
            its column (identity unless minimization relocated it).
        removed_nodes: query nodes minimization dropped, in sorted order.
        simplified_predicates: nodes whose ``fs`` shrank under
            :func:`~repro.logic.transform.simplify`.
        notes: human-readable rewrite log for ``explain()``.
    """

    original: GTPQ
    rewritten: GTPQ
    satisfiable: bool
    output_mapping: dict[str, str] = field(default_factory=dict)
    removed_nodes: tuple[str, ...] = ()
    simplified_predicates: tuple[str, ...] = ()
    notes: tuple[str, ...] = ()

    @property
    def changed(self) -> bool:
        """Did normalization rewrite the query at all?"""
        return bool(
            self.removed_nodes
            or self.simplified_predicates
            or any(old != new for old, new in self.output_mapping.items())
        )

    def explain_lines(self) -> list[str]:
        lines = [
            f"input: {len(self.original.nodes)} nodes, "
            f"outputs {tuple(self.original.outputs)}",
        ]
        if not self.satisfiable:
            lines.append("verdict: UNSATISFIABLE -> constant-empty plan")
            lines.extend(f"  - {note}" for note in self.notes)
            return lines
        if self.simplified_predicates:
            lines.append("simplified fs at: " + ", ".join(self.simplified_predicates))
        if self.removed_nodes:
            lines.append(
                f"minimized: {len(self.original.nodes)} -> "
                f"{len(self.rewritten.nodes)} nodes "
                f"(removed {', '.join(self.removed_nodes)})"
            )
        relocated = {old: new for old, new in self.output_mapping.items() if old != new}
        if relocated:
            lines.append(
                "relocated outputs: "
                + ", ".join(f"{old} -> {new}" for old, new in relocated.items())
            )
        if not self.changed:
            lines.append("already minimal: no rewrites applied")
        lines.extend(f"  - {note}" for note in self.notes)
        return lines


def _simplify_structural(query: GTPQ) -> tuple[GTPQ, tuple[str, ...]]:
    """Push every ``fs`` through the smart constructors; report changes."""
    overrides: dict[str, Formula] = {}
    for node_id in query.nodes:
        fs = query.fs(node_id)
        simplified = simplify(fs)
        if simplified != fs:
            overrides[node_id] = simplified
    if not overrides:
        return query, ()
    return (
        query.copy(structural_override=overrides),
        tuple(sorted(overrides)),
    )


def normalize(query: GTPQ, *, minimize: bool = True) -> NormalizedQuery:
    """Run the normalize phase; see the module docstring for the steps.

    Args:
        query: the query to compile.
        minimize: run Algorithm 1 after the satisfiability check.  The
            simplification and satisfiability steps always run — they are
            linear-to-SAT on query-sized formulas, while minimization
            performs the (cached, but heavier) containment checks.
    """
    simplified, simplified_ids = _simplify_structural(query)
    notes: list[str] = []

    unsat_backbone = [
        node_id
        for node_id in simplified.backbone_nodes()
        if not simplified.attribute(node_id).is_satisfiable()
    ]
    if unsat_backbone:
        notes.append(
            "backbone node(s) with unsatisfiable attribute predicate: "
            + ", ".join(sorted(unsat_backbone))
        )
        satisfiable = False
    else:
        satisfiable = is_query_satisfiable(simplified)
        if not satisfiable:
            notes.append("Theorem 1: fa(root) & fcs(root) unsatisfiable")
    if not satisfiable:
        return NormalizedQuery(
            original=query,
            rewritten=simplified,
            satisfiable=False,
            output_mapping={o: o for o in query.outputs},
            simplified_predicates=simplified_ids,
            notes=tuple(notes),
        )

    rewritten = simplified
    removed: tuple[str, ...] = ()
    output_mapping = {o: o for o in query.outputs}
    if minimize:
        minimized = minimize_query(simplified)
        if len(minimized.outputs) == len(query.outputs):
            rewritten = minimized
            removed = tuple(sorted(set(simplified.nodes) - set(minimized.nodes)))
            output_mapping = dict(zip(query.outputs, minimized.outputs))
        else:  # pragma: no cover - defensive: keep the sound rewrite only
            notes.append("minimization dropped an output column; rewrite discarded")
        # Dropping an unsatisfiable subtree substitutes its variable to 0,
        # which can collapse an ancestor's fs to FALSE — a constant-empty
        # query Theorem 1 could not see before the rewrite (it treats
        # child variables as independent, so inter-child containment such
        # as a PC child entailing an AD sibling only surfaces once
        # minimization folds it in).  Re-check the rewritten query.
        if rewritten is not simplified and not is_query_satisfiable(rewritten):
            notes.append("minimization exposed unsatisfiability -> constant-empty plan")
            return NormalizedQuery(
                original=query,
                rewritten=rewritten,
                satisfiable=False,
                output_mapping=output_mapping,
                removed_nodes=removed,
                simplified_predicates=simplified_ids,
                notes=tuple(notes),
            )
    return NormalizedQuery(
        original=query,
        rewritten=rewritten,
        satisfiable=True,
        output_mapping=output_mapping,
        removed_nodes=removed,
        simplified_predicates=simplified_ids,
        notes=tuple(notes),
    )
