"""Batch compilation: a DAG of shared sub-plans over a query workload.

Real workloads share subtrees heavily — families of tree queries mined
from a graph differ in a node or two and repeat whole branches.  The
per-query pipeline prunes each query in isolation, re-discharging the
same downward obligations for every copy of a shared branch.

The key observation (the same one behind the bottom-up sweep of the
paper's Procedure 6) is that the *downward match set* of a rooted
subtree is query-context-free: it depends only on the subtree's own
attribute predicates, edge types and structural formulas.  So a batch
can be compiled into a :class:`SharedPlanDAG` with one node per
*distinct* rooted subtree — keyed by the canonical fingerprint of
:func:`repro.query.serialize.subtree_fingerprints` — topologically
ordered children-before-parents.  Each shared prune obligation then
executes once, and its post-prune candidate set feeds every query that
contains the subtree (:class:`repro.engine.shared.SharedExecutor`).

Only plans the physical planner routed to the GTEA executor participate;
unsatisfiable plans answer O(1) without candidates, and baseline-routed
plans do not consume downward-pruned sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..graph.digraph import DataGraph
from ..graph.stats import GraphStats
from ..query.gtpq import GTPQ
from .compile import CompiledPlan, compile_query


@dataclass(frozen=True)
class SharedSubtree:
    """One node of the shared-plan DAG: a distinct rooted subtree.

    Attributes:
        fingerprint: canonical subtree fingerprint (the sharing key).
        exemplar: ``(plan position, node id)`` of the occurrence whose
            query structure the executor uses to discharge the prune —
            any occurrence works (equal fingerprints guarantee equal
            downward match sets); the first one in batch order is kept.
        children: fingerprints of the exemplar's child subtrees, in the
            exemplar query's child order.
        occurrences: every ``(plan position, node id)`` that consumes
            this subtree's post-prune candidate set.
    """

    fingerprint: str
    exemplar: tuple[int, str]
    children: tuple[str, ...]
    occurrences: tuple[tuple[int, str], ...]

    @property
    def shared(self) -> bool:
        """Does more than one query node consume this sub-plan?"""
        return len(self.occurrences) > 1


@dataclass(frozen=True)
class SharedPlanDAG:
    """The shared logical sub-plans of one batch, topologically ordered.

    Attributes:
        subtrees: one entry per distinct subtree fingerprint, ordered so
            every child subtree precedes its parents (children-first; a
            valid execution order for the shared downward sweep).
        node_fingerprints: per batch position, ``node id -> fingerprint``
            for the plan's rewritten query — empty for plans that do not
            participate (unsatisfiable or baseline-routed).
    """

    subtrees: tuple[SharedSubtree, ...]
    node_fingerprints: tuple[dict[str, str], ...]

    @property
    def total_occurrences(self) -> int:
        """Rooted subtrees across the batch, with multiplicity."""
        return sum(len(subtree.occurrences) for subtree in self.subtrees)

    @property
    def distinct_subtrees(self) -> int:
        return len(self.subtrees)

    @property
    def shared_occurrences(self) -> int:
        """Occurrences served by another occurrence's prune work."""
        return self.total_occurrences - self.distinct_subtrees

    def explain_lines(self) -> list[str]:
        header = (
            f"batch: {len(self.node_fingerprints)} plans, "
            f"{self.total_occurrences} rooted subtrees, "
            f"{self.distinct_subtrees} distinct "
            f"({self.shared_occurrences} shared occurrences)"
        )
        lines = [header]
        for position, subtree in enumerate(self.subtrees):
            if not subtree.shared:
                continue
            consumers = ", ".join(
                f"q{plan_pos}:{node_id}" for plan_pos, node_id in subtree.occurrences
            )
            lines.append(
                f"  sub-plan {position} [{subtree.fingerprint[:12]}] "
                f"x{len(subtree.occurrences)} <- {consumers}"
            )
        if len(lines) == 1:
            lines.append("  (no shared subtrees in this batch)")
        return lines


@dataclass(frozen=True)
class BatchPlan:
    """A compiled workload: per-query plans plus the shared-plan DAG."""

    plans: tuple[CompiledPlan, ...]
    dag: SharedPlanDAG

    def explain(self) -> str:
        """Render the sharing structure of the batch."""
        lines = ["== shared plan DAG =="]
        lines.extend(self.dag.explain_lines())
        for position, plan in enumerate(self.plans):
            nodes = self.dag.node_fingerprints[position]
            lines.append(
                f"q{position}: executor={plan.physical.executor}, "
                f"nodes={len(plan.query.nodes)}, "
                f"subtrees in DAG={len(nodes)}"
            )
        return "\n".join(lines)


def _participates(plan: CompiledPlan) -> bool:
    """Does this plan consume shared downward-pruned candidate sets?"""
    return not plan.unsatisfiable and plan.physical.executor == "gtea"


def build_shared_dag(plans: Sequence[CompiledPlan]) -> SharedPlanDAG:
    """Build the shared-plan DAG over already compiled plans.

    The concatenation of each participating query's bottom-up node order
    visits every child subtree before its parent, so deduplicating by
    first appearance yields a topological order of the DAG for free.
    """
    order: list[str] = []
    exemplar: dict[str, tuple[int, str]] = {}
    children: dict[str, tuple[str, ...]] = {}
    occurrences: dict[str, list[tuple[int, str]]] = {}
    node_fingerprints: list[dict[str, str]] = []

    for position, plan in enumerate(plans):
        if not _participates(plan):
            node_fingerprints.append({})
            continue
        query = plan.query
        fingerprints = plan.subtree_fingerprints
        node_fingerprints.append(fingerprints)
        for node_id in query.bottom_up():
            fingerprint = fingerprints[node_id]
            if fingerprint not in exemplar:
                order.append(fingerprint)
                exemplar[fingerprint] = (position, node_id)
                children[fingerprint] = tuple(
                    fingerprints[child_id] for child_id in query.children[node_id]
                )
                occurrences[fingerprint] = []
            occurrences[fingerprint].append((position, node_id))

    subtrees = tuple(
        SharedSubtree(
            fingerprint=fingerprint,
            exemplar=exemplar[fingerprint],
            children=children[fingerprint],
            occurrences=tuple(occurrences[fingerprint]),
        )
        for fingerprint in order
    )
    return SharedPlanDAG(subtrees=subtrees, node_fingerprints=tuple(node_fingerprints))


def compile_batch(
    graph: DataGraph,
    queries: Sequence[GTPQ] = (),
    *,
    plans: Sequence[CompiledPlan] | None = None,
    index: str = "auto",
    minimize: bool = True,
    stats: GraphStats | None = None,
) -> BatchPlan:
    """Compile a workload into per-query plans plus a shared-plan DAG.

    Args:
        graph: the data graph.
        queries: the batch, in workload order.  Ignored when ``plans``
            is given.
        plans: already compiled plans (the session layer caches them per
            fingerprint); skips per-query compilation.
        index: reachability index name or ``"auto"``.
        minimize: run Algorithm-1 minimization during normalization.
        stats: precomputed graph statistics.
    """
    if plans is None:
        plans = [
            compile_query(graph, query, index=index, minimize=minimize, stats=stats)
            for query in queries
        ]
    plans = tuple(plans)
    return BatchPlan(plans=plans, dag=build_shared_dag(plans))
