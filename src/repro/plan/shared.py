"""Batch compilation: a DAG of shared sub-plans over a query workload.

Real workloads share subtrees heavily — families of tree queries mined
from a graph differ in a node or two and repeat whole branches.  The
per-query pipeline prunes each query in isolation, re-discharging the
same downward obligations for every copy of a shared branch.

The key observation (the same one behind the bottom-up sweep of the
paper's Procedure 6) is that the *downward match set* of a rooted
subtree is query-context-free: it depends only on the subtree's own
attribute predicates, edge types and structural formulas.  So a batch
can be compiled into a :class:`SharedPlanDAG` with one node per
*distinct* rooted subtree — keyed by the canonical fingerprint of
:func:`repro.query.serialize.subtree_fingerprints` — topologically
ordered children-before-parents.  Each shared prune obligation then
executes once, and its post-prune candidate set feeds every query that
contains the subtree (:class:`repro.engine.shared.SharedExecutor`).

Only plans the physical planner routed to the GTEA executor participate;
unsatisfiable plans answer O(1) without candidates, and baseline-routed
plans do not consume downward-pruned sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..graph.digraph import DataGraph
from ..graph.stats import GraphStats
from ..query.gtpq import GTPQ
from .compile import CompiledPlan, compile_query


@dataclass(frozen=True)
class SharedSubtree:
    """One node of the shared-plan DAG: a distinct rooted subtree.

    Attributes:
        fingerprint: canonical subtree fingerprint (the sharing key).
        exemplar: ``(plan position, node id)`` of the occurrence whose
            query structure the executor uses to discharge the prune —
            any occurrence works (equal fingerprints guarantee equal
            downward match sets); the first one in batch order is kept.
        children: fingerprints of the exemplar's child subtrees, in the
            exemplar query's child order.
        occurrences: every ``(plan position, node id)`` that consumes
            this subtree's post-prune candidate set.
    """

    fingerprint: str
    exemplar: tuple[int, str]
    children: tuple[str, ...]
    occurrences: tuple[tuple[int, str], ...]

    @property
    def shared(self) -> bool:
        """Does more than one query node consume this sub-plan?"""
        return len(self.occurrences) > 1


@dataclass(frozen=True)
class SharedPlanDAG:
    """The shared logical sub-plans of one batch, topologically ordered.

    Attributes:
        subtrees: one entry per distinct subtree fingerprint, ordered so
            every child subtree precedes its parents (children-first; a
            valid execution order for the shared downward sweep).
        node_fingerprints: per batch position, ``node id -> fingerprint``
            for the plan's rewritten query — empty for plans that do not
            participate (unsatisfiable or baseline-routed).
    """

    subtrees: tuple[SharedSubtree, ...]
    node_fingerprints: tuple[dict[str, str], ...]

    @property
    def total_occurrences(self) -> int:
        """Rooted subtrees across the batch, with multiplicity."""
        return sum(len(subtree.occurrences) for subtree in self.subtrees)

    @property
    def distinct_subtrees(self) -> int:
        return len(self.subtrees)

    @property
    def shared_occurrences(self) -> int:
        """Occurrences served by another occurrence's prune work."""
        return self.total_occurrences - self.distinct_subtrees

    def explain_lines(self) -> list[str]:
        header = (
            f"batch: {len(self.node_fingerprints)} plans, "
            f"{self.total_occurrences} rooted subtrees, "
            f"{self.distinct_subtrees} distinct "
            f"({self.shared_occurrences} shared occurrences)"
        )
        lines = [header]
        for position, subtree in enumerate(self.subtrees):
            if not subtree.shared:
                continue
            consumers = ", ".join(
                f"q{plan_pos}:{node_id}" for plan_pos, node_id in subtree.occurrences
            )
            lines.append(
                f"  sub-plan {position} [{subtree.fingerprint[:12]}] "
                f"x{len(subtree.occurrences)} <- {consumers}"
            )
        if len(lines) == 1:
            lines.append("  (no shared subtrees in this batch)")
        return lines


@dataclass(frozen=True)
class BatchPlan:
    """A compiled workload: per-query plans plus the shared-plan DAG."""

    plans: tuple[CompiledPlan, ...]
    dag: SharedPlanDAG

    def explain(self) -> str:
        """Render the sharing structure of the batch."""
        lines = ["== shared plan DAG =="]
        lines.extend(self.dag.explain_lines())
        for position, plan in enumerate(self.plans):
            nodes = self.dag.node_fingerprints[position]
            lines.append(
                f"q{position}: executor={plan.physical.executor}, "
                f"nodes={len(plan.query.nodes)}, "
                f"subtrees in DAG={len(nodes)}"
            )
        return "\n".join(lines)


#: minimum estimated candidate elements the shared DAG must save before
#: :func:`should_share` considers its bookkeeping worthwhile.
SHARE_MIN_SAVINGS = 1


def _subtree_occurrences(
    plans: Sequence[CompiledPlan],
) -> tuple[dict[str, int], dict[str, int]]:
    """Occurrence count and exemplar candidate estimate per fingerprint.

    Computed straight from the plans' precomputed subtree fingerprints —
    no :class:`SharedPlanDAG` is built, so the tiny-batch guard can
    decide *before* paying any batch-compilation bookkeeping.
    """
    counts: dict[str, int] = {}
    exemplar_estimate: dict[str, int] = {}
    for plan in plans:
        if not _participates(plan):
            continue
        estimates = {source.node_id: source.estimate for source in plan.logical.sources}
        for node_id, fingerprint in plan.subtree_fingerprints.items():
            counts[fingerprint] = counts.get(fingerprint, 0) + 1
            exemplar_estimate.setdefault(fingerprint, estimates.get(node_id, 0))
    return counts, exemplar_estimate


def _savings(counts: dict[str, int], estimate: dict[str, int]) -> int:
    return sum(
        (count - 1) * estimate[fingerprint]
        for fingerprint, count in counts.items()
        if count > 1
    )


def estimated_sharing_savings(plans: Sequence[CompiledPlan]) -> int:
    """Estimated candidate elements whose downward prune sharing avoids.

    Every occurrence of a subtree beyond the first skips one downward
    refinement over that node's candidate set; the saving is priced with
    the first-occurrence plan's compile-time candidate estimate.
    """
    counts, estimate = _subtree_occurrences(plans)
    return _savings(counts, estimate)


def should_share(
    plans: Sequence[CompiledPlan],
    *,
    min_savings: int = SHARE_MIN_SAVINGS,
    cached_fingerprints=None,
) -> bool:
    """Is the shared DAG worth its bookkeeping for this batch of plans?

    Tiny batches of disjoint queries pay the DAG's per-subtree
    bookkeeping (batch compilation, contexts, contour maps, cache
    probes, tuple materialization) without sharing anything — the guard
    routes them to the isolated per-query path instead, and is itself
    cheap: it reads the plans' precomputed subtree fingerprints without
    building the DAG.  Sharing stays on when

    * some subtree is consumed by ≥ 2 query nodes *and* the estimated
      saved candidate volume reaches ``min_savings``, or
    * ``cached_fingerprints`` (a ``fingerprint -> bool`` membership
      test, typically the session's subtree cache) already holds one of
      the batch's subtrees — cross-batch reuse pays even without
      within-batch sharing.
    """
    counts, estimate = _subtree_occurrences(plans)
    if len(plans) > 1 and _savings(counts, estimate) >= min_savings:
        return True
    if cached_fingerprints is not None:
        return any(cached_fingerprints(fingerprint) for fingerprint in counts)
    return False


def _participates(plan: CompiledPlan) -> bool:
    """Does this plan consume shared downward-pruned candidate sets?"""
    return not plan.unsatisfiable and plan.physical.executor == "gtea"


def build_shared_dag(plans: Sequence[CompiledPlan]) -> SharedPlanDAG:
    """Build the shared-plan DAG over already compiled plans.

    The concatenation of each participating query's bottom-up node order
    visits every child subtree before its parent, so deduplicating by
    first appearance yields a topological order of the DAG for free.
    """
    order: list[str] = []
    exemplar: dict[str, tuple[int, str]] = {}
    children: dict[str, tuple[str, ...]] = {}
    occurrences: dict[str, list[tuple[int, str]]] = {}
    node_fingerprints: list[dict[str, str]] = []

    for position, plan in enumerate(plans):
        if not _participates(plan):
            node_fingerprints.append({})
            continue
        query = plan.query
        fingerprints = plan.subtree_fingerprints
        node_fingerprints.append(fingerprints)
        for node_id in query.bottom_up():
            fingerprint = fingerprints[node_id]
            if fingerprint not in exemplar:
                order.append(fingerprint)
                exemplar[fingerprint] = (position, node_id)
                children[fingerprint] = tuple(
                    fingerprints[child_id] for child_id in query.children[node_id]
                )
                occurrences[fingerprint] = []
            occurrences[fingerprint].append((position, node_id))

    subtrees = tuple(
        SharedSubtree(
            fingerprint=fingerprint,
            exemplar=exemplar[fingerprint],
            children=children[fingerprint],
            occurrences=tuple(occurrences[fingerprint]),
        )
        for fingerprint in order
    )
    return SharedPlanDAG(subtrees=subtrees, node_fingerprints=tuple(node_fingerprints))


def compile_batch(
    graph: DataGraph,
    queries: Sequence[GTPQ] = (),
    *,
    plans: Sequence[CompiledPlan] | None = None,
    index: str = "auto",
    minimize: bool = True,
    stats: GraphStats | None = None,
) -> BatchPlan:
    """Compile a workload into per-query plans plus a shared-plan DAG.

    Args:
        graph: the data graph.
        queries: the batch, in workload order.  Ignored when ``plans``
            is given.
        plans: already compiled plans (the session layer caches them per
            fingerprint); skips per-query compilation.
        index: reachability index name or ``"auto"``.
        minimize: run Algorithm-1 minimization during normalization.
        stats: precomputed graph statistics.
    """
    if plans is None:
        plans = [
            compile_query(graph, query, index=index, minimize=minimize, stats=stats)
            for query in queries
        ]
    plans = tuple(plans)
    return BatchPlan(plans=plans, dag=build_shared_dag(plans))
