"""Graph content fingerprints — the persistence layer's store key.

:attr:`repro.graph.digraph.DataGraph.version` is a *mutation counter*:
it moves on ``add_node``/``add_edge`` but is blind to in-place edits of
an attribute dictionary obtained from ``graph.attrs(v)`` (the gap the
``QuerySession.invalidate`` docstring admits).  A persisted store keyed
by version would therefore happily serve answers computed against the
*pre-mutation* attributes — a silent wrong-answer bug once artifacts
outlive the process.

:func:`graph_fingerprint` closes that gap for the store: a SHA-256 over
the full graph *content* — every node's attribute dictionary (keys and
type-tagged values, so ``5`` and ``"5"`` hash apart, mirroring
:func:`repro.query.serialize.predicate_key`) and the adjacency lists.
Two graphs share a fingerprint iff they are content-identical, so any
mutation — including an in-place attribute edit — lands store reads and
writes in a different key and the stale artifacts are simply never
found.

The hash is O(nodes + edges) and deliberately **not** memoized: a memo
invalidated by ``version`` would reintroduce exactly the blindness the
fingerprint exists to fix.  Store operations (session start-up,
``persist()``) are rare enough to recompute.
"""

from __future__ import annotations

import hashlib

from ..graph.digraph import DataGraph


def _canonical_attrs(attrs: dict) -> list[tuple[str, str, str]]:
    """Sorted, type-tagged attribute items (same tagging as predicate keys)."""
    return sorted((str(key), type(value).__name__, repr(value)) for key, value in attrs.items())


def graph_fingerprint(graph: DataGraph) -> str:
    """SHA-256 hex digest of the full content of ``graph``.

    Covers node count, every node's attribute dictionary and every
    adjacency list (edge insertion order does not participate — parallel
    edges are collapsed by the graph itself and target lists are sorted
    here).  Stable across processes and across re-building the same
    graph in a different node-id-preserving order of ``add_edge`` calls.
    """
    digest = hashlib.sha256()
    digest.update(b"repro-graph-v1\n")
    digest.update(str(graph.num_nodes).encode("ascii") + b"\n")
    # One repr() over the whole structure: the C-level renderer beats
    # per-node serialization by a wide margin, and this runs on every
    # session start-up.  Content is canonical (sorted, type-tagged), so
    # the rendering choice only has to be deterministic.
    content = [
        (_canonical_attrs(graph.attrs(node)), sorted(graph.successors(node)))
        for node in graph.nodes()
    ]
    digest.update(repr(content).encode("utf-8", "backslashreplace"))
    return digest.hexdigest()
