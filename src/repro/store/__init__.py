"""Cross-process persistence for everything the engine learns (S13).

The warm store serializes the artifacts a :class:`repro.engine.QuerySession`
accumulates — pooled reachability indexes, compiled plans, downward-pruned
subtree sets, emitted codegen source and analyses, and cost-profile
calibration — under a **graph content fingerprint** so a fresh process
rehydrates them instead of rebuilding (``QuerySession(store=...)``).

Three pieces:

- :func:`graph_fingerprint` — the store key: a SHA-256 over node
  attributes and adjacency, immune to the in-place-mutation blindness of
  ``DataGraph.version``.
- :class:`ArtifactStore` — atomic, self-describing, corruption-tolerant
  artifact files; every failure mode degrades to a cold build.
- :func:`seed_profile_from_reports` — fold ``cost_profile`` snapshots
  from ``benchmarks/reports/*.json`` into a fresh session's
  :class:`~repro.plan.feedback.CostProfile`.

:mod:`repro.serve` builds the multi-worker serving tier on top of this
package; ``python -m repro.store.restart`` is the warm-restart driver
used by the benchmarks and CI smokes.
"""

from .fingerprint import graph_fingerprint
from .seed import seed_profile_from_reports
from .store import SESSION_KINDS, STORE_FORMAT_VERSION, ArtifactStore, StoreCounters

__all__ = [
    "ArtifactStore",
    "SESSION_KINDS",
    "STORE_FORMAT_VERSION",
    "StoreCounters",
    "graph_fingerprint",
    "seed_profile_from_reports",
]
