"""``python -m repro.store.restart`` — one process of a warm-restart race.

The warm store's headline claim is cross-*process*: a fresh interpreter
pointed at a populated store reaches its first answer several times
faster than a cold one, because the reachability index, compiled plans
and specialized codegen functions rehydrate instead of rebuilding.  This
driver is the single-process half of that experiment: build the
deterministic Fig. 7 graph, open a session (optionally against a store),
time the distance from session construction to the first answer, run the
whole workload, optionally persist, and print one JSON object on stdout.

``benchmarks/bench_serving.py``, the ``repro-bench serving`` smoke and
the warm-restart tests all run it twice (cold, then warm) and compare
the timings and the answer digests — the digest makes corrupt-store
fallback verifiable: a damaged store must reproduce the cold digest
byte-for-byte.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time

from ..datasets import fig7_query, generate_xmark
from ..engine.session import QuerySession


def fig7_workload() -> list:
    """The Fig. 7 q1/q2/q3 instances every serving bench and smoke uses."""
    return [
        fig7_query(variant, person_group=2, item_group=4, seller_group=6)
        for variant in ("q1", "q2", "q3")
    ]


def answer_digest(results) -> str:
    """A stable content hash of one answer set (order-independent)."""
    payload = "\n".join(sorted(repr(row) for row in results))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_once(
    *,
    store: str | None,
    scale: float,
    seed: int,
    codegen: bool,
    persist: bool,
) -> dict:
    """Build graph + session, run the Fig. 7 workload, return the report.

    ``first_answer_seconds`` counts from *session construction* (store
    rehydration included) through the first query's answer — index
    build, plan compilation and codegen all land inside it, which is
    exactly the window the warm store collapses.  Graph generation is
    excluded: both processes pay it identically.
    """
    graph = generate_xmark(scale=scale, seed=seed).graph
    workload = fig7_workload()

    started = time.perf_counter()
    session = QuerySession(graph, store=store, codegen="auto" if codegen else False)
    first = session.evaluate(workload[0])
    first_answer_seconds = time.perf_counter() - started

    answers = [first] + [session.evaluate(query) for query in workload[1:]]
    total_seconds = time.perf_counter() - started

    report = {
        "store": store,
        "scale": scale,
        "seed": seed,
        "codegen": codegen,
        "first_answer_seconds": round(first_answer_seconds, 6),
        "total_seconds": round(total_seconds, 6),
        "result_counts": [len(answer) for answer in answers],
        "answer_digests": [answer_digest(answer) for answer in answers],
        "rehydrated": dict(session.store_rehydrated),
    }
    if persist and store is not None:
        report["persisted"] = session.persist()
    # Snapshot after persist so the cold leg's writes are visible.
    report["store_counters"] = (
        session.store.counters.snapshot() if session.store is not None else {}
    )
    session.close()
    return report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.restart", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--store", default=None, help="store directory (omit = cold)")
    parser.add_argument("--scale", type=float, default=0.05, help="XMark scale factor")
    parser.add_argument("--seed", type=int, default=42, help="XMark generator seed")
    parser.add_argument("--codegen", action="store_true", help="specialize plans")
    parser.add_argument(
        "--persist", action="store_true", help="publish warm artifacts after the run"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    report = run_once(
        store=args.store,
        scale=args.scale,
        seed=args.seed,
        codegen=args.codegen,
        persist=args.persist,
    )
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
