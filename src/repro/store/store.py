"""The warm store: durable evaluation artifacts keyed by graph content.

Everything the engine learns — pooled reachability indexes, compiled
plans, downward-pruned subtree sets, emitted codegen source, cost-profile
calibration — is query-independent or content-addressed, so it can
outlive the process that paid for it.  An :class:`ArtifactStore` is a
directory of self-describing artifact files::

    <root>/<graph content fingerprint>/<kind>.artifact

Each file is ``magic line + JSON header line + pickle payload``.  The
header carries the store format version, the graph fingerprint and the
artifact kind; :meth:`ArtifactStore.load` verifies all three before
unpickling and treats *any* discrepancy — truncated file, flipped bytes,
a header written by a different format revision, an artifact copied
under the wrong graph's directory — as a miss: the reader falls back to
a cold build and the offending file is removed best-effort.  A store can
therefore never produce a wrong answer, only a slower one.

Writes are atomic: the payload lands in a uniquely named temp file in
the same directory and is published with :func:`os.replace`, so
concurrent writers racing on one key leave exactly one complete artifact
(the last rename wins) and readers never observe a half-written file.

The payload is :mod:`pickle` — the store directory must be trusted
exactly like the code itself (pickle executes on load).  This mirrors
the trust model of every on-disk query-engine catalog.
"""

from __future__ import annotations

import json
import os
import pickle
import uuid
from pathlib import Path

#: bumped whenever the artifact layout or any payload schema changes;
#: readers reject (and discard) artifacts from any other revision.
#: (2: PhysicalPlan grew index_scope/footprint_estimate fields, so
#: format-1 plan pickles no longer describe the live schema.)
STORE_FORMAT_VERSION = 2

_MAGIC = b"repro-store\n"
_SUFFIX = ".artifact"

#: artifact kinds the session layer persists (other kinds are legal —
#: the store is schema-agnostic above the header).
SESSION_KINDS = (
    "indexes",
    "partial-indexes",
    "plans",
    "candidates",
    "subtrees",
    "results",
    "codegen",
    "codegen-src",
    "profile",
)


class StoreCounters:
    """Mutable counters of one store's activity."""

    __slots__ = ("hits", "misses", "stale", "corrupt", "writes", "evictions")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.stale = 0  #: header present but format/fingerprint/kind mismatched
        self.corrupt = 0  #: unreadable magic/header/payload
        self.writes = 0
        self.evictions = 0  #: artifacts removed by :meth:`ArtifactStore.prune`

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "corrupt": self.corrupt,
            "writes": self.writes,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"StoreCounters(hits={self.hits}, misses={self.misses}, "
            f"stale={self.stale}, corrupt={self.corrupt}, writes={self.writes}, "
            f"evictions={self.evictions})"
        )


class ArtifactStore:
    """A directory of fingerprint-keyed, self-describing artifacts.

    Args:
        root: the store directory (created on first use).  Safe to share
            between processes; concurrent writers on one key resolve by
            atomic rename (last complete write wins) and readers always
            see either the old or the new artifact, never a mix.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.counters = StoreCounters()

    # ------------------------------------------------------------------
    def path(self, fingerprint: str, kind: str) -> Path:
        """Where ``(fingerprint, kind)`` lives (whether or not present)."""
        return self.root / fingerprint / f"{kind}{_SUFFIX}"

    def save(self, fingerprint: str, kind: str, payload) -> Path:
        """Atomically publish ``payload`` under ``(fingerprint, kind)``.

        Serialization errors propagate (callers decide whether a kind is
        best-effort); partial writes never become visible.
        """
        target = self.path(fingerprint, kind)
        target.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "format": STORE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "kind": kind,
        }
        blob = (
            _MAGIC
            + json.dumps(header, sort_keys=True).encode("utf-8")
            + b"\n"
            + pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        temp = target.parent / f".{kind}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        try:
            temp.write_bytes(blob)
            os.replace(temp, target)
        except BaseException:
            temp.unlink(missing_ok=True)
            raise
        self.counters.writes += 1
        return target

    def load(self, fingerprint: str, kind: str, default=None):
        """The payload under ``(fingerprint, kind)``, or ``default``.

        Every failure mode — missing file, truncated or bit-flipped
        content, a format-version mismatch, an artifact whose header
        names a different fingerprint or kind — returns ``default`` so
        callers cold-build instead of crashing; damaged and stale files
        are deleted best-effort so the next write starts clean.
        """
        target = self.path(fingerprint, kind)
        try:
            blob = target.read_bytes()
        except OSError:
            self.counters.misses += 1
            return default
        if not blob.startswith(_MAGIC):
            return self._reject(target, "corrupt", default)
        try:
            header_line, _, payload = blob[len(_MAGIC) :].partition(b"\n")
            header = json.loads(header_line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return self._reject(target, "corrupt", default)
        if (
            header.get("format") != STORE_FORMAT_VERSION
            or header.get("fingerprint") != fingerprint
            or header.get("kind") != kind
        ):
            return self._reject(target, "stale", default)
        try:
            value = pickle.loads(payload)
        except Exception:
            # pickle raises a zoo of exception types on damaged input
            # (EOFError, UnpicklingError, AttributeError, ...); all of
            # them mean the same thing here: cold-build.
            return self._reject(target, "corrupt", default)
        self.counters.hits += 1
        return value

    def _reject(self, target: Path, reason: str, default):
        setattr(self.counters, reason, getattr(self.counters, reason) + 1)
        self.counters.misses += 1
        try:
            target.unlink(missing_ok=True)
        except OSError:
            pass  # another process may race the cleanup; harmless
        return default

    # ------------------------------------------------------------------
    def kinds(self, fingerprint: str) -> list[str]:
        """Artifact kinds currently present under ``fingerprint``."""
        directory = self.root / fingerprint
        try:
            entries = sorted(directory.iterdir())
        except OSError:
            return []
        return [
            entry.name[: -len(_SUFFIX)]
            for entry in entries
            if entry.name.endswith(_SUFFIX)
        ]

    def fingerprints(self) -> list[str]:
        """Graph fingerprints with at least one artifact in the store."""
        try:
            entries = sorted(self.root.iterdir())
        except OSError:
            return []
        return [entry.name for entry in entries if entry.is_dir() and self.kinds(entry.name)]

    def clear(self, fingerprint: str | None = None) -> int:
        """Drop one fingerprint's artifacts (or every artifact); returns
        how many files were removed."""
        removed = 0
        targets = [fingerprint] if fingerprint is not None else self.fingerprints()
        for key in targets:
            for kind in self.kinds(key):
                try:
                    self.path(key, kind).unlink()
                    removed += 1
                except OSError:
                    pass
            try:
                (self.root / key).rmdir()
            except OSError:
                pass
        return removed

    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-used artifacts until the store fits.

        Artifacts are removed oldest-mtime-first (loads never rewrite a
        file, so mtime is last *write*; a long-lived store evicts what
        stopped being refreshed) until the summed artifact sizes are at
        most ``max_bytes``.  Whole files are evicted — never truncated —
        so readers keep their all-or-nothing guarantee; emptied
        fingerprint directories are removed.  Returns how many artifacts
        were evicted, mirrored in ``counters.evictions``.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries: list[tuple[float, int, Path]] = []
        for fingerprint in self.fingerprints():
            for kind in self.kinds(fingerprint):
                target = self.path(fingerprint, kind)
                try:
                    meta = target.stat()
                except OSError:
                    continue
                entries.append((meta.st_mtime, meta.st_size, target))
        total = sum(size for _, size, _ in entries)
        entries.sort(key=lambda entry: (entry[0], entry[2]))  # oldest first
        evicted = 0
        for _, size, target in entries:
            if total <= max_bytes:
                break
            try:
                target.unlink()
            except OSError:
                continue  # racing reader already rejected/removed it
            total -= size
            evicted += 1
            try:
                target.parent.rmdir()
            except OSError:
                pass  # directory not empty (or already gone)
        self.counters.evictions += evicted
        return evicted

    def __repr__(self) -> str:
        return f"ArtifactStore(root={str(self.root)!r})"
