"""Seed a :class:`~repro.plan.feedback.CostProfile` from bench reports.

Benchmark runs (``benchmarks/bench_serving.py``, ``repro-bench serving
--json``) embed a ``"cost_profile"`` snapshot — the output of
:meth:`CostProfile.export_state` — in their JSON reports.  A fresh
process can fold those observations back in before its first query, so
adaptive reordering and index preference start calibrated instead of
spending ``MIN_SAMPLES`` queries warming up.  Malformed or unrelated
JSON files are skipped silently: report seeding is an optimization and
must never block a session from starting.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..plan.feedback import CostProfile


def seed_profile_from_reports(
    profile: CostProfile, reports: str | os.PathLike, graph_version: int
) -> int:
    """Import every ``cost_profile`` snapshot under ``reports``.

    ``reports`` may be a directory (every ``*.json`` inside is scanned,
    sorted for determinism) or a single JSON file.  Returns the total
    number of recorded executions folded into ``profile``; all
    observations are re-keyed to ``graph_version`` (the importing
    session's view of its graph).
    """
    root = Path(reports)
    if root.is_dir():
        candidates = sorted(root.glob("*.json"))
    elif root.is_file():
        candidates = [root]
    else:
        return 0
    imported = 0
    for path in candidates:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if not isinstance(payload, dict):
            continue
        state = payload.get("cost_profile")
        if state is None:
            continue
        imported += profile.import_state(state, graph_version)
    return imported
