"""Unit tests for the formula AST and smart constructors."""

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    And,
    Not,
    Or,
    Var,
    implies,
    land,
    lnot,
    lor,
    lxor,
)


class TestSmartConstructors:
    def test_empty_and_is_true(self):
        # Matches the paper's convention fs(u) = 1 for leaf query nodes.
        assert land() is TRUE

    def test_empty_or_is_false(self):
        assert lor() is FALSE

    def test_and_constant_folding(self):
        p = Var("p")
        assert land(p, TRUE) == p
        assert land(p, FALSE) is FALSE
        assert land(TRUE, TRUE) is TRUE

    def test_or_constant_folding(self):
        p = Var("p")
        assert lor(p, FALSE) == p
        assert lor(p, TRUE) is TRUE
        assert lor(FALSE, FALSE) is FALSE

    def test_and_flattens_nested_ands(self):
        p, q, r = Var("p"), Var("q"), Var("r")
        nested = land(land(p, q), r)
        assert isinstance(nested, And)
        assert nested.children == (p, q, r)

    def test_or_flattens_nested_ors(self):
        p, q, r = Var("p"), Var("q"), Var("r")
        nested = lor(lor(p, q), r)
        assert isinstance(nested, Or)
        assert nested.children == (p, q, r)

    def test_and_deduplicates(self):
        p, q = Var("p"), Var("q")
        assert land(p, q, p) == land(p, q)

    def test_or_deduplicates(self):
        p, q = Var("p"), Var("q")
        assert lor(p, q, p, q) == lor(p, q)

    def test_single_operand_unwraps(self):
        p = Var("p")
        assert land(p) == p
        assert lor(p) == p

    def test_complementary_literals_fold(self):
        p = Var("p")
        assert land(p, lnot(p)) is FALSE
        assert lor(p, lnot(p)) is TRUE

    def test_double_negation_folds(self):
        p = Var("p")
        assert lnot(lnot(p)) == p

    def test_negated_constants(self):
        assert lnot(TRUE) is FALSE
        assert lnot(FALSE) is TRUE


class TestOperatorOverloads:
    def test_and_or_invert(self):
        p, q = Var("p"), Var("q")
        assert (p & q) == land(p, q)
        assert (p | q) == lor(p, q)
        assert (~p) == lnot(p)

    def test_mixed_expression(self):
        u6, u7, u8 = Var("u6"), Var("u7"), Var("u8")
        # fs(u3) from the paper's Fig. 2(b).
        fig2 = ~u6 | (u7 & u8)
        assert fig2.variables() == {"u6", "u7", "u8"}


class TestStructuralProperties:
    def test_equality_is_structural(self):
        assert Var("p") == Var("p")
        assert Var("p") != Var("q")
        assert land(Var("p"), Var("q")) == land(Var("p"), Var("q"))

    def test_hashable_and_usable_in_sets(self):
        formulas = {Var("p"), Var("p"), land(Var("p"), Var("q"))}
        assert len(formulas) == 2

    def test_variables_collection(self):
        f = land(Var("a"), lor(Var("b"), lnot(Var("c"))))
        assert f.variables() == {"a", "b", "c"}

    def test_walk_yields_all_subformulas(self):
        f = land(Var("a"), lnot(Var("b")))
        kinds = [type(g).__name__ for g in f.walk()]
        assert kinds.count("Var") == 2
        assert kinds.count("Not") == 1
        assert kinds.count("And") == 1

    def test_size(self):
        assert Var("a").size() == 1
        assert land(Var("a"), Var("b")).size() == 3

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Var("p").name = "q"
        with pytest.raises(AttributeError):
            land(Var("p"), Var("q")).children = ()

    def test_str_round_trip_shapes(self):
        f = lor(lnot(Var("u6")), land(Var("u7"), Var("u8")))
        assert str(f) == "!u6 | (u7 & u8)"


class TestDerivedConnectives:
    def test_xor_truth_table(self):
        from repro.logic import evaluate

        p, q = Var("p"), Var("q")
        f = lxor(p, q)
        assert evaluate(f, {"p": True, "q": False})
        assert evaluate(f, {"p": False, "q": True})
        assert not evaluate(f, {"p": True, "q": True})
        assert not evaluate(f, {"p": False, "q": False})

    def test_implies_truth_table(self):
        from repro.logic import evaluate

        p, q = Var("p"), Var("q")
        f = implies(p, q)
        assert evaluate(f, {"p": False, "q": False})
        assert evaluate(f, {"p": True, "q": True})
        assert not evaluate(f, {"p": True, "q": False})
