"""Unit tests for the formula → Python lowering (repro.logic.codegen)."""

import random

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    LoweringError,
    Var,
    compile_formula,
    evaluate,
    implies,
    land,
    lnot,
    lor,
    lower_formula,
    lxor,
)
from repro.logic.assignment import all_assignments
from repro.logic.parser import parse_formula


class TestLowerFormula:
    def test_constants(self):
        assert lower_formula(TRUE, {}) == "True"
        assert lower_formula(FALSE, {}) == "False"

    def test_variable_substitution(self):
        assert lower_formula(Var("p"), {"p": "_b0"}) == "_b0"
        assert lower_formula(Var("p"), {"p": "(_x in _ps3)"}) == "(_x in _ps3)"

    def test_connectives(self):
        p, q = Var("p"), Var("q")
        names = {"p": "_b0", "q": "_b1"}
        assert lower_formula(land(p, q), names) == "(_b0 and _b1)"
        assert lower_formula(lor(p, q), names) == "(_b0 or _b1)"
        assert lower_formula(lnot(p), names) == "(not _b0)"

    def test_constant_folding_reaches_the_lowering(self):
        # The smart constructors fold before lowering ever runs, so a
        # formula with a dominant constant lowers to the bare literal —
        # the PR 3 bug class (minimization leaving fext = 0 on a leaf)
        # must surface as "False", not as an expression testing it.
        p = Var("p")
        assert lower_formula(land(p, FALSE), {"p": "_b0"}) == "False"
        assert lower_formula(lor(p, TRUE), {"p": "_b0"}) == "True"

    def test_unmapped_variable_raises(self):
        with pytest.raises(LoweringError, match="no expression for variable 'q'"):
            lower_formula(land(Var("p"), Var("q")), {"p": "_b0"})

    def test_lowering_error_is_a_value_error(self):
        assert issubclass(LoweringError, ValueError)


class TestCompileFormula:
    def exhaustive_check(self, formula, variables):
        """Compiled bits->bool must agree with evaluate on every model."""
        compiled = compile_formula(formula, variables)
        for assignment in all_assignments(variables):
            bits = tuple(assignment[name] for name in variables)
            assert compiled(bits) == evaluate(formula, assignment, default=False), (
                f"{formula} disagrees with evaluate at {assignment}"
            )

    def test_simple_formulas(self):
        p, q, r = Var("p"), Var("q"), Var("r")
        for formula in [
            p,
            lnot(p),
            land(p, q),
            lor(p, lnot(q)),
            lor(land(p, q), lnot(r)),
            implies(p, land(q, r)),
            lxor(p, q),
        ]:
            self.exhaustive_check(formula, ("p", "q", "r"))

    def test_paper_fs_u3(self):
        # fs(u3) = !u6 | (u7 & u8) from Fig. 2(b).
        formula = parse_formula("!u6 | (u7 & u8)")
        self.exhaustive_check(formula, ("u6", "u7", "u8"))

    def test_constants(self):
        assert compile_formula(TRUE, ())(()) is True
        assert compile_formula(FALSE, ())(()) is False

    def test_extra_positional_variables_are_ignored(self):
        compiled = compile_formula(Var("q"), ("p", "q"))
        assert compiled((False, True)) is True
        assert compiled((True, False)) is False

    def test_random_formulas_match_evaluate(self):
        """Seeded random ASTs: compiled output == recursive evaluate."""
        variables = ("a", "b", "c", "d")

        def random_formula(rng, depth):
            if depth == 0 or rng.random() < 0.3:
                return Var(rng.choice(variables))
            kind = rng.choice(["and", "or", "not"])
            if kind == "not":
                return lnot(random_formula(rng, depth - 1))
            children = [random_formula(rng, depth - 1) for _ in range(rng.randint(2, 3))]
            return land(*children) if kind == "and" else lor(*children)

        for seed in range(50):
            rng = random.Random(seed)
            self.exhaustive_check(random_formula(rng, 3), variables)
