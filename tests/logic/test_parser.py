"""Unit tests for the formula text parser."""

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    FormulaParseError,
    Var,
    land,
    lnot,
    lor,
    parse_formula,
)


class TestBasicParsing:
    def test_single_variable(self):
        assert parse_formula("p") == Var("p")

    def test_query_node_identifiers(self):
        assert parse_formula("u2") == Var("u2")
        assert parse_formula("person_ref") == Var("person_ref")

    def test_constants(self):
        assert parse_formula("1") is TRUE
        assert parse_formula("0") is FALSE
        assert parse_formula("true") is TRUE
        assert parse_formula("false") is FALSE

    def test_conjunction(self):
        assert parse_formula("p & q") == land(Var("p"), Var("q"))

    def test_disjunction(self):
        assert parse_formula("p | q") == lor(Var("p"), Var("q"))

    def test_negation(self):
        assert parse_formula("!p") == lnot(Var("p"))
        assert parse_formula("~p") == lnot(Var("p"))
        assert parse_formula("not p") == lnot(Var("p"))

    def test_word_connectives(self):
        assert parse_formula("p and q") == land(Var("p"), Var("q"))
        assert parse_formula("p or q") == lor(Var("p"), Var("q"))

    def test_unicode_connectives(self):
        assert parse_formula("p ∧ q") == land(Var("p"), Var("q"))
        assert parse_formula("p ∨ q") == lor(Var("p"), Var("q"))
        assert parse_formula("¬p") == lnot(Var("p"))


class TestPrecedenceAndGrouping:
    def test_not_binds_tightest(self):
        assert parse_formula("!p & q") == land(lnot(Var("p")), Var("q"))

    def test_and_binds_tighter_than_or(self):
        expected = lor(Var("p"), land(Var("q"), Var("r")))
        assert parse_formula("p | q & r") == expected

    def test_parentheses_override(self):
        expected = land(lor(Var("p"), Var("q")), Var("r"))
        assert parse_formula("(p | q) & r") == expected

    def test_paper_fig2_predicate(self):
        # fs(u3) = !u6 | (u7 & u8)
        f = parse_formula("!u6 | (u7 & u8)")
        assert f == lor(lnot(Var("u6")), land(Var("u7"), Var("u8")))

    def test_paper_table4_dis_neg2(self):
        # fs(open_auction) = (!bidder & seller) | (bidder & !seller)
        f = parse_formula("(!bidder & seller) | (bidder & !seller)")
        assert f.variables() == {"bidder", "seller"}

    def test_double_negation(self):
        assert parse_formula("!!p") == Var("p")

    def test_nested_parentheses(self):
        f = parse_formula("((p))")
        assert f == Var("p")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "p &", "& p", "(p", "p)", "p q", "!", "p | | q", "p @ q"],
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(FormulaParseError):
            parse_formula(text)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "p",
            "!p",
            "p & q",
            "p | q",
            "!u6 | (u7 & u8)",
            "(a | b) & (c | !d)",
            "(!bidder & seller & item) | (bidder & !seller & !item)",
        ],
    )
    def test_str_reparses_to_same_formula(self, text):
        formula = parse_formula(text)
        assert parse_formula(str(formula)) == formula
