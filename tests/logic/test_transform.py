"""Tests for substitution, renaming and normal forms, incl. property tests."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.logic import (
    FALSE,
    TRUE,
    And,
    Not,
    Or,
    Var,
    all_assignments,
    cnf_clauses,
    dnf_terms,
    equivalent,
    evaluate,
    land,
    lnot,
    lor,
    rename,
    simplify,
    substitute,
    to_cnf,
    to_dnf,
    to_nnf,
)
from tests.logic.test_sat import formulas


class TestSubstitution:
    def test_substitute_constant(self):
        f = land(Var("p"), Var("q"))
        assert substitute(f, {"p": True}) == Var("q")
        assert substitute(f, {"p": False}) is FALSE

    def test_paper_notation_f_p_over_x(self):
        # fs(u3)[p_u5/0] from Example 6: ((u5&u6)|(!u5&u6))[u5/0] = u6
        fs_u3 = lor(land(Var("u5"), Var("u6")), land(lnot(Var("u5")), Var("u6")))
        assert substitute(fs_u3, {"u5": False}) == Var("u6")

    def test_substitute_formula(self):
        # ftr construction: p_u' replaced by (p_u' & ftr(u')).
        f = lor(lnot(Var("u6")), land(Var("u7"), Var("u8")))
        g = substitute(f, {"u7": land(Var("u7"), lor(Var("u9"), Var("u10")))})
        assert g.variables() == {"u6", "u7", "u8", "u9", "u10"}

    def test_substitute_missing_variable_is_noop(self):
        f = Var("p")
        assert substitute(f, {"q": True}) == f

    def test_rename(self):
        f = land(Var("u2"), lnot(Var("u3")))
        g = rename(f, {"u2": "v2", "u3": "v3"})
        assert g == land(Var("v2"), lnot(Var("v3")))


class TestSimplify:
    def test_idempotent(self):
        f = lor(land(Var("p"), TRUE), FALSE)
        assert simplify(f) == simplify(simplify(f))

    def test_removes_constants_introduced_by_raw_ast(self):
        raw = Or([And([Var("p"), TRUE]), FALSE])
        assert simplify(raw) == Var("p")


class TestNormalForms:
    def test_nnf_pushes_negation_inward(self):
        f = lnot(land(Var("p"), Var("q")))
        nnf = to_nnf(f)
        assert nnf == lor(lnot(Var("p")), lnot(Var("q")))

    def test_nnf_de_morgan_or(self):
        f = lnot(lor(Var("p"), Var("q")))
        assert to_nnf(f) == land(lnot(Var("p")), lnot(Var("q")))

    def test_cnf_shape(self):
        f = lor(land(Var("a"), Var("b")), Var("c"))
        cnf = to_cnf(f)
        clauses = cnf_clauses(cnf)
        assert sorted(sorted(clause) for clause in clauses) == [
            sorted([("a", True), ("c", True)]),
            sorted([("b", True), ("c", True)]),
        ]

    def test_dnf_terms_of_dis_neg2(self):
        # (!bidder & seller) | (bidder & !seller) -> two consistent terms.
        f = lor(
            land(lnot(Var("bidder")), Var("seller")),
            land(Var("bidder"), lnot(Var("seller"))),
        )
        terms = dnf_terms(f)
        assert {frozenset(t.items()) for t in terms} == {
            frozenset({("bidder", False), ("seller", True)}),
            frozenset({("bidder", True), ("seller", False)}),
        }

    def test_dnf_terms_of_constants(self):
        assert dnf_terms(TRUE) == [{}]
        assert dnf_terms(FALSE) == []

    def test_inconsistent_terms_dropped(self):
        raw = And([Var("p"), Not(Var("p"))])
        assert dnf_terms(raw) == []


@settings(max_examples=150, deadline=None)
@given(formulas())
def test_nnf_preserves_equivalence(f):
    assert equivalent(f, to_nnf(f))


@settings(max_examples=100, deadline=None)
@given(formulas(max_leaves=6))
def test_cnf_preserves_equivalence(f):
    assert equivalent(f, to_cnf(f))


@settings(max_examples=100, deadline=None)
@given(formulas(max_leaves=6))
def test_dnf_preserves_equivalence(f):
    assert equivalent(f, to_dnf(f))


@settings(max_examples=100, deadline=None)
@given(formulas())
def test_simplify_preserves_equivalence(f):
    assert equivalent(f, simplify(f))


@settings(max_examples=100, deadline=None)
@given(formulas(max_leaves=6))
def test_dnf_terms_cover_exactly_the_models(f):
    """Every model satisfies some DNF term and vice versa."""
    terms = dnf_terms(f)
    for assignment in all_assignments(f.variables()):
        value = evaluate(f, assignment)
        covered = any(
            all(assignment.get(name, False) == polarity for name, polarity in term.items())
            for term in terms
        )
        assert value == covered


@settings(max_examples=100, deadline=None)
@given(formulas(), st.sampled_from(["p", "q", "r"]), st.booleans())
def test_substitution_matches_semantic_restriction(f, name, value):
    g = substitute(f, {name: value})
    for assignment in all_assignments(f.variables() | {name}):
        forced = dict(assignment)
        forced[name] = value
        assert evaluate(g, assignment, default=False) == evaluate(f, forced, default=False)
