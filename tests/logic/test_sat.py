"""Tests for the DPLL solver and decision procedures, incl. property tests."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.logic import (
    FALSE,
    TRUE,
    Var,
    brute_force_satisfiable,
    brute_force_tautology,
    entails,
    equivalent,
    evaluate,
    is_satisfiable,
    is_tautology,
    land,
    lnot,
    lor,
    satisfying_assignment,
    tseitin_cnf,
    xor_satisfiable,
)

_VARS = ["p", "q", "r", "s", "t"]


def formulas(max_leaves: int = 8):
    """Hypothesis strategy generating random formulas over five variables."""
    leaf = st.one_of(
        st.sampled_from([Var(name) for name in _VARS]),
        st.just(TRUE),
        st.just(FALSE),
    )
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            children.map(lnot),
            st.lists(children, min_size=2, max_size=3).map(lambda cs: land(*cs)),
            st.lists(children, min_size=2, max_size=3).map(lambda cs: lor(*cs)),
        ),
        max_leaves=max_leaves,
    )


class TestSatisfiabilityBasics:
    def test_true_is_satisfiable(self):
        assert is_satisfiable(TRUE)

    def test_false_is_not_satisfiable(self):
        assert not is_satisfiable(FALSE)

    def test_variable_is_satisfiable(self):
        assert is_satisfiable(Var("p"))

    def test_contradiction(self):
        p = Var("p")
        # Build via AST directly to dodge the smart-constructor fold.
        from repro.logic.formula import And, Not

        assert not is_satisfiable(And([p, Not(p)]))

    def test_model_satisfies_formula(self):
        f = land(lor(Var("p"), Var("q")), lnot(Var("p")))
        model = satisfying_assignment(f)
        assert model is not None
        assert evaluate(f, model, default=False)

    def test_unsat_returns_none(self):
        f = land(Var("p"), lnot(Var("p")), Var("q"))
        # smart ctor folds this; use raw AST
        from repro.logic.formula import And, Not

        raw = And([Var("p"), Not(Var("p")), Var("q")])
        assert satisfying_assignment(raw) is None
        assert satisfying_assignment(f) is None

    def test_paper_example4_satisfiable_fcs(self):
        # fcs(u1) of Fig. 2(b): u5 & u4 & u3 & (!u6 | (u7 & (u9|u10) & u8))
        fcs = land(
            Var("u5"),
            Var("u4"),
            Var("u3"),
            lor(lnot(Var("u6")), land(Var("u7"), lor(Var("u9"), Var("u10")), Var("u8"))),
        )
        assert is_satisfiable(fcs)

    def test_paper_example4_unsatisfiable_q1(self):
        # f1cs(u1) = f2cs(u1) & (u6 -> (u2 & u4)) with fs(u1) = !(u2 & u4):
        # Q1 of Fig. 4 is unsatisfiable.
        f2cs = land(
            lnot(land(Var("u2"), Var("u4"))),
            Var("u3"),
            lor(
                land(Var("u5"), Var("u6"), Var("u7")),
                land(lnot(Var("u5")), Var("u6"), Var("u7")),
            ),
        )
        f1cs = land(f2cs, lor(lnot(Var("u6")), land(Var("u2"), Var("u4"))))
        assert is_satisfiable(f2cs)
        assert not is_satisfiable(f1cs)


class TestTautologyAndEntailment:
    def test_excluded_middle(self):
        from repro.logic.formula import Not, Or

        p = Var("p")
        assert is_tautology(Or([p, Not(p)]))

    def test_variable_is_not_tautology(self):
        assert not is_tautology(Var("p"))

    def test_entailment(self):
        p, q = Var("p"), Var("q")
        assert entails(land(p, q), p)
        assert not entails(p, land(p, q))

    def test_equivalence(self):
        p, q = Var("p"), Var("q")
        assert equivalent(land(p, q), land(q, p))
        assert not equivalent(land(p, q), lor(p, q))

    def test_xor_satisfiable_detects_difference(self):
        p, q = Var("p"), Var("q")
        assert xor_satisfiable(p, q)
        assert not xor_satisfiable(land(p, q), land(q, p))


class TestTseitin:
    def test_variable_count_linear(self):
        # Tseitin must not explode: CNF distribution of this formula is
        # exponential, the Tseitin instance stays linear.
        terms = [land(Var(f"a{i}"), Var(f"b{i}")) for i in range(12)]
        f = lor(*terms)
        instance = tseitin_cnf(f)
        assert instance.num_vars <= 2 * 12 + 12 + 1
        assert len(instance.clauses) <= 4 * 12 + 14

    def test_constant_instances(self):
        assert tseitin_cnf(TRUE).clauses == []
        assert tseitin_cnf(FALSE).clauses == [[]]


@settings(max_examples=200, deadline=None)
@given(formulas())
def test_dpll_agrees_with_brute_force_sat(formula):
    assert is_satisfiable(formula) == brute_force_satisfiable(formula)


@settings(max_examples=200, deadline=None)
@given(formulas())
def test_dpll_agrees_with_brute_force_tautology(formula):
    assert is_tautology(formula) == brute_force_tautology(formula)


@settings(max_examples=100, deadline=None)
@given(formulas())
def test_models_found_are_real_models(formula):
    model = satisfying_assignment(formula)
    if model is not None:
        assert evaluate(formula, model, default=False)


@settings(max_examples=100, deadline=None)
@given(formulas(), formulas())
def test_entailment_is_reflexive_and_consistent(f, g):
    assert entails(f, f)
    if entails(f, g) and entails(g, f):
        assert equivalent(f, g)
