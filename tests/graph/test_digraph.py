"""Unit tests for the DataGraph substrate."""

import pytest

from repro.graph import DataGraph
from tests.paper_fixtures import FIG2_EDGES, FIG2_LABELS, fig2_graph, v


class TestConstruction:
    def test_empty_graph(self):
        graph = DataGraph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_add_node_returns_sequential_ids(self):
        graph = DataGraph()
        assert graph.add_node() == 0
        assert graph.add_node() == 1

    def test_add_node_with_label_shorthand(self):
        graph = DataGraph()
        node = graph.add_node(label="a1")
        assert graph.label(node) == "a1"
        assert graph.attrs(node) == {"label": "a1"}

    def test_add_node_with_attrs(self):
        graph = DataGraph()
        node = graph.add_node({"tag": "author", "value": "Alice"})
        assert graph.attrs(node)["value"] == "Alice"
        assert graph.label(node) is None

    def test_add_edge(self):
        graph = DataGraph.from_edges("ab", [(0, 1)])
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)
        assert graph.num_edges == 1

    def test_parallel_edges_collapse(self):
        graph = DataGraph.from_edges("ab", [(0, 1)])
        assert not graph.add_edge(0, 1)
        assert graph.num_edges == 1

    def test_self_loop_allowed(self):
        graph = DataGraph.from_edges("a", [(0, 0)])
        assert graph.has_edge(0, 0)

    def test_edge_bounds_checked(self):
        graph = DataGraph.from_edges("a", [])
        with pytest.raises(IndexError):
            graph.add_edge(0, 5)
        with pytest.raises(IndexError):
            graph.attrs(3)


class TestAdjacency:
    def test_successors_predecessors(self):
        graph = DataGraph.from_edges("abc", [(0, 1), (0, 2), (1, 2)])
        assert sorted(graph.successors(0)) == [1, 2]
        assert sorted(graph.predecessors(2)) == [0, 1]
        assert graph.out_degree(0) == 2
        assert graph.in_degree(2) == 2

    def test_roots_and_leaves(self):
        graph = DataGraph.from_edges("abc", [(0, 1), (1, 2)])
        assert graph.roots() == [0]
        assert graph.leaves() == [2]

    def test_edges_iteration(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        graph = DataGraph.from_edges("abc", edges)
        assert sorted(graph.edges()) == sorted(edges)


class TestLabelIndex:
    def test_nodes_with_label(self):
        graph = DataGraph.from_edges("aba", [])
        assert graph.nodes_with_label("a") == (0, 2)
        assert graph.nodes_with_label("b") == (1,)
        assert graph.nodes_with_label("z") == ()

    def test_label_index_invalidated_on_add(self):
        graph = DataGraph()
        graph.add_node(label="x")
        assert graph.nodes_with_label("x") == (0,)
        graph.add_node(label="x")
        assert graph.nodes_with_label("x") == (0, 1)

    def test_repeated_scans_share_one_posting_without_rebuild(self):
        """Regression: no per-call copy, no index rebuild while unmutated."""
        graph = DataGraph.from_edges("abab", [(0, 1)])
        first = graph.nodes_with_label("a")
        index_before = graph._label_index
        assert index_before is not None
        for _ in range(3):
            assert graph.nodes_with_label("a") is first  # shared tuple
        assert graph._label_index is index_before  # never rebuilt
        graph.add_node(label="a")
        assert graph.nodes_with_label("a") == (0, 2, 4)
        assert graph._label_index is not index_before  # rebuilt once

    def test_distinct_labels(self):
        graph = DataGraph.from_edges("aabc", [])
        assert graph.distinct_labels() == {"a", "b", "c"}


class TestFig2Fixture:
    def test_shape(self):
        graph = fig2_graph()
        assert graph.num_nodes == 16
        assert graph.num_edges == len(FIG2_EDGES)

    def test_labels(self):
        graph = fig2_graph()
        for paper_id, label in FIG2_LABELS.items():
            assert graph.label(v(paper_id)) == label

    def test_paper_label_convention_attrs(self):
        graph = fig2_graph()
        assert graph.attrs(v(13)) == {"label": "e2", "tag": "e", "rank": 2}

    def test_example3_reachability_facts(self):
        """Spot-check reach facts the examples rely on (via DFS oracle)."""
        from repro.graph import reaches

        graph = fig2_graph()
        assert reaches(graph, v(3), v(13))   # v3 in mat(u2)
        assert reaches(graph, v(8), v(13))   # v8 in mat(u2)
        assert not reaches(graph, v(5), v(13))  # v5 pruned from mat(u2)
        assert not reaches(graph, v(5), v(16))  # v5 |= u3 via !u6
        assert reaches(graph, v(3), v(6))    # v3 |= u3 via u7
        assert reaches(graph, v(3), v(11))   # ... and u8
        assert reaches(graph, v(1), v(3))    # match (v1, v3, v3, v11)
        assert reaches(graph, v(2), v(4))    # v2 inherits v4's valuation
