"""Tests for Tarjan SCC and DAG condensation."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graph import Condensation, DataGraph, condense, reaches


def random_digraphs(max_nodes: int = 12):
    """Hypothesis strategy for small random digraphs (possibly cyclic)."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_nodes))
        edges = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=3 * n,
            )
        )
        graph = DataGraph()
        for __ in range(n):
            graph.add_node(label="x")
        for source, target in edges:
            graph.add_edge(source, target)
        return graph

    return build()


class TestBasicSCC:
    def test_dag_has_singleton_components(self):
        graph = DataGraph.from_edges("abc", [(0, 1), (1, 2)])
        cond = condense(graph)
        assert cond.num_components == 3
        assert cond.is_trivial()
        assert all(not flag for flag in cond.cyclic)

    def test_simple_cycle_collapses(self):
        graph = DataGraph.from_edges("abc", [(0, 1), (1, 2), (2, 0)])
        cond = condense(graph)
        assert cond.num_components == 1
        assert cond.cyclic[0]
        assert sorted(cond.members[0]) == [0, 1, 2]

    def test_self_loop_marks_cyclic(self):
        graph = DataGraph.from_edges("ab", [(0, 0), (0, 1)])
        cond = condense(graph)
        assert cond.num_components == 2
        assert cond.cyclic[cond.scc_of[0]]
        assert not cond.cyclic[cond.scc_of[1]]

    def test_two_cycles_with_bridge(self):
        edges = [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]
        graph = DataGraph.from_edges("abcd", edges)
        cond = condense(graph)
        assert cond.num_components == 2
        first = cond.scc_of[0]
        second = cond.scc_of[2]
        assert first != second
        assert cond.successors(first) == [second]
        assert cond.predecessors(second) == [first]

    def test_reverse_topological_numbering(self):
        graph = DataGraph.from_edges("abcd", [(0, 1), (1, 2), (0, 3)])
        cond = condense(graph)
        for component in range(cond.num_components):
            for successor in cond.successors(component):
                assert component > successor

    def test_topological_order_sources_first(self):
        graph = DataGraph.from_edges("abc", [(0, 1), (1, 2)])
        cond = condense(graph)
        order = cond.topological_order()
        position = {component: i for i, component in enumerate(order)}
        for component in range(cond.num_components):
            for successor in cond.successors(component):
                assert position[component] < position[successor]

    def test_deep_chain_does_not_hit_recursion_limit(self):
        n = 50_000
        graph = DataGraph()
        for __ in range(n):
            graph.add_node()
        for i in range(n - 1):
            graph.add_edge(i, i + 1)
        cond = condense(graph)
        assert cond.num_components == n


@settings(max_examples=100, deadline=None)
@given(random_digraphs())
def test_condensation_components_are_mutually_reachable(graph):
    cond = Condensation(graph)
    for members in cond.members:
        if len(members) > 1:
            first = members[0]
            for other in members[1:]:
                assert reaches(graph, first, other)
                assert reaches(graph, other, first)


@settings(max_examples=100, deadline=None)
@given(random_digraphs())
def test_condensation_edges_match_cross_component_reachability(graph):
    cond = Condensation(graph)
    # Every DAG edge corresponds to an actual data edge between components.
    cross_pairs = {
        (cond.scc_of[s], cond.scc_of[t])
        for s, t in graph.edges()
        if cond.scc_of[s] != cond.scc_of[t]
    }
    dag_pairs = {
        (component, successor)
        for component in range(cond.num_components)
        for successor in cond.successors(component)
    }
    assert dag_pairs == cross_pairs


@settings(max_examples=100, deadline=None)
@given(random_digraphs())
def test_cyclic_flag_matches_self_reachability(graph):
    cond = Condensation(graph)
    for node in graph.nodes():
        assert cond.cyclic[cond.scc_of[node]] == reaches(graph, node, node)
