"""Unit tests for candidate partitioning (``repro.graph.partition``)."""

import random

import pytest

from repro.graph import DataGraph
from repro.graph.partition import (
    HYBRID_SKEW_THRESHOLD,
    STRATEGIES,
    ContourProbeCache,
    GraphPartition,
    merge_survivors,
)


class TestConstruction:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="num_shards"):
            GraphPartition(0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            GraphPartition(2, strategy="modulo")

    def test_range_needs_num_nodes(self):
        with pytest.raises(ValueError, match="num_nodes"):
            GraphPartition(2, strategy="range")
        with pytest.raises(ValueError, match="num_nodes"):
            GraphPartition(2, strategy="range", num_nodes=0)

    def test_for_graph_handles_empty_graph(self):
        # An empty graph still yields a usable partition (range spans
        # need num_nodes >= 1).
        partition = GraphPartition.for_graph(DataGraph(), 4, strategy="range")
        assert partition.num_nodes == 1
        assert partition.split([]) == [[], [], [], []]


class TestHashRouting:
    def test_shard_of_is_modulo(self):
        partition = GraphPartition(3)
        assert [partition.shard_of(n) for n in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_split_preserves_order_within_shards(self):
        partition = GraphPartition(2)
        assert partition.split([5, 2, 8, 1, 4]) == [[2, 8, 4], [5, 1]]

    def test_split_returns_exactly_k_lists_with_empties(self):
        # Candidates all route to shard 0 — the other shards stay empty
        # but are still returned (callers skip them explicitly).
        partition = GraphPartition(4)
        assert partition.split([0, 4, 8]) == [[0, 4, 8], [], [], []]

    def test_split_override_shard_count(self):
        partition = GraphPartition(4)
        assert partition.split([0, 1, 2, 3], num_shards=2) == [[0, 2], [1, 3]]
        with pytest.raises(ValueError, match="num_shards"):
            partition.split([0], num_shards=0)

    def test_single_shard_takes_everything(self):
        partition = GraphPartition(1)
        assert partition.split([3, 1, 2]) == [[3, 1, 2]]


class TestRangeRouting:
    def test_contiguous_blocks(self):
        partition = GraphPartition(2, strategy="range", num_nodes=10)
        # span = ceil(10 / 2) = 5
        assert [partition.shard_of(n) for n in range(10)] == [0] * 5 + [1] * 5

    def test_last_shard_absorbs_overflow_ids(self):
        # Ids at or past num_nodes (possible after for_graph on a graph
        # that grew) clamp to the last shard instead of indexing out.
        partition = GraphPartition(3, strategy="range", num_nodes=7)
        assert partition.shard_of(6) == 2
        assert partition.shard_of(99) == 2

    def test_single_node_graph_routes_everything_to_shard_zero(self):
        graph = DataGraph()
        graph.add_node(label="a")
        partition = GraphPartition.for_graph(graph, 4, strategy="range")
        assert partition.split([0]) == [[0], [], [], []]


class TestHybridRouting:
    def test_needs_num_nodes(self):
        with pytest.raises(ValueError, match="num_nodes"):
            GraphPartition(2, strategy="hybrid")

    def test_balanced_set_keeps_range(self):
        # Two candidates per range shard — no skew, chain locality wins.
        partition = GraphPartition(2, strategy="hybrid", num_nodes=10)
        spread = [0, 2, 5, 7]
        assert partition.route_for(spread) == "range"
        assert partition.split(spread) == [[0, 2], [5, 7]]

    def test_skewed_set_balances_with_hash(self):
        # All candidates land in range shard 0 (8 > threshold * ideal 2),
        # so the per-set decision flips to hash and balances them.
        partition = GraphPartition(4, strategy="hybrid", num_nodes=100)
        clustered = list(range(8))
        assert len(clustered) > HYBRID_SKEW_THRESHOLD * (len(clustered) / 4)
        assert partition.route_for(clustered) == "hash"
        assert partition.split(clustered) == [[0, 4], [1, 5], [2, 6], [3, 7]]

    def test_degenerate_sets_prefer_range(self):
        partition = GraphPartition(4, strategy="hybrid", num_nodes=100)
        assert partition.route_for([]) == "range"
        assert partition.route_for([1, 2, 3], num_shards=1) == "range"

    def test_configured_strategies_are_their_own_route(self):
        assert GraphPartition(3).route_for(list(range(9))) == "hash"
        ranged = GraphPartition(3, strategy="range", num_nodes=9)
        assert ranged.route_for(list(range(9))) == "range"

    def test_bare_shard_of_routes_like_range(self):
        # Without a candidate set to observe, hybrid has no per-node
        # answer; a bare lookup uses its preferred (range) routing.
        partition = GraphPartition(2, strategy="hybrid", num_nodes=10)
        assert [partition.shard_of(n) for n in range(10)] == [0] * 5 + [1] * 5

    def test_wave_cache_is_fresh_per_wave(self):
        partition = GraphPartition(2, strategy="hybrid", num_nodes=10)
        first, second = partition.wave_cache(), partition.wave_cache()
        assert isinstance(first, ContourProbeCache)
        assert first is not second
        first.publish(1, 2, {0: True})
        assert second.seed(1, 2) is None


class TestContourProbeCache:
    def test_empty_cache_misses(self):
        cache = ContourProbeCache()
        assert cache.seed(3, 5) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_snapshot_seeds_only_at_or_above_its_sequence_number(self):
        # A snapshot at sid 5 covers the region >= 5: it cannot seed a
        # component at sid 7 (missing bits) but seeds sids 5 and 3.
        cache = ContourProbeCache()
        cache.publish(3, 5, {10: True})
        assert cache.seed(3, 7) is None
        assert cache.seed(3, 5) == (5, {10: True})
        assert cache.seed(3, 3) == (5, {10: True})
        assert (cache.hits, cache.misses) == (2, 1)

    def test_prefers_the_lowest_valid_snapshot(self):
        # Among valid snapshots the lowest sequence number covers the
        # most of the remaining scan.
        cache = ContourProbeCache()
        cache.publish(1, 8, {0: True})
        cache.publish(1, 5, {0: True, 1: False})
        assert cache.seed(1, 4) == (5, {0: True, 1: False})
        assert cache.seed(1, 6) == (8, {0: True})

    def test_chains_are_independent(self):
        cache = ContourProbeCache()
        cache.publish(1, 2, {0: True})
        assert cache.seed(2, 2) is None

    def test_published_valuations_are_snapshots(self):
        # publish copies: later writer-side mutation cannot leak into a
        # snapshot another shard resumes from.
        cache = ContourProbeCache()
        valuation = {0: True}
        cache.publish(4, 1, valuation)
        valuation[0] = False
        assert cache.seed(4, 1) == (1, {0: True})


class TestMergeSurvivors:
    def test_sorted_by_node_id(self):
        assert merge_survivors([[7, 9], [2, 4], [5]]) == [2, 4, 5, 7, 9]

    def test_empty_shards_contribute_nothing(self):
        assert merge_survivors([[], [3], []]) == [3]
        assert merge_survivors([]) == []
        assert merge_survivors([[], [], []]) == []

    def test_order_of_shard_completion_is_irrelevant(self):
        shards = [[1, 4], [2, 5], [0, 3]]
        for _ in range(5):
            random.Random(11).shuffle(shards)
            assert merge_survivors(shards) == [0, 1, 2, 3, 4, 5]

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7])
    def test_split_then_merge_roundtrips(self, strategy, num_shards):
        # The determinism contract: for any routing, splitting an
        # ascending candidate set and merging the (sub-)results yields
        # the original set back, independent of shard count.
        rng = random.Random(23)
        candidates = sorted(rng.sample(range(200), 40))
        partition = GraphPartition(num_shards, strategy=strategy, num_nodes=200)
        shards = partition.split(candidates)
        assert len(shards) == num_shards
        assert sum(len(shard) for shard in shards) == len(candidates)
        assert merge_survivors(shards) == candidates
