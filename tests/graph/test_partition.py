"""Unit tests for candidate partitioning (``repro.graph.partition``)."""

import random

import pytest

from repro.graph import DataGraph
from repro.graph.partition import STRATEGIES, GraphPartition, merge_survivors


class TestConstruction:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="num_shards"):
            GraphPartition(0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            GraphPartition(2, strategy="modulo")

    def test_range_needs_num_nodes(self):
        with pytest.raises(ValueError, match="num_nodes"):
            GraphPartition(2, strategy="range")
        with pytest.raises(ValueError, match="num_nodes"):
            GraphPartition(2, strategy="range", num_nodes=0)

    def test_for_graph_handles_empty_graph(self):
        # An empty graph still yields a usable partition (range spans
        # need num_nodes >= 1).
        partition = GraphPartition.for_graph(DataGraph(), 4, strategy="range")
        assert partition.num_nodes == 1
        assert partition.split([]) == [[], [], [], []]


class TestHashRouting:
    def test_shard_of_is_modulo(self):
        partition = GraphPartition(3)
        assert [partition.shard_of(n) for n in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_split_preserves_order_within_shards(self):
        partition = GraphPartition(2)
        assert partition.split([5, 2, 8, 1, 4]) == [[2, 8, 4], [5, 1]]

    def test_split_returns_exactly_k_lists_with_empties(self):
        # Candidates all route to shard 0 — the other shards stay empty
        # but are still returned (callers skip them explicitly).
        partition = GraphPartition(4)
        assert partition.split([0, 4, 8]) == [[0, 4, 8], [], [], []]

    def test_split_override_shard_count(self):
        partition = GraphPartition(4)
        assert partition.split([0, 1, 2, 3], num_shards=2) == [[0, 2], [1, 3]]
        with pytest.raises(ValueError, match="num_shards"):
            partition.split([0], num_shards=0)

    def test_single_shard_takes_everything(self):
        partition = GraphPartition(1)
        assert partition.split([3, 1, 2]) == [[3, 1, 2]]


class TestRangeRouting:
    def test_contiguous_blocks(self):
        partition = GraphPartition(2, strategy="range", num_nodes=10)
        # span = ceil(10 / 2) = 5
        assert [partition.shard_of(n) for n in range(10)] == [0] * 5 + [1] * 5

    def test_last_shard_absorbs_overflow_ids(self):
        # Ids at or past num_nodes (possible after for_graph on a graph
        # that grew) clamp to the last shard instead of indexing out.
        partition = GraphPartition(3, strategy="range", num_nodes=7)
        assert partition.shard_of(6) == 2
        assert partition.shard_of(99) == 2

    def test_single_node_graph_routes_everything_to_shard_zero(self):
        graph = DataGraph()
        graph.add_node(label="a")
        partition = GraphPartition.for_graph(graph, 4, strategy="range")
        assert partition.split([0]) == [[0], [], [], []]


class TestMergeSurvivors:
    def test_sorted_by_node_id(self):
        assert merge_survivors([[7, 9], [2, 4], [5]]) == [2, 4, 5, 7, 9]

    def test_empty_shards_contribute_nothing(self):
        assert merge_survivors([[], [3], []]) == [3]
        assert merge_survivors([]) == []
        assert merge_survivors([[], [], []]) == []

    def test_order_of_shard_completion_is_irrelevant(self):
        shards = [[1, 4], [2, 5], [0, 3]]
        for _ in range(5):
            random.Random(11).shuffle(shards)
            assert merge_survivors(shards) == [0, 1, 2, 3, 4, 5]

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7])
    def test_split_then_merge_roundtrips(self, strategy, num_shards):
        # The determinism contract: for any routing, splitting an
        # ascending candidate set and merging the (sub-)results yields
        # the original set back, independent of shard count.
        rng = random.Random(23)
        candidates = sorted(rng.sample(range(200), 40))
        partition = GraphPartition(num_shards, strategy=strategy, num_nodes=200)
        shards = partition.split(candidates)
        assert len(shards) == num_shards
        assert sum(len(shard) for shard in shards) == len(candidates)
        assert merge_survivors(shards) == candidates
