"""Tests for traversal utilities and graph statistics."""

import pytest

from repro.graph import (
    DataGraph,
    ancestors,
    bfs_layers,
    descendants,
    graph_stats,
    is_dag,
    node_depths,
    reaches,
    topological_order,
)
from tests.paper_fixtures import fig2_graph, v


class TestTopologicalOrder:
    def test_chain(self):
        graph = DataGraph.from_edges("abc", [(0, 1), (1, 2)])
        assert topological_order(graph) == [0, 1, 2]

    def test_diamond_respects_edges(self):
        graph = DataGraph.from_edges("abcd", [(0, 1), (0, 2), (1, 3), (2, 3)])
        order = topological_order(graph)
        position = {node: i for i, node in enumerate(order)}
        for source, target in graph.edges():
            assert position[source] < position[target]

    def test_cycle_raises(self):
        graph = DataGraph.from_edges("ab", [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            topological_order(graph)

    def test_is_dag(self):
        assert is_dag(DataGraph.from_edges("ab", [(0, 1)]))
        assert not is_dag(DataGraph.from_edges("ab", [(0, 1), (1, 0)]))
        assert not is_dag(DataGraph.from_edges("a", [(0, 0)]))


class TestReachability:
    def test_strict_semantics_no_self_reach_in_dag(self):
        graph = DataGraph.from_edges("abc", [(0, 1), (1, 2)])
        assert reaches(graph, 0, 2)
        assert not reaches(graph, 2, 0)
        assert not reaches(graph, 0, 0)  # nonempty path required

    def test_self_reach_on_cycle(self):
        graph = DataGraph.from_edges("ab", [(0, 1), (1, 0)])
        assert reaches(graph, 0, 0)

    def test_descendants_and_ancestors(self):
        graph = DataGraph.from_edges("abcd", [(0, 1), (1, 2), (0, 3)])
        assert descendants(graph, 0) == {1, 2, 3}
        assert descendants(graph, 2) == set()
        assert ancestors(graph, 2) == {0, 1}
        assert ancestors(graph, 0) == set()

    def test_descendants_with_cycle_include_self(self):
        graph = DataGraph.from_edges("abc", [(0, 1), (1, 0), (1, 2)])
        assert descendants(graph, 0) == {0, 1, 2}


class TestLayersAndDepths:
    def test_bfs_layers(self):
        graph = DataGraph.from_edges("abcd", [(0, 1), (0, 2), (1, 3)])
        layers = bfs_layers(graph, [0])
        assert layers[0] == [0]
        assert sorted(layers[1]) == [1, 2]
        assert layers[2] == [3]

    def test_node_depths_longest_path(self):
        graph = DataGraph.from_edges("abcd", [(0, 1), (1, 2), (0, 2), (2, 3)])
        depths = node_depths(graph)
        assert depths == [0, 1, 2, 3]


class TestStats:
    def test_fig2_stats(self):
        stats = graph_stats(fig2_graph())
        assert stats.num_nodes == 16
        assert stats.num_edges == 16
        assert stats.num_labels == 8
        assert stats.is_dag

    def test_stats_on_cyclic_graph(self):
        graph = DataGraph.from_edges("abc", [(0, 1), (1, 0), (1, 2)])
        stats = graph_stats(graph)
        assert not stats.is_dag
        assert stats.num_nodes == 3
        assert stats.max_depth == 1  # condensation: scc{0,1} -> scc{2}

    def test_row_shape(self):
        row = graph_stats(fig2_graph()).row()
        assert set(row) == {"nodes", "edges", "labels", "roots", "max_depth", "avg_depth"}

    def test_fig2_reach_matrix_sanity(self):
        graph = fig2_graph()
        # v7 reaches v16 through chain v7 -> v3 -> v11 -> v16.
        assert reaches(graph, v(7), v(16))
        # v8 reaches only v13 (its removal from mat(u3) in Example 9).
        assert descendants(graph, v(8)) == {v(13)}
