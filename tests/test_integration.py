"""Cross-module integration and failure-injection tests."""

from repro import DataGraph, GTEA, QueryBuilder, minimize_query
from repro.analysis import are_equivalent, is_query_satisfiable
from repro.datasets import generate_xmark
from repro.query import evaluate_naive, parse_xpath_query


class TestFullStack:
    def test_xpath_to_minimized_to_engine(self):
        """Frontend -> static analysis -> evaluation, end to end."""
        xmark = generate_xmark(scale=0.02, seed=77)
        query = parse_xpath_query(
            "//open_auction[bidder and bidder]//personref", outputs="spine"
        )
        # The duplicated branch is redundant; minimization removes it.
        assert is_query_satisfiable(query)
        minimized = minimize_query(query)
        assert minimized.size < query.size
        assert are_equivalent(query, minimized)
        engine = GTEA(xmark.graph)
        assert engine.evaluate(minimized) == engine.evaluate(query)
        assert engine.evaluate(query) == evaluate_naive(query, xmark.graph)

    def test_unsatisfiable_query_evaluates_empty(self):
        graph = DataGraph.from_edges("ab", [(0, 1)])
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .predicate("p", parent="r", label="b")
            .structural("r", "p & !p")
            .build()
        )
        assert not is_query_satisfiable(query)
        assert GTEA(graph).evaluate(query) == set()

    def test_xpath_negation_on_xmark(self):
        xmark = generate_xmark(scale=0.02, seed=77)
        with_seller = parse_xpath_query("//open_auction[seller]")
        without_seller = parse_xpath_query("//open_auction[not(seller)]")
        engine = GTEA(xmark.graph)
        a = engine.evaluate(with_seller)
        b = engine.evaluate(without_seller)
        assert a.isdisjoint(b)
        all_auctions = engine.evaluate(parse_xpath_query("//open_auction"))
        assert a | b == all_auctions


class TestFailureInjection:
    def test_engine_accepts_any_registered_index(self):
        # Historically pruning hard-required the 3-hop index; the generic
        # fallback path now serves every other index identically.
        graph = DataGraph.from_edges("ab", [(0, 1)])
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .predicate("p", parent="r", label="b")
            .build()
        )
        reference = GTEA(graph, index="3hop").evaluate(query)
        assert reference == {(0,)}
        for index in ("tc", "tree-cover", "interval", "chain-cover", "contour", "sspi"):
            assert GTEA(graph, index=index).evaluate(query) == reference

    def test_empty_graph(self):
        graph = DataGraph()
        query = QueryBuilder().backbone("r", label="a").build()
        assert GTEA(graph).evaluate(query) == set()
        assert evaluate_naive(query, graph) == set()

    def test_graph_with_no_matching_labels(self):
        graph = DataGraph.from_edges("ab", [(0, 1)])
        query = (
            QueryBuilder()
            .backbone("r", label="zzz")
            .backbone("s", parent="r", label="a")
            .build()
        )
        assert GTEA(graph).evaluate(query) == set()

    def test_single_node_graph_self_loop_cycle(self):
        graph = DataGraph.from_edges("a", [(0, 0)])
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .backbone("s", parent="r", label="a")
            .outputs("r", "s")
            .build()
        )
        # Under nonempty-path semantics a self-loop makes the node its own
        # descendant.
        assert GTEA(graph).evaluate(query) == {(0, 0)}
        assert evaluate_naive(query, graph) == {(0, 0)}
