"""The serving tier: worker pool, snapshot pinning, and the TCP front."""

import asyncio
import json

import pytest

from repro.engine import QuerySession
from repro.graph import DataGraph
from repro.query import (
    AttributePredicate,
    QueryBuilder,
    evaluate_naive,
    query_to_dict,
)
from repro.serve import (
    QueryServer,
    StaleSnapshotError,
    percentile,
    serve_tcp,
)


def serve_graph():
    return DataGraph.from_edges("aabbcc", [(0, 2), (0, 3), (1, 3), (2, 4), (3, 5), (1, 2)])


def serve_query(child_label="b"):
    return (
        QueryBuilder()
        .backbone("root", predicate=AttributePredicate.label("a"))
        .backbone("kid", parent="root", predicate=AttributePredicate.label(child_label))
        .outputs("root", "kid")
        .build()
    )


class TestPercentile:
    def test_empty_samples_are_zero(self):
        assert percentile([], 99) == 0.0

    def test_single_sample_is_every_percentile(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_nearest_rank_on_ten_samples(self):
        samples = [float(i) for i in range(1, 11)]
        assert percentile(samples, 50) == 5.0
        assert percentile(samples, 99) == 10.0
        assert percentile(samples, 100) == 10.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == percentile([1.0, 2.0, 3.0], 50)


class TestQueryServer:
    def test_submit_matches_direct_session_and_oracle(self):
        graph = serve_graph()
        query = serve_query()
        expected = QuerySession(graph).evaluate(query)
        assert expected == evaluate_naive(query, graph)

        async def run():
            server = QueryServer(graph, workers=2)
            await server.start()
            try:
                return await server.submit(query)
            finally:
                await server.stop()

        assert asyncio.run(run()) == expected

    def test_concurrent_burst_counts_every_request(self):
        graph = serve_graph()
        queries = [serve_query("b"), serve_query("c")]

        async def run():
            server = QueryServer(graph, workers=3)
            await server.start()
            answers = await asyncio.gather(*[server.submit(queries[i % 2]) for i in range(12)])
            summary = server.stats.summary()
            await server.stop()
            return answers, summary

        answers, summary = asyncio.run(run())
        assert summary["requests"] == 12 and summary["errors"] == 0
        for i, answer in enumerate(answers):
            assert answer == evaluate_naive(queries[i % 2], graph)

    def test_mutation_rejects_until_refresh(self):
        graph = serve_graph()
        query = serve_query()

        async def run():
            server = QueryServer(graph, workers=2)
            await server.start()
            before = await server.submit(query)
            graph.add_node(label="a")  # bumps graph.version under the server
            with pytest.raises(StaleSnapshotError):
                await server.submit(query)
            await server.refresh()
            after = await server.submit(query)
            stats = server.stats.summary()
            await server.stop()
            return before, after, stats

        before, after, stats = asyncio.run(run())
        assert stats["stale_rejections"] == 1
        assert after == evaluate_naive(query, graph)
        assert before <= after  # new 'a' node can only add matches

    def test_evaluation_errors_are_counted_and_reraised(self):
        graph = serve_graph()

        async def run():
            server = QueryServer(graph, workers=1)
            await server.start()
            with pytest.raises((TypeError, ValueError, KeyError)):
                await server.submit(object())  # not a query in any accepted form
            # The worker went back to the pool: the server still serves.
            answer = await server.submit(serve_query())
            errors = server.stats.errors
            await server.stop()
            return answer, errors

        answer, errors = asyncio.run(run())
        assert errors == 1
        assert answer == evaluate_naive(serve_query(), graph)

    def test_submit_before_start_raises(self):
        async def run():
            await QueryServer(serve_graph()).submit(serve_query())

        with pytest.raises(RuntimeError):
            asyncio.run(run())

    def test_persist_requires_a_store(self):
        async def run():
            server = QueryServer(serve_graph())
            await server.start()
            try:
                with pytest.raises(ValueError):
                    server.persist()
            finally:
                await server.stop()

        asyncio.run(run())

    def test_workers_share_the_store_and_persist_round_trips(self, tmp_path):
        graph = serve_graph()
        query = serve_query()

        async def warm():
            server = QueryServer(graph, workers=2, store=tmp_path / "store")
            await server.start()
            answer = await server.submit(query)
            server.persist()
            await server.stop()
            return answer

        answer = asyncio.run(warm())

        async def restarted():
            server = QueryServer(graph, workers=2, store=tmp_path / "store")
            await server.start()
            rehydrated = [
                sum(session.store_rehydrated.values())
                for session in server._sessions
            ]
            again = await server.submit(query)
            await server.stop()
            return rehydrated, again

        rehydrated, again = asyncio.run(restarted())
        assert again == answer
        assert all(count > 0 for count in rehydrated), (
            "every worker should rehydrate from the shared store"
        )


class TestTcpFront:
    def test_round_trip_and_deterministic_rendering(self):
        graph = serve_graph()
        query = serve_query()
        expected = evaluate_naive(query, graph)

        async def run():
            server = QueryServer(graph, workers=2)
            tcp = await serve_tcp(server, host="127.0.0.1", port=0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            responses = []
            for _ in range(2):  # same query twice: rendering must be stable
                writer.write((json.dumps({"query": query_to_dict(query)}) + "\n").encode())
                await writer.drain()
                responses.append(json.loads(await reader.readline()))
            writer.write(b'{"query": 17}\n')  # invalid → error response
            await writer.drain()
            responses.append(json.loads(await reader.readline()))
            writer.close()
            tcp.close()
            await tcp.wait_closed()
            await server.stop()
            return responses

        first, second, bad = asyncio.run(run())
        assert first["ok"] and first["count"] == len(expected)
        assert first == second, "identical answers must render byte-identically"
        assert not bad["ok"] and "error" in bad


class TestRefreshCheckpoint:
    def test_refresh_persists_drained_state_to_the_store(self, tmp_path):
        """A quiescent refresh checkpoints the warmest worker's learned
        state — a later cold server starts warm without anyone ever
        calling persist() explicitly."""
        graph = serve_graph()
        query = serve_query()
        store = tmp_path / "store"

        async def serve_and_refresh():
            server = QueryServer(graph, workers=2, store=store)
            await server.start()
            answer = await server.submit(query)
            await server.refresh()  # no mutation: acts as a checkpoint
            await server.stop()
            return answer

        answer = asyncio.run(serve_and_refresh())

        async def restarted():
            server = QueryServer(graph, workers=1, store=store)
            await server.start()
            rehydrated = sum(server._sessions[0].store_rehydrated.values())
            again = await server.submit(query)
            await server.stop()
            return rehydrated, again

        rehydrated, again = asyncio.run(restarted())
        assert rehydrated > 0
        assert again == answer

    def test_refresh_without_a_store_still_repins(self):
        graph = serve_graph()

        async def run():
            server = QueryServer(graph, workers=1)
            await server.start()
            graph.add_node(label="a")
            await server.refresh()
            answer = await server.submit(serve_query())
            await server.stop()
            return answer

        assert asyncio.run(run()) == evaluate_naive(serve_query(), graph)

    def test_post_mutation_refresh_never_publishes_stale_artifacts(self, tmp_path):
        """persist() inside refresh() keys by the *mutated* content; the
        stale pre-mutation caches are dropped, not published."""
        from repro.store import ArtifactStore, graph_fingerprint

        graph = serve_graph()
        query = serve_query()
        store = ArtifactStore(tmp_path / "store")

        async def run():
            server = QueryServer(graph, workers=1, store=store)
            await server.start()
            await server.submit(query)
            stale_fingerprint = graph_fingerprint(graph)
            graph.add_node(label="c")
            await server.refresh()
            await server.submit(query)
            await server.refresh()
            await server.stop()
            return stale_fingerprint

        stale_fingerprint = asyncio.run(run())
        fresh_fingerprint = graph_fingerprint(graph)
        assert store.kinds(fresh_fingerprint), "checkpoint must land under the new key"
        assert stale_fingerprint != fresh_fingerprint
