"""Tests for structural analysis: independence, ftr, similarity, fcs."""

from repro.analysis import QueryAnalysis
from repro.logic import Var, is_satisfiable, is_tautology, land, lnot, lor, equivalent
from repro.query import QueryBuilder
from tests.paper_fixtures import fig2_query, fig4_query


class TestIndependentNodes:
    def test_fig2_all_nodes_independent(self):
        # Example 4: "All query nodes are independently constraint nodes."
        analysis = QueryAnalysis(fig2_query())
        assert analysis.independent_nodes == set(fig2_query().nodes)

    def test_fig4_u5_u8_not_independent(self):
        # Example 4: "u5 and u8 are two non-independently constraint nodes"
        # because fs(u3) = (u5 & u6) | (!u5 & u6) does not depend on u5.
        analysis = QueryAnalysis(fig4_query("q1"))
        independent = analysis.independent_nodes
        assert "u5" not in independent
        assert "u8" not in independent
        assert {"u1", "u2", "u3", "u4", "u6", "u7"} <= independent

    def test_descendant_of_non_independent_is_not_independent(self):
        # u8 is a child of u5: non-independence is inherited.
        analysis = QueryAnalysis(fig4_query("q1"))
        assert "u8" not in analysis.independent_nodes

    def test_backbone_nodes_are_independent(self):
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .backbone("b", parent="a", label="y")
            .predicate("p", parent="a", label="z")
            .structural("a", "p | !p")  # fs ignores p; p not independent
            .build()
        )
        analysis = QueryAnalysis(query)
        assert "b" in analysis.independent_nodes  # backbone, via fext
        assert "p" not in analysis.independent_nodes


class TestTransitivePredicates:
    def test_example4_ftr_u3(self):
        # ftr(u3) = u4 & (!u6 | (u7 & (u9|u10) & u8)) in our parentage
        # (the paper prints the same modulo the backbone conjunct u4).
        analysis = QueryAnalysis(fig2_query())
        expected = land(
            Var("u4"),
            lor(
                lnot(Var("u6")),
                land(Var("u7"), lor(Var("u9"), Var("u10")), Var("u8")),
            ),
        )
        assert equivalent(analysis.ftr("u3"), expected)

    def test_example4_fcs_u1(self):
        # fcs(u1) = u2 & u5 & u3 & u4 & (!u6 | (u7 & (u9|u10) & u8)).
        analysis = QueryAnalysis(fig2_query())
        expected = land(
            Var("u2"), Var("u5"), Var("u3"), Var("u4"),
            lor(
                lnot(Var("u6")),
                land(Var("u7"), lor(Var("u9"), Var("u10")), Var("u8")),
            ),
        )
        assert equivalent(analysis.fcs("u1"), expected)

    def test_leaf_ftr_is_fext(self):
        analysis = QueryAnalysis(fig2_query())
        assert analysis.ftr("u4").is_constant()  # leaf: fext = 1


class TestSimilarityAndSubsumption:
    def test_example4_u2_subsumed_by_u6_in_q1(self):
        q1 = fig4_query("q1")
        analysis = QueryAnalysis(q1)
        # (1) u6 ⊢ u2: B2 subsumes B1.
        assert q1.attribute("u6").subsumes(q1.attribute("u2"))
        # (2) u4 ⊳ u7 (E1 leaf pair) and u2 ⊳ u6.
        assert analysis.similar("u4", "u7")
        assert analysis.similar("u2", "u6")
        # (4) u2 is an AD child of u1, ancestor of u6 => u2 ⊴ u6.
        assert analysis.subsumed("u2", "u6")

    def test_example4_no_subsumption_in_q2(self):
        # In Q2, u2 is a PC child of u1 but u6 is not: u2 is NOT subsumed.
        analysis = QueryAnalysis(fig4_query("q2"))
        assert not analysis.subsumed("u2", "u6")

    def test_subsumption_needs_attribute_direction(self):
        # u6 ⊴ u2 must fail: B1 does not subsume B2.
        analysis = QueryAnalysis(fig4_query("q1"))
        assert not analysis.subsumed("u6", "u2")

    def test_fig2_has_no_subsumption_pairs_at_the_root(self):
        # Example 4 claims "there are no two nodes u and u' such that
        # u ⊴ u'" for Fig. 2 — read as: no pair diverging at the root, so
        # fcs(u1) = ftr(u1).  (Identical sibling leaves such as u9/u10 do
        # mutually subsume under the printed definition; their clauses are
        # tautological implications that never affect satisfiability.)
        query = fig2_query()
        analysis = QueryAnalysis(query)
        root_pairs = [
            (a, b)
            for a, b in analysis.subsumption_pairs()
            if analysis.lowest_common_ancestor(a, b) == query.root
        ]
        assert root_pairs == []
        # Mutual sibling pairs exist and are symmetric.
        pairs = set(analysis.subsumption_pairs())
        assert ("u9", "u10") in pairs and ("u10", "u9") in pairs

    def test_similar_is_reflexive(self):
        analysis = QueryAnalysis(fig2_query())
        for node_id in fig2_query().nodes:
            assert analysis.similar(node_id, node_id)


class TestCompletePredicatesOnFig4:
    def test_example4_q2_fcs_satisfiable(self):
        analysis = QueryAnalysis(fig4_query("q2"))
        assert is_satisfiable(analysis.fcs("u1"))

    def test_example4_q1_fcs_unsatisfiable(self):
        # fs(u1) = !u2 plus the subsumption clause u6 -> (u2 & u4)
        # contradicts fs(u3)'s requirement u6: Q1 is unsatisfiable.
        analysis = QueryAnalysis(fig4_query("q1"))
        assert not is_satisfiable(analysis.fcs("u1"))

    def test_q1_subsumption_clause_present(self):
        analysis = QueryAnalysis(fig4_query("q1"))
        fcs = analysis.fcs("u1")
        # fcs must entail u6 -> (u2 & u4).
        assert is_tautology(
            lor(lnot(fcs), lor(lnot(Var("u6")), land(Var("u2"), Var("u4"))))
        )
