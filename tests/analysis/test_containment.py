"""Tests for containment/equivalence (Theorem 3, Example 5)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis import (
    are_equivalent,
    find_homomorphism,
    is_contained,
)
from repro.query import QueryBuilder, evaluate_naive
from tests.paper_fixtures import fig4_q3, fig4_query
from tests.reachability.test_indexes import random_dags


def _q(variant):
    """Fig. 4 queries with fs(u1) = u2, as in Example 5."""
    return fig4_query(variant, fs_u1="u2")


class TestExample5:
    def test_q2_contained_in_q3(self):
        assert is_contained(_q("q2"), fig4_q3())

    def test_q2_contained_in_q1(self):
        assert is_contained(_q("q2"), _q("q1"))

    def test_q1_equivalent_to_q3(self):
        assert are_equivalent(_q("q1"), fig4_q3())

    def test_homomorphism_q3_to_q2_maps_as_printed(self):
        # λ3,2: u1->u1, u3(Q3's B2 node: u6)->..., Example 5 prints the
        # mapping in the paper's node numbering; here we check a valid
        # homomorphism exists and pins the output.
        mapping = find_homomorphism(fig4_q3(), _q("q2"))
        assert mapping is not None
        assert mapping["u1"] == "u1"
        assert mapping["u3"] == "u3"   # output is pinned positionally
        assert mapping["u6"] == "u6"
        assert mapping["u7"] == "u7"

    def test_homomorphism_q1_to_q3_drops_non_independent(self):
        mapping = find_homomorphism(_q("q1"), fig4_q3())
        assert mapping is not None
        assert "u5" not in mapping  # non-independent -> ⊥
        assert "u8" not in mapping

    def test_q3_not_contained_in_q2(self):
        # Q2 additionally requires the B1/E1 branch as a PC child: strictly
        # tighter, so Q3 ⊑ Q2 must fail.
        assert not is_contained(fig4_q3(), _q("q2"))


class TestBasicContainment:
    def test_self_containment(self):
        query = _q("q1")
        assert is_contained(query, query)
        assert are_equivalent(query, query)

    def test_extra_predicate_tightens(self):
        loose = (
            QueryBuilder()
            .backbone("a", label="x")
            .outputs("a")
            .build()
        )
        tight = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", label="y")
            .outputs("a")
            .build()
        )
        assert is_contained(tight, loose)
        assert not is_contained(loose, tight)

    def test_attribute_generalization(self):
        year_tight = (
            QueryBuilder()
            .backbone("a", predicate=None, label=None)
            .outputs("a")
            .build()
        )
        from repro.query import AttributePredicate

        q_2005 = (
            QueryBuilder()
            .backbone("a", predicate=AttributePredicate([("year", ">=", 2005)]))
            .outputs("a")
            .build()
        )
        q_2000 = (
            QueryBuilder()
            .backbone("a", predicate=AttributePredicate([("year", ">=", 2000)]))
            .outputs("a")
            .build()
        )
        assert is_contained(q_2005, q_2000)
        assert not is_contained(q_2000, q_2005)
        assert is_contained(q_2005, year_tight)

    def test_ad_generalizes_pc(self):
        pc = (
            QueryBuilder()
            .backbone("a", label="x")
            .backbone("b", parent="a", edge="pc", label="y")
            .outputs("a", "b")
            .build()
        )
        ad = (
            QueryBuilder()
            .backbone("a", label="x")
            .backbone("b", parent="a", edge="ad", label="y")
            .outputs("a", "b")
            .build()
        )
        assert is_contained(pc, ad)
        assert not is_contained(ad, pc)

    def test_output_arity_mismatch(self):
        one = QueryBuilder().backbone("a", label="x").outputs("a").build()
        two = (
            QueryBuilder()
            .backbone("a", label="x")
            .backbone("b", parent="a", label="y")
            .outputs("a", "b")
            .build()
        )
        assert not is_contained(one, two)
        assert not is_contained(two, one)


@settings(max_examples=30, deadline=None)
@given(random_dags(max_nodes=8), st.data())
def test_containment_is_sound_on_random_graphs(graph, data):
    """If Q1 ⊑ Q2 is decided, answers must actually be contained."""
    for node in graph.nodes():
        graph.attrs(node)["label"] = data.draw(st.sampled_from("xy"))
    loose = QueryBuilder().backbone("a", label="x").outputs("a").build()
    tight = (
        QueryBuilder()
        .backbone("a", label="x")
        .predicate("p", parent="a", label="y")
        .outputs("a")
        .build()
    )
    assert is_contained(tight, loose)
    answers_tight = evaluate_naive(tight, graph)
    answers_loose = evaluate_naive(loose, graph)
    assert answers_tight <= answers_loose
