"""Tests for minGTPQ (Algorithm 1, Example 6, Proposition 5)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis import are_equivalent, are_isomorphic, minimize_query
from repro.query import AttributePredicate, QueryBuilder, evaluate_naive
from tests.paper_fixtures import fig2_query, fig4_q3, fig4_query
from tests.reachability.test_indexes import random_dags


class TestExample6:
    def test_q1_minimizes_to_q3(self):
        """Example 6: Q1 (with fs(u1)=u2) minimizes to the 4-node Q3."""
        q1 = fig4_query("q1", fs_u1="u2")
        minimized = minimize_query(q1)
        # Steps: u5, u8 dropped (non-independent); u2, u4 dropped
        # (subsumed by u6 whose presence fcs guarantees).
        assert set(minimized.nodes) == {"u1", "u3", "u6", "u7"}
        assert minimized.fs("u1").is_constant()          # fs(u1) = 1
        from repro.logic import Var

        assert minimized.fs("u3") == Var("u6")
        assert minimized.fs("u6") == Var("u7")
        assert are_equivalent(minimized, fig4_q3())
        assert are_isomorphic(minimized, fig4_q3())

    def test_q1_equivalent_after_minimization(self):
        q1 = fig4_query("q1", fs_u1="u2")
        assert are_equivalent(q1, minimize_query(q1))


class TestBasicMinimization:
    def test_fig2_query_sheds_its_one_redundancy(self):
        # A finding of this reproduction: the Fig. 2(b) query is not
        # minimal.  The backbone child u4 (D1) of u3 guarantees a D1
        # descendant in every match, so the predicate leaf u8 (also D1,
        # same parent) is redundant: u8 ⊴ u4 and fcs(root) -> p_u4.
        query = fig2_query()
        minimized = minimize_query(query)
        assert set(query.nodes) - set(minimized.nodes) == {"u8"}
        from repro.logic import parse_formula

        assert minimized.fs("u3") == parse_formula("!u6 | u7")
        assert are_equivalent(query, minimized)

    def test_duplicate_predicate_children_collapse(self):
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", label="y")
            .predicate("q", parent="a", label="y")
            .structural("a", "p & q")
            .build()
        )
        minimized = minimize_query(query)
        assert minimized.size == 2  # one copy survives

    def test_subsumed_weaker_branch_collapses(self):
        # p requires a y-descendant; q requires a y-descendant with a
        # z-descendant below it. q's presence implies p's.
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", label="y")
            .predicate("q", parent="a", label="y")
            .predicate("qq", parent="q", label="z")
            .structural("a", "p & q")
            .build()
        )
        minimized = minimize_query(query)
        assert set(minimized.nodes) == {"a", "q", "qq"}

    def test_non_independent_subtree_dropped(self):
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", label="y")
            .predicate("r", parent="p", label="w")
            .predicate("q", parent="a", label="z")
            .structural("a", "(p & q) | (!p & q)")  # p irrelevant
            .build()
        )
        minimized = minimize_query(query)
        assert set(minimized.nodes) == {"a", "q"}

    def test_unsat_attribute_subtree_dropped(self):
        bad = AttributePredicate([("year", ">", 5), ("year", "<", 3)])
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", predicate=bad)
            .predicate("q", parent="a", label="z")
            .structural("a", "q | p")
            .build()
        )
        minimized = minimize_query(query)
        assert set(minimized.nodes) == {"a", "q"}

    def test_single_node_query(self):
        query = QueryBuilder().backbone("a", label="x").build()
        assert minimize_query(query).size == 1

    def test_outputs_never_silently_dropped(self):
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .backbone("b", parent="a", label="y")
            .backbone("c", parent="a", label="y")
            .outputs("b", "c")
            .build()
        )
        minimized = minimize_query(query)
        assert len(minimized.outputs) == 2
        # b and c are both outputs: the duplicate branch must survive
        # because each output needs its own column.
        assert minimized.size == 3


class TestProposition5:
    def test_minimal_queries_unique_up_to_isomorphism(self):
        # Two differently-written equivalent queries minimize to
        # isomorphic results.
        q_a = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", label="y")
            .predicate("q", parent="a", label="y")
            .structural("a", "p & q")
            .build()
        )
        q_b = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", label="y")
            .structural("a", "p")
            .build()
        )
        assert are_isomorphic(minimize_query(q_a), minimize_query(q_b))


@settings(max_examples=25, deadline=None)
@given(random_dags(max_nodes=8), st.data())
def test_minimization_preserves_answers(graph, data):
    """The minimized query returns identical answers on random graphs."""
    for node in graph.nodes():
        graph.attrs(node)["label"] = data.draw(st.sampled_from("xyz"))
    query = (
        QueryBuilder()
        .backbone("a", label="x")
        .predicate("p", parent="a", label="y")
        .predicate("q", parent="a", label="y")
        .predicate("r", parent="a", label="z")
        .structural("a", "(p & q) | (q & r)")
        .build()
    )
    minimized = minimize_query(query)
    assert minimized.size <= query.size
    assert evaluate_naive(query, graph) == evaluate_naive(minimized, graph)
