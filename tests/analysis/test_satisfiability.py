"""Tests for query satisfiability (Theorems 1-2)."""

from repro.analysis import is_query_satisfiable, normalize_query
from repro.query import AttributePredicate, QueryBuilder
from tests.paper_fixtures import fig2_query, fig4_query


class TestPaperExamples:
    def test_fig2_query_satisfiable(self):
        # Example 4: "the query is satisfiable. Indeed, we can get a
        # nonempty answer by posing Q on G".
        assert is_query_satisfiable(fig2_query())

    def test_example4_q1_unsatisfiable(self):
        assert not is_query_satisfiable(fig4_query("q1"))

    def test_example4_q2_satisfiable(self):
        assert is_query_satisfiable(fig4_query("q2"))


class TestBasicCases:
    def test_single_node(self):
        query = QueryBuilder().backbone("a", label="x").build()
        assert is_query_satisfiable(query)

    def test_unsat_root_attribute(self):
        bad = AttributePredicate([("year", ">", 5), ("year", "<", 3)])
        query = QueryBuilder().backbone("a", predicate=bad).build()
        assert not is_query_satisfiable(query)

    def test_unsat_predicate_child_under_conjunction(self):
        bad = AttributePredicate([("year", ">", 5), ("year", "<", 3)])
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", predicate=bad)
            .structural("a", "p")
            .build()
        )
        # fs(a) = p with p unmatchable: no match possible.
        assert not is_query_satisfiable(query)

    def test_unsat_child_under_negation_is_fine(self):
        bad = AttributePredicate([("year", ">", 5), ("year", "<", 3)])
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", predicate=bad)
            .structural("a", "!p")
            .build()
        )
        # !p with p never matchable: trivially satisfied.
        assert is_query_satisfiable(query)

    def test_unsat_child_under_disjunction_is_fine(self):
        bad = AttributePredicate([("year", ">", 5), ("year", "<", 3)])
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", predicate=bad)
            .predicate("q", parent="a", label="y")
            .structural("a", "p | q")
            .build()
        )
        assert is_query_satisfiable(query)

    def test_contradictory_structural_predicate(self):
        from repro.logic import parse_formula

        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", label="y")
            .structural("a", parse_formula("p & !p"))
            .build()
        )
        assert not is_query_satisfiable(query)

    def test_union_conjunctive_fast_path(self):
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", label="y")
            .predicate("q", parent="a", label="z")
            .structural("a", "p | q")
            .build()
        )
        assert query.is_union_conjunctive()
        assert is_query_satisfiable(query)

    def test_backbone_with_unsat_attribute(self):
        bad = AttributePredicate([("year", ">", 5), ("year", "<", 3)])
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .backbone("b", parent="a", predicate=bad)
            .outputs("a")
            .build()
        )
        # Backbone nodes must have images; an unmatchable one kills Q.
        assert not is_query_satisfiable(query)


class TestNormalization:
    def test_normalize_removes_non_independent(self):
        query = fig4_query("q1")
        normalized = normalize_query(query)
        assert "u5" not in normalized.nodes
        assert "u8" not in normalized.nodes
        # fs(u3) simplifies to u6 after substituting u5 := 0.
        from repro.logic import Var

        assert normalized.fs("u3") == Var("u6")

    def test_normalize_removes_unsat_attribute_subtrees(self):
        bad = AttributePredicate([("year", ">", 5), ("year", "<", 3)])
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .predicate("p", parent="a", predicate=bad)
            .predicate("inner", parent="p", label="y")
            .structural("a", "!p")
            .build()
        )
        normalized = normalize_query(query)
        assert "p" not in normalized.nodes
        assert "inner" not in normalized.nodes
        assert normalized.fs("a").is_constant()

    def test_normalize_preserves_fig2(self):
        # Everything independent & satisfiable: nothing to remove.
        query = fig2_query()
        assert normalize_query(query).size == query.size
