"""Tests for the Section 5.2 random query generator."""

import random

from repro.datasets import (
    generate_arxiv,
    generate_query_groups,
    random_embedded_query,
)
from repro.engine import GTEA
from repro.query import evaluate_naive


def _graph():
    return generate_arxiv(num_papers=300, num_authors=60, seed=5).graph


class TestRandomEmbeddedQuery:
    def test_requested_size(self):
        graph = _graph()
        rng = random.Random(1)
        query = random_embedded_query(graph, size=6, rng=rng)
        assert query is not None
        assert query.size == 6

    def test_queries_are_meaningful_nonempty(self):
        # "Meaningful" per the paper: the pattern embeds in the graph.
        graph = _graph()
        rng = random.Random(2)
        engine = GTEA(graph)
        for __ in range(5):
            query = random_embedded_query(graph, size=5, rng=rng)
            assert query is not None
            assert len(engine.evaluate(query)) > 0

    def test_all_ad_edges_all_outputs(self):
        graph = _graph()
        query = random_embedded_query(graph, size=5, rng=random.Random(3))
        assert query is not None
        assert not query.has_pc_edges()
        assert set(query.outputs) == set(query.nodes)

    def test_impossible_size_returns_none(self):
        from repro.graph import DataGraph

        tiny = DataGraph.from_edges("ab", [(0, 1)])
        assert random_embedded_query(tiny, size=10, rng=random.Random(1),
                                     max_attempts=20) is None

    def test_gtea_matches_naive_on_generated(self):
        graph = _graph()
        rng = random.Random(4)
        engine = GTEA(graph)
        for __ in range(3):
            query = random_embedded_query(graph, size=5, rng=rng)
            assert engine.evaluate(query) == evaluate_naive(query, graph)


class TestQueryGroups:
    def test_groups_respect_result_bands(self):
        graph = _graph()
        groups = generate_query_groups(
            graph,
            sizes=(5,),
            queries_per_size=3,
            small_range=(1, 20),
            large_range=(21, 100000),
            seed=6,
            max_attempts=120,
        )
        for generated in groups["small"][5]:
            assert 1 <= generated.result_size <= 20
        for generated in groups["large"][5]:
            assert generated.result_size > 20

    def test_deterministic_given_seed(self):
        graph = _graph()
        kwargs = dict(
            sizes=(5,), queries_per_size=2, small_range=(1, 20),
            large_range=(21, 100000), seed=7, max_attempts=60,
        )
        a = generate_query_groups(graph, **kwargs)
        b = generate_query_groups(graph, **kwargs)
        sizes_a = [g.result_size for g in a["small"][5]]
        sizes_b = [g.result_size for g in b["small"][5]]
        assert sizes_a == sizes_b


class TestRandomBatchGenerators:
    def test_random_labeled_graph_is_deterministic_and_cyclic_capable(self):
        import random

        from repro.datasets import random_labeled_graph

        a = random_labeled_graph(12, random.Random(3))
        b = random_labeled_graph(12, random.Random(3))
        assert [a.label(v) for v in a.nodes()] == [b.label(v) for v in b.nodes()]
        assert a.num_edges == b.num_edges

    def test_batch_preserves_multi_character_labels(self):
        """Regression: labels were flattened to characters, so graphs with
        multi-character labels (XMark) only ever got unmatchable queries."""
        import random

        from repro.datasets import generate_xmark, random_query_batch

        graph = generate_xmark(scale=0.02, seed=97).graph
        real_labels = {graph.label(v) for v in graph.nodes()}
        batch = random_query_batch(graph, random.Random(1), batch_size=4)
        for query in batch:
            for node_id in query.nodes:
                atoms = query.attribute(node_id).atoms
                assert len(atoms) == 1
                assert atoms[0][2] in real_labels

    def test_batch_overlap_produces_shared_fingerprints(self):
        import random

        from repro.datasets import random_labeled_graph, random_query_batch
        from repro.query import subtree_fingerprints

        rng = random.Random(9)
        graph = random_labeled_graph(12, rng)
        batch = random_query_batch(graph, rng, batch_size=8, overlap=0.8)
        fingerprints = [
            fp for query in batch for fp in subtree_fingerprints(query).values()
        ]
        assert len(set(fingerprints)) < len(fingerprints)
