"""Tests for the dataset generators."""

from repro.datasets import (
    generate_arxiv,
    generate_dblp,
    generate_xmark,
    table1_row,
)
from repro.graph import graph_stats, is_dag, topological_order
from repro.reachability import IntervalLabeling


class TestXMark:
    def test_deterministic(self):
        a = generate_xmark(scale=0.02, seed=1)
        b = generate_xmark(scale=0.02, seed=1)
        assert a.graph.num_nodes == b.graph.num_nodes
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())

    def test_scale_grows_linearly(self):
        small = generate_xmark(scale=0.02, seed=1)
        large = generate_xmark(scale=0.08, seed=1)
        ratio = large.graph.num_nodes / small.graph.num_nodes
        assert 3.0 < ratio < 5.0

    def test_is_dag_with_tree_plus_references(self):
        xmark = generate_xmark(scale=0.02, seed=3)
        assert is_dag(xmark.graph)
        # More edges than a pure tree: the reference edges.
        assert xmark.graph.num_edges > xmark.graph.num_nodes - 1
        assert len(xmark.forest_edges) == xmark.graph.num_nodes - 1

    def test_forest_view_is_a_forest(self):
        from repro.graph import DataGraph

        xmark = generate_xmark(scale=0.02, seed=3)
        forest = DataGraph()
        for node in xmark.graph.nodes():
            forest.add_node(dict(xmark.graph.attrs(node)))
        for source, target in xmark.forest_edges:
            forest.add_edge(source, target)
        IntervalLabeling(forest)  # raises if not a forest

    def test_person_groups(self):
        xmark = generate_xmark(scale=0.05, seed=3)
        labels = {xmark.graph.label(p) for p in xmark.persons}
        assert labels <= {f"person{i}" for i in range(10)}
        assert len(labels) > 3  # several groups hit at this scale

    def test_references_point_at_entities(self):
        xmark = generate_xmark(scale=0.02, seed=3)
        persons = set(xmark.persons)
        items = set(xmark.items)
        graph = xmark.graph
        for source, target in graph.edges():
            if (source, target) in xmark.forest_edges:
                continue
            assert target in persons or target in items

    def test_table1_row(self):
        xmark = generate_xmark(scale=0.02, seed=3)
        row = table1_row(xmark)
        assert row["nodes"] == xmark.graph.num_nodes
        assert row["scale"] == 0.02


class TestArxiv:
    def test_paper_scale_statistics(self):
        arxiv = generate_arxiv(seed=1)
        stats = graph_stats(arxiv.graph)
        assert stats.num_nodes == 9562
        # Edge count within 15% of the paper's 28120.
        assert abs(stats.num_edges - 28120) / 28120 < 0.15
        # Label count within 15% of the paper's 1132.
        assert abs(stats.num_labels - 1132) / 1132 < 0.15

    def test_is_dag(self):
        arxiv = generate_arxiv(num_papers=300, num_authors=60, seed=2)
        assert topological_order(arxiv.graph) is not None

    def test_deeper_than_xmark(self):
        # The property driving Fig. 9: arXiv is denser/deeper than XMark.
        arxiv = generate_arxiv(num_papers=800, num_authors=160, seed=2)
        xmark = generate_xmark(scale=0.05, seed=2)
        assert (
            graph_stats(arxiv.graph).max_depth
            > graph_stats(xmark.graph).max_depth
        )

    def test_authors_are_sinks(self):
        arxiv = generate_arxiv(num_papers=100, num_authors=20, seed=2)
        for author in arxiv.authors:
            assert arxiv.graph.out_degree(author) == 0


class TestDblp:
    def test_structure(self):
        dblp = generate_dblp(num_proceedings=5, papers_per_proceedings=4, seed=1)
        assert len(dblp.proceedings) == 5
        assert len(dblp.inproceedings) == 20
        assert is_dag(dblp.graph)

    def test_crossref_edges_link_papers_to_proceedings(self):
        dblp = generate_dblp(num_proceedings=3, papers_per_proceedings=2, seed=1)
        graph = dblp.graph
        proceedings = set(dblp.proceedings)
        crossrefs = [
            n for n in graph.nodes() if graph.attrs(n).get("label") == "crossref"
        ]
        assert crossrefs
        for crossref in crossrefs:
            targets = [
                t for t in graph.successors(crossref) if t in proceedings
            ]
            assert len(targets) == 1

    def test_paper_years_match_proceedings(self):
        dblp = generate_dblp(num_proceedings=3, papers_per_proceedings=2, seed=1)
        graph = dblp.graph
        for paper in dblp.inproceedings:
            year_nodes = [
                c for c in graph.successors(paper)
                if graph.attrs(c).get("label") == "year"
            ]
            assert len(year_nodes) == 1
            assert 1995 <= graph.attrs(year_nodes[0])["value"] <= 2015
