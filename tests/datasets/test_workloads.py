"""Workload queries: cross-algorithm agreement on generated datasets.

These are the integration tests of the whole stack: GTEA, the naive
oracle, TwigStackD/HGJoin on the full graph, and TwigStack/Twig2Stack via
tree decomposition must all agree on the paper's XMark workloads.
"""

import pytest

from repro.baselines import (
    CrossAwareTreeSolver,
    DecomposingEvaluator,
    HGJoinPlus,
    HGJoinStar,
    TreeDecomposedEvaluator,
    TwigStack,
    Twig2Stack,
    TwigStackD,
    decompose_at_cross_edges,
)
from repro.datasets import (
    FIG7_CROSS,
    FIG11_CROSS,
    TABLE4_PREDICATES,
    dblp_example_query,
    exp1_query,
    exp2_query,
    fig7_query,
    fig11_query,
    generate_dblp,
    generate_xmark,
)
from repro.engine import GTEA
from repro.query import evaluate_naive


@pytest.fixture(scope="module")
def xmark():
    return generate_xmark(scale=0.02, seed=9)


@pytest.fixture(scope="module")
def engine(xmark):
    return GTEA(xmark.graph)


class TestFig7Queries:
    @pytest.mark.parametrize("variant", ["q1", "q2", "q3"])
    def test_gtea_matches_naive(self, xmark, engine, variant):
        query = fig7_query(variant, person_group=1, item_group=2, seller_group=3)
        assert engine.evaluate(query) == evaluate_naive(query, xmark.graph)

    def test_q1_nonempty_at_this_scale(self, xmark, engine):
        # Q1 has hits at small scale; Q2/Q3 are far more selective (the
        # paper's Table 2 shows the same steep drop: 368 -> 34.6 -> 1.9 on
        # the 55MB dataset) so only correctness is asserted for them.
        hits = 0
        for group in range(5):
            query = fig7_query("q1", person_group=group, item_group=group)
            hits += len(engine.evaluate(query))
        assert hits > 0

    @pytest.mark.parametrize("variant", ["q1", "q2", "q3"])
    def test_dag_baselines_agree(self, xmark, engine, variant):
        query = fig7_query(variant, person_group=1, item_group=2, seller_group=3)
        expected = engine.evaluate(query)
        assert TwigStackD(xmark.graph).evaluate(query) == expected
        assert HGJoinPlus(xmark.graph).evaluate(query) == expected
        assert HGJoinStar(xmark.graph).evaluate(query) == expected

    @pytest.mark.parametrize("variant", ["q1", "q2"])
    @pytest.mark.parametrize("algorithm", [TwigStack, Twig2Stack])
    def test_tree_decomposed_baselines_agree(self, xmark, engine, variant, algorithm):
        query = fig7_query(variant, person_group=1, item_group=2, seller_group=3)
        expected = engine.evaluate(query)
        runner = TreeDecomposedEvaluator(
            xmark.graph, algorithm, forest_edges=xmark.forest_edges
        )
        decomposed = decompose_at_cross_edges(query, FIG7_CROSS[variant])
        assert runner.evaluate(decomposed) == expected


class TestFig11Workloads:
    @pytest.mark.parametrize("name", ["Q4", "Q5", "Q6", "Q7", "Q8"])
    def test_exp1_queries_match_naive(self, xmark, engine, name):
        query = exp1_query(name, person_group=1, seller_group=2, item_group=1)
        assert engine.evaluate(query) == evaluate_naive(query, xmark.graph)

    @pytest.mark.parametrize("name", sorted(TABLE4_PREDICATES))
    def test_exp2_queries_match_naive(self, xmark, engine, name):
        query = exp2_query(name, person_group=1, seller_group=2, item_group=1)
        assert engine.evaluate(query) == evaluate_naive(query, xmark.graph)

    @pytest.mark.parametrize("name", ["DIS1", "NEG2", "DIS_NEG2"])
    def test_exp2_via_decomposed_twigstackd(self, xmark, engine, name):
        query = exp2_query(name, person_group=1, seller_group=2, item_group=1)
        wrapper = DecomposingEvaluator(TwigStackD(xmark.graph))
        assert wrapper.evaluate(query) == engine.evaluate(query)

    @pytest.mark.parametrize("name", ["DIS1", "NEG1", "DIS_NEG2"])
    def test_exp2_via_decomposed_twigstack(self, xmark, engine, name):
        query = exp2_query(name, person_group=1, seller_group=2, item_group=1)
        runner = TreeDecomposedEvaluator(
            xmark.graph, TwigStack, forest_edges=xmark.forest_edges
        )
        solver = CrossAwareTreeSolver(runner, FIG11_CROSS)
        wrapper = DecomposingEvaluator(solver)
        assert wrapper.evaluate(query) == engine.evaluate(query)

    def test_predicate_nodes_derived_from_formulas(self):
        query = fig11_query(structural=TABLE4_PREDICATES["DIS1"])
        # bidder & seller branches become predicate subtrees.
        for node_id in ("bidder", "personref", "person", "education",
                        "address", "city", "seller", "person2", "profile"):
            assert not query.nodes[node_id].is_backbone
        for node_id in ("open_auction", "item", "item_elem", "location",
                        "mailbox", "mail"):
            assert query.nodes[node_id].is_backbone
        assert set(query.outputs) == {
            "open_auction", "item", "item_elem", "location", "mailbox", "mail"
        }


class TestDblpExample:
    @pytest.fixture(scope="class")
    def dblp(self):
        return generate_dblp(seed=4)

    @pytest.mark.parametrize("variant", ["q1", "q2", "q3"])
    def test_example1_queries_match_naive(self, dblp, variant):
        query = dblp_example_query(variant)
        engine = GTEA(dblp.graph)
        assert engine.evaluate(query) == evaluate_naive(query, dblp.graph)

    def test_q2_superset_of_q1(self, dblp):
        engine = GTEA(dblp.graph)
        q1 = engine.evaluate(dblp_example_query("q1"))
        q2 = engine.evaluate(dblp_example_query("q2"))
        q3 = engine.evaluate(dblp_example_query("q3"))
        assert q1 <= q2           # AND is tighter than OR
        assert q1.isdisjoint(q3)  # with-Bob vs without-Bob
        assert (q1 | q3) <= q2    # Alice's papers split by Bob
        assert q2                 # nonempty at this scale
