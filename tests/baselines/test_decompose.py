"""GTPQ decomposition wrapper: DNF variants + anti-joins vs the oracle."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines import (
    DecomposingEvaluator,
    TwigStackD,
    enumerate_conjunctive_variants,
)
from repro.graph import DataGraph
from repro.query import QueryBuilder, evaluate_naive
from tests.engine.test_gtea_oracle import random_queries
from tests.paper_fixtures import fig2_graph, fig2_query, FIG2_ANSWER, v
from tests.reachability.test_indexes import random_dags

_LABELS = "abcx"


class TestVariantEnumeration:
    def test_conjunctive_query_is_one_variant(self):
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .predicate("p", parent="r", label="b")
            .build()
        )
        variants = enumerate_conjunctive_variants(query)
        assert len(variants) == 1
        skeleton, negatives = variants[0]
        assert negatives == []
        assert set(skeleton.nodes) == {"r", "p"}

    def test_disjunction_splits_into_two_variants(self):
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .predicate("p", parent="r", label="b")
            .predicate("q", parent="r", label="c")
            .structural("r", "p | q")
            .build()
        )
        variants = enumerate_conjunctive_variants(query)
        assert len(variants) == 2
        node_sets = {frozenset(s.nodes) for s, __ in variants}
        assert node_sets == {frozenset({"r", "p"}), frozenset({"r", "q"})}

    def test_negation_becomes_anti_join(self):
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .predicate("p", parent="r", label="b")
            .structural("r", "!p")
            .build()
        )
        variants = enumerate_conjunctive_variants(query)
        assert len(variants) == 1
        skeleton, negatives = variants[0]
        assert "p" not in skeleton.nodes
        assert negatives == [("r", "p")]

    def test_exponential_variant_count(self):
        # Two independent disjunctions -> 2 x 2 variants, as the paper's
        # related-work analysis predicts.
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .backbone("s", parent="r", label="a")
            .predicate("p1", parent="r", label="b")
            .predicate("p2", parent="r", label="c")
            .predicate("q1", parent="s", label="b")
            .predicate("q2", parent="s", label="c")
            .structural("r", "p1 | p2")
            .structural("s", "q1 | q2")
            .outputs("r", "s")
            .build()
        )
        assert len(enumerate_conjunctive_variants(query)) == 4


class TestAgainstOracle:
    def test_fig2_query_via_decomposition(self):
        graph = fig2_graph()
        wrapper = DecomposingEvaluator(TwigStackD(graph))
        assert wrapper.evaluate(fig2_query()) == FIG2_ANSWER

    def test_negation_only_query(self):
        graph = fig2_graph()
        query = (
            QueryBuilder()
            .backbone("c", paper_label="C1")
            .predicate("e", parent="c", paper_label="E2")
            .structural("c", "!e")
            .outputs("c")
            .build()
        )
        wrapper = DecomposingEvaluator(TwigStackD(graph))
        assert wrapper.evaluate(query) == {(v(5),)}

    def test_dis_neg_query(self):
        graph = fig2_graph()
        query = (
            QueryBuilder()
            .backbone("c", paper_label="C1")
            .predicate("g", parent="c", paper_label="G1")
            .predicate("e", parent="c", paper_label="E2")
            .structural("c", "(g & !e) | (!g & e)")
            .outputs("c")
            .build()
        )
        wrapper = DecomposingEvaluator(TwigStackD(graph))
        assert wrapper.evaluate(query) == evaluate_naive(query, graph)


@settings(max_examples=60, deadline=None)
@given(random_dags(max_nodes=10), random_queries(), st.data())
def test_decomposition_matches_oracle(graph, query, data):
    for node in graph.nodes():
        graph.attrs(node)["label"] = data.draw(st.sampled_from(_LABELS))
    expected = evaluate_naive(query, graph)
    wrapper = DecomposingEvaluator(TwigStackD(graph))
    assert wrapper.evaluate(query) == expected
