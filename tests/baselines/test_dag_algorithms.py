"""TwigStackD and HGJoin+/- against the naive oracle on DAGs."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.baselines import HGJoinPlus, HGJoinStar, TwigStackD
from repro.graph import DataGraph
from repro.query import QueryBuilder, evaluate_naive
from tests.baselines.test_tree_algorithms import conjunctive_tree_queries
from tests.paper_fixtures import fig2_graph, v
from tests.reachability.test_indexes import random_dags

_LABELS = "abc"

ALGORITHMS = [TwigStackD, HGJoinPlus, HGJoinStar]


def _labeled(graph, data):
    for node in graph.nodes():
        graph.attrs(node)["label"] = data.draw(st.sampled_from(_LABELS))
    return graph


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestFixedCases:
    def test_diamond_reachability(self, algorithm):
        graph = DataGraph.from_edges("abbc", [(0, 1), (0, 2), (1, 3), (2, 3)])
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .backbone("x", parent="r", label="b")
            .backbone("y", parent="x", label="c")
            .outputs("r", "x", "y")
            .build()
        )
        assert algorithm(graph).evaluate(query) == {(0, 1, 3), (0, 2, 3)}

    def test_fig2_conjunctive_subquery(self, algorithm):
        # Conjunctive pattern A1 // C1 // D1 on the Fig. 2 graph.
        graph = fig2_graph()
        query = (
            QueryBuilder()
            .backbone("a", paper_label="A1")
            .backbone("c", parent="a", paper_label="C1")
            .backbone("d", parent="c", paper_label="D1")
            .outputs("a", "c", "d")
            .build()
        )
        expected = evaluate_naive(query, graph)
        assert algorithm(graph).evaluate(query) == expected
        assert (v(1), v(3), v(11)) in expected

    def test_pc_edges_on_dag(self, algorithm):
        graph = DataGraph.from_edges("abb", [(0, 1), (0, 2), (1, 2)])
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .backbone("x", parent="r", edge="pc", label="b")
            .outputs("r", "x")
            .build()
        )
        assert algorithm(graph).evaluate(query) == {(0, 1), (0, 2)}

    def test_empty_result(self, algorithm):
        graph = DataGraph.from_edges("ab", [(0, 1)])
        query = (
            QueryBuilder()
            .backbone("r", label="c")
            .backbone("x", parent="r", label="b")
            .build()
        )
        assert algorithm(graph).evaluate(query) == set()

    def test_single_node_query(self, algorithm):
        graph = DataGraph.from_edges("aba", [(0, 1)])
        query = QueryBuilder().backbone("r", label="a").build()
        assert algorithm(graph).evaluate(query) == {(0,), (2,)}


class TestTwigStackDInternals:
    def test_prefilter_counts_two_traversals(self):
        graph = fig2_graph()
        evaluator = TwigStackD(graph)
        query = (
            QueryBuilder()
            .backbone("a", paper_label="A1")
            .backbone("c", parent="a", paper_label="C1")
            .outputs("a", "c")
            .build()
        )
        __, stats = evaluator.evaluate_with_stats(query)
        # Two whole-graph sweeps plus the candidate scan.
        assert stats.input_nodes >= 2 * graph.num_nodes

    def test_prefilter_removes_unsupported(self):
        graph = fig2_graph()
        evaluator = TwigStackD(graph)
        query = (
            QueryBuilder()
            .backbone("c", paper_label="C1")
            .backbone("e", parent="c", paper_label="E2")
            .outputs("c", "e")
            .build()
        )
        mats = evaluator.candidates(query)
        filtered = evaluator.prefilter(query, mats)
        # v5 (c2) cannot reach an e2 node: dropped by sweep 1.
        assert v(5) not in filtered["c"]
        # v13 is supported from above: kept by sweep 2.
        assert filtered["e"] == [v(13)]


class TestHGJoinInternals:
    def test_plan_sweep_records_best_time(self):
        graph = fig2_graph()
        evaluator = HGJoinPlus(graph)
        query = (
            QueryBuilder()
            .backbone("a", paper_label="A1")
            .backbone("c", parent="a", paper_label="C1")
            .backbone("d", parent="c", paper_label="D1")
            .outputs("a", "c", "d")
            .build()
        )
        evaluator.evaluate(query)
        assert "best_plan" in evaluator.stats.phase_seconds
        assert (
            evaluator.stats.phase_seconds["all_plans"]
            >= evaluator.stats.phase_seconds["best_plan"]
        )

    def test_star_produces_tuple_intermediates(self):
        graph = fig2_graph()
        evaluator = HGJoinPlus(graph)
        query = (
            QueryBuilder()
            .backbone("a", paper_label="A1")
            .backbone("c", parent="a", paper_label="C1")
            .outputs("a", "c")
            .build()
        )
        __, stats = evaluator.evaluate_with_stats(query)
        assert stats.intermediate_tuples > 0

    def test_hgjoin_star_uses_graph_intermediates(self):
        graph = fig2_graph()
        evaluator = HGJoinStar(graph)
        query = (
            QueryBuilder()
            .backbone("a", paper_label="A1")
            .backbone("c", parent="a", paper_label="C1")
            .outputs("a", "c")
            .build()
        )
        __, stats = evaluator.evaluate_with_stats(query)
        assert stats.matching_graph_nodes > 0
        assert stats.matching_graph_edges > 0


@settings(max_examples=60, deadline=None)
@given(random_dags(max_nodes=10), conjunctive_tree_queries(), st.data())
def test_twigstackd_matches_oracle(graph, query, data):
    _labeled(graph, data)
    assert TwigStackD(graph).evaluate(query) == evaluate_naive(query, graph)


@settings(max_examples=60, deadline=None)
@given(random_dags(max_nodes=10), conjunctive_tree_queries(), st.data())
def test_hgjoin_plus_matches_oracle(graph, query, data):
    _labeled(graph, data)
    assert HGJoinPlus(graph).evaluate(query) == evaluate_naive(query, graph)


@settings(max_examples=60, deadline=None)
@given(random_dags(max_nodes=10), conjunctive_tree_queries(), st.data())
def test_hgjoin_star_matches_oracle(graph, query, data):
    _labeled(graph, data)
    assert HGJoinStar(graph).evaluate(query) == evaluate_naive(query, graph)
