"""TwigStack / Twig2Stack against the naive oracle on tree data."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.baselines import Twig2Stack, TwigStack
from repro.graph import DataGraph
from repro.query import QueryBuilder, evaluate_naive

_LABELS = "abc"


def random_trees(max_nodes: int = 14):
    """Random labeled rooted trees: parent[i] < i."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_nodes))
        graph = DataGraph()
        for __ in range(n):
            graph.add_node(label=draw(st.sampled_from(_LABELS)))
        for node in range(1, n):
            parent = draw(st.integers(min_value=0, max_value=node - 1))
            graph.add_edge(parent, node)
        return graph

    return build()


@st.composite
def conjunctive_tree_queries(draw):
    builder = QueryBuilder()
    label = lambda: draw(st.sampled_from(_LABELS))
    edge = lambda: draw(st.sampled_from(["ad", "ad", "pc"]))
    builder.backbone("r", label=label())
    shape = draw(st.sampled_from(["path", "twig", "wide", "deep_twig"]))
    if shape == "path":
        builder.backbone("x", parent="r", edge=edge(), label=label())
        builder.outputs("r", "x")
    elif shape == "twig":
        builder.backbone("x", parent="r", edge=edge(), label=label())
        builder.backbone("y", parent="r", edge=edge(), label=label())
        builder.outputs("r", "x", "y")
    elif shape == "wide":
        builder.backbone("x", parent="r", edge=edge(), label=label())
        builder.backbone("y", parent="r", edge=edge(), label=label())
        builder.backbone("z", parent="r", edge=edge(), label=label())
        builder.outputs("r", "x", "y", "z")
    else:
        builder.backbone("x", parent="r", edge=edge(), label=label())
        builder.backbone("y", parent="x", edge=edge(), label=label())
        builder.backbone("z", parent="r", edge=edge(), label=label())
        builder.outputs("r", "x", "y", "z")
    return builder.build()


@pytest.mark.parametrize("algorithm", [TwigStack, Twig2Stack])
class TestFixedCases:
    def test_simple_path(self, algorithm):
        graph = DataGraph.from_edges("abcb", [(0, 1), (1, 2), (2, 3)])
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .backbone("x", parent="r", label="b")
            .outputs("r", "x")
            .build()
        )
        assert algorithm(graph).evaluate(query) == {(0, 1), (0, 3)}

    def test_twig_with_two_branches(self, algorithm):
        #      a
        #     / \
        #    b   c
        #    |
        #    c
        graph = DataGraph.from_edges("abcc", [(0, 1), (0, 2), (1, 3)])
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .backbone("x", parent="r", label="b")
            .backbone("y", parent="r", label="c")
            .outputs("r", "x", "y")
            .build()
        )
        assert algorithm(graph).evaluate(query) == {(0, 1, 2), (0, 1, 3)}

    def test_pc_edge(self, algorithm):
        graph = DataGraph.from_edges("abb", [(0, 1), (1, 2)])
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .backbone("x", parent="r", edge="pc", label="b")
            .outputs("x")
            .build()
        )
        assert algorithm(graph).evaluate(query) == {(1,)}

    def test_empty_result(self, algorithm):
        graph = DataGraph.from_edges("ab", [(0, 1)])
        query = (
            QueryBuilder()
            .backbone("r", label="b")
            .backbone("x", parent="r", label="a")
            .outputs("r", "x")
            .build()
        )
        assert algorithm(graph).evaluate(query) == set()

    def test_nested_same_label(self, algorithm):
        # Stacked ancestors with the same label (stack nesting case).
        graph = DataGraph.from_edges("aab", [(0, 1), (1, 2)])
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .backbone("x", parent="r", label="b")
            .outputs("r", "x")
            .build()
        )
        assert algorithm(graph).evaluate(query) == {(0, 2), (1, 2)}

    def test_rejects_non_conjunctive(self, algorithm):
        graph = DataGraph.from_edges("ab", [(0, 1)])
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .predicate("p", parent="r", label="b")
            .structural("r", "!p")
            .build()
        )
        with pytest.raises(ValueError, match="conjunctive"):
            algorithm(graph).evaluate(query)

    def test_intermediate_tuples_counted(self, algorithm):
        graph = DataGraph.from_edges("abcb", [(0, 1), (1, 2), (2, 3)])
        query = (
            QueryBuilder()
            .backbone("r", label="a")
            .backbone("x", parent="r", label="b")
            .outputs("r", "x")
            .build()
        )
        evaluator = algorithm(graph)
        __, stats = evaluator.evaluate_with_stats(query)
        assert stats.intermediate_tuples > 0
        assert stats.input_nodes > 0


@settings(max_examples=100, deadline=None)
@given(random_trees(), conjunctive_tree_queries())
def test_twigstack_matches_oracle(graph, query):
    expected = evaluate_naive(query, graph)
    assert TwigStack(graph).evaluate(query) == expected


@settings(max_examples=100, deadline=None)
@given(random_trees(), conjunctive_tree_queries())
def test_twig2stack_matches_oracle(graph, query):
    expected = evaluate_naive(query, graph)
    assert Twig2Stack(graph).evaluate(query) == expected
