"""Unit tests for query/tree decomposition at reference edges."""

import pytest

from repro.baselines import (
    CrossAwareTreeSolver,
    TreeDecomposedEvaluator,
    TwigStack,
    decompose_at_cross_edges,
    spanning_forest_edges,
)
from repro.datasets import FIG7_CROSS, fig7_query
from repro.graph import DataGraph
from repro.query import QueryBuilder


class TestDecomposeAtCrossEdges:
    def test_no_cross_edges_single_subquery(self):
        query = fig7_query("q1")
        decomposed = decompose_at_cross_edges(query, set())
        assert len(decomposed.subqueries) == 1
        assert decomposed.joins == []
        assert set(decomposed.subqueries[0].nodes) == set(query.nodes)

    def test_q1_splits_into_two(self):
        query = fig7_query("q1")
        decomposed = decompose_at_cross_edges(query, FIG7_CROSS["q1"])
        assert len(decomposed.subqueries) == 2
        upper, lower = decomposed.subqueries
        assert upper.root == "open_auction"
        assert lower.root == "person"
        assert "person" not in upper.nodes
        assert set(lower.nodes) == {"person", "education", "address", "city"}
        assert decomposed.joins == [(0, "personref", 1)]

    def test_q3_splits_into_four(self):
        query = fig7_query("q3")
        decomposed = decompose_at_cross_edges(query, FIG7_CROSS["q3"])
        assert len(decomposed.subqueries) == 4
        roots = {sub.root for sub in decomposed.subqueries}
        assert roots == {"open_auction", "person", "item", "person2"}
        # One join per cross child, anchored at the right ref nodes.
        ref_nodes = {join[1] for join in decomposed.joins}
        assert ref_nodes == {"personref", "item_ref", "seller"}

    def test_outputs_track_subqueries(self):
        query = fig7_query("q1")
        decomposed = decompose_at_cross_edges(query, FIG7_CROSS["q1"])
        sub_of = {}
        for index, sub in enumerate(decomposed.subqueries):
            for node_id in sub.nodes:
                sub_of[node_id] = index
        for sub_index, node_id in decomposed.outputs:
            assert sub_of[node_id] == sub_index

    def test_ad_cross_edge_rejected(self):
        query = (
            QueryBuilder()
            .backbone("a", label="x")
            .backbone("b", parent="a", edge="ad", label="y")
            .outputs("a", "b")
            .build()
        )
        with pytest.raises(ValueError, match="parent-child"):
            decompose_at_cross_edges(query, {"b"})

    def test_unknown_cross_child_rejected(self):
        query = fig7_query("q1")
        with pytest.raises(ValueError, match="non-root"):
            decompose_at_cross_edges(query, {"nope"})

    def test_subqueries_are_conjunctive_all_output(self):
        query = fig7_query("q2")
        decomposed = decompose_at_cross_edges(query, FIG7_CROSS["q2"])
        for sub in decomposed.subqueries:
            assert sub.is_conjunctive()
            assert set(sub.outputs) == set(sub.nodes)


class TestSpanningForest:
    def test_tree_input_is_identity(self):
        graph = DataGraph.from_edges("abc", [(0, 1), (1, 2)])
        assert spanning_forest_edges(graph) == {(0, 1), (1, 2)}

    def test_extra_edges_dropped(self):
        graph = DataGraph.from_edges("abc", [(0, 1), (1, 2), (0, 2)])
        forest = spanning_forest_edges(graph)
        assert len(forest) == 2
        # Every node keeps at most one incoming edge.
        targets = [t for __, t in forest]
        assert len(targets) == len(set(targets))


class TestCrossAwareSolver:
    def test_adapter_resolves_cross_subset(self):
        graph = DataGraph()
        # auction(0) -> ref(1) --cross--> person(2) -> name(3)
        for label in ["auction", "personref", "person", "name"]:
            graph.add_node(label=label)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)  # the cross edge
        graph.add_edge(2, 3)
        forest = {(0, 1), (2, 3)}
        runner = TreeDecomposedEvaluator(graph, TwigStack, forest_edges=forest)
        solver = CrossAwareTreeSolver(runner, {"person"})
        query = (
            QueryBuilder()
            .backbone("auction", label="auction")
            .backbone("personref", parent="auction", edge="pc", label="personref")
            .backbone("person", parent="personref", edge="pc", label="person")
            .backbone("name", parent="person", edge="pc", label="name")
            .outputs("auction", "person")
            .build()
        )
        rows = solver.full_matches(query)
        assert rows == [{"auction": 0, "personref": 1, "person": 2, "name": 3}]

    def test_adapter_tolerates_query_without_cross_nodes(self):
        graph = DataGraph.from_edges(["auction", "bidder"], [(0, 1)])
        runner = TreeDecomposedEvaluator(
            graph, TwigStack, forest_edges={(0, 1)}
        )
        solver = CrossAwareTreeSolver(runner, {"person"})
        query = (
            QueryBuilder()
            .backbone("auction", label="auction")
            .backbone("bidder", parent="auction", edge="pc", label="bidder")
            .outputs("auction")
            .build()
        )
        assert solver.full_matches(query) == [{"auction": 0, "bidder": 1}]
