"""Tests for chain decomposition (path cover)."""

from hypothesis import given, settings

from repro.graph import DataGraph
from repro.reachability import Dag, chain_decomposition
from repro.reachability.base import Dag as DagClass
from tests.paper_fixtures import fig2_graph
from tests.reachability.test_indexes import random_dags


def _dag(graph: DataGraph) -> Dag:
    return DagClass.from_graph(graph)


class TestChainCoverBasics:
    def test_chain_of_a_path_is_single_chain(self):
        graph = DataGraph.from_edges("abcd", [(0, 1), (1, 2), (2, 3)])
        cover = chain_decomposition(_dag(graph))
        assert cover.num_chains == 1
        assert cover.chains[0] == [0, 1, 2, 3]
        assert [cover.sid[n] for n in (0, 1, 2, 3)] == [1, 2, 3, 4]

    def test_antichain_gets_one_chain_per_node(self):
        graph = DataGraph.from_edges("abc", [])
        cover = chain_decomposition(_dag(graph))
        assert cover.num_chains == 3

    def test_diamond_needs_two_chains(self):
        graph = DataGraph.from_edges("abcd", [(0, 1), (0, 2), (1, 3), (2, 3)])
        cover = chain_decomposition(_dag(graph))
        assert cover.num_chains == 2

    def test_same_chain_reaches(self):
        graph = DataGraph.from_edges("abc", [(0, 1), (1, 2)])
        cover = chain_decomposition(_dag(graph))
        assert cover.same_chain_reaches(0, 2)
        assert not cover.same_chain_reaches(2, 0)
        assert not cover.same_chain_reaches(0, 0)

    def test_fig2_cover_is_valid(self):
        graph = fig2_graph()
        cover = chain_decomposition(_dag(graph))
        seen: set[int] = set()
        for chain in cover.chains:
            for node in chain:
                assert node not in seen
                seen.add(node)
            for first, second in zip(chain, chain[1:]):
                assert graph.has_edge(first, second)
        assert seen == set(graph.nodes())


@settings(max_examples=80, deadline=None)
@given(random_dags())
def test_chains_partition_nodes_and_follow_edges(graph):
    dag = _dag(graph)
    cover = chain_decomposition(dag)
    seen: set[int] = set()
    for chain in cover.chains:
        assert chain, "empty chain"
        for node in chain:
            assert node not in seen
            seen.add(node)
        for first, second in zip(chain, chain[1:]):
            assert second in dag.succ[first], "chain uses a non-edge"
    assert seen == set(range(dag.num_nodes))


@settings(max_examples=80, deadline=None)
@given(random_dags())
def test_cid_sid_consistent_with_chains(graph):
    cover = chain_decomposition(_dag(graph))
    for chain_id, chain in enumerate(cover.chains):
        for position, node in enumerate(chain, start=1):
            assert cover.cid[node] == chain_id
            assert cover.sid[node] == position


@settings(max_examples=50, deadline=None)
@given(random_dags())
def test_path_cover_is_no_larger_than_trivial_cover(graph):
    cover = chain_decomposition(_dag(graph))
    assert cover.num_chains <= graph.num_nodes
    # A graph with at least one edge must save at least one chain.
    if graph.num_edges > 0:
        assert cover.num_chains < graph.num_nodes
