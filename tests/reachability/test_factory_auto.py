"""Factory registry completeness and the "auto" index heuristic."""

import pytest

from repro.graph import DataGraph, graph_stats
from repro.reachability import (
    available_indexes,
    build_reachability,
    resolve_index,
    select_auto_index,
)
from repro.reachability.factory import AUTO_TC_MAX_NODES


def balanced_tree(depth: int, fanout: int = 2) -> DataGraph:
    graph = DataGraph()
    graph.add_node(label="n")
    frontier = [0]
    for _ in range(depth):
        next_frontier = []
        for parent in frontier:
            for _ in range(fanout):
                child = graph.add_node(label="n")
                graph.add_edge(parent, child)
                next_frontier.append(child)
        frontier = next_frontier
    return graph


def dense_dag(num_nodes: int, fanout: int = 6) -> DataGraph:
    graph = DataGraph()
    for _ in range(num_nodes):
        graph.add_node(label="n")
    for source in range(num_nodes):
        for offset in range(1, fanout + 1):
            target = source + offset
            if target < num_nodes:
                graph.add_edge(source, target)
    return graph


class TestRegistry:
    def test_all_seven_indexes_registered(self):
        assert available_indexes() == sorted(
            ["3hop", "tc", "sspi", "tree-cover", "interval", "chain-cover", "contour"]
        )

    @pytest.mark.parametrize("name", ["interval", "chain-cover", "contour"])
    def test_previously_unregistered_indexes_build(self, name):
        graph = balanced_tree(3)
        service = build_reachability(graph, name)
        assert service.index.name == name
        assert service.reaches(0, graph.num_nodes - 1)
        assert not service.reaches(graph.num_nodes - 1, 0)

    def test_unknown_name_mentions_auto(self):
        with pytest.raises(ValueError, match="auto"):
            build_reachability(balanced_tree(1), "nope")


class TestAutoSelection:
    def test_tiny_graph_selects_transitive_closure(self):
        assert select_auto_index(graph_stats(balanced_tree(3))) == "tc"

    def test_large_forest_selects_interval(self):
        tree = balanced_tree(9)  # 1023 nodes > AUTO_TC_MAX_NODES
        assert tree.num_nodes > AUTO_TC_MAX_NODES
        assert select_auto_index(graph_stats(tree)) == "interval"

    def test_near_tree_dag_selects_tree_cover(self):
        graph = balanced_tree(9)
        # A handful of cross edges: no longer a forest, still near-tree.
        for node in range(0, 40, 4):
            graph.add_edge(node, graph.num_nodes - 1 - node)
        assert select_auto_index(graph_stats(graph)) == "tree-cover"

    def test_dense_dag_selects_three_hop(self):
        graph = dense_dag(AUTO_TC_MAX_NODES + 200)
        assert select_auto_index(graph_stats(graph)) == "3hop"

    def test_large_cyclic_graph_selects_three_hop(self):
        graph = balanced_tree(9)
        graph.add_edge(graph.num_nodes - 1, 0)  # one giant back edge
        assert select_auto_index(graph_stats(graph)) == "3hop"

    def test_resolve_index_passes_explicit_names_through(self):
        graph = balanced_tree(2)
        assert resolve_index(graph, "sspi") == "sspi"
        assert resolve_index(graph, "auto") == "tc"

    def test_build_reachability_accepts_auto(self):
        graph = balanced_tree(3)
        service = build_reachability(graph, "auto")
        assert service.index.name == "tc"
        assert service.reaches(0, graph.num_nodes - 1)
