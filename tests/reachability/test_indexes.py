"""Cross-index correctness: every index must agree with the DFS oracle."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.graph import DataGraph, reaches
from repro.reachability import available_indexes, build_reachability
from tests.paper_fixtures import fig2_graph


def random_dags(max_nodes: int = 14):
    """Random DAGs: edges only go from smaller to larger ids."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_nodes))
        graph = DataGraph()
        for __ in range(n):
            graph.add_node(label="x")
        if n > 1:
            pairs = draw(
                st.lists(
                    st.tuples(
                        st.integers(min_value=0, max_value=n - 2),
                        st.integers(min_value=1, max_value=n - 1),
                    ),
                    max_size=3 * n,
                )
            )
            for source, target in pairs:
                if source < target:
                    graph.add_edge(source, target)
        return graph

    return build()


def random_digraphs(max_nodes: int = 12):
    """Random digraphs, cycles allowed."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_nodes))
        graph = DataGraph()
        for __ in range(n):
            graph.add_node(label="x")
        pairs = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=3 * n,
            )
        )
        for source, target in pairs:
            graph.add_edge(source, target)
        return graph

    return build()


ALL_INDEXES = available_indexes()


@pytest.mark.parametrize("index_name", ALL_INDEXES)
class TestAgainstOracleFixed:
    def test_fig2_graph_full_matrix(self, index_name):
        graph = fig2_graph()
        service = build_reachability(graph, index_name)
        for source in graph.nodes():
            for target in graph.nodes():
                expected = reaches(graph, source, target)
                assert service.reaches(source, target) == expected, (
                    f"{index_name}: {source}->{target}"
                )

    def test_single_node(self, index_name):
        graph = DataGraph.from_edges("a", [])
        service = build_reachability(graph, index_name)
        assert not service.reaches(0, 0)

    def test_self_loop(self, index_name):
        graph = DataGraph.from_edges("a", [(0, 0)])
        service = build_reachability(graph, index_name)
        assert service.reaches(0, 0)

    def test_cycle_members_reach_each_other_and_themselves(self, index_name):
        graph = DataGraph.from_edges("abc", [(0, 1), (1, 0), (1, 2)])
        service = build_reachability(graph, index_name)
        assert service.reaches(0, 0)
        assert service.reaches(0, 1)
        assert service.reaches(1, 0)
        assert service.reaches(0, 2)
        assert not service.reaches(2, 2)
        assert not service.reaches(2, 0)

    def test_diamond(self, index_name):
        graph = DataGraph.from_edges("abcd", [(0, 1), (0, 2), (1, 3), (2, 3)])
        service = build_reachability(graph, index_name)
        assert service.reaches(0, 3)
        assert not service.reaches(1, 2)
        assert not service.reaches(3, 0)

    def test_long_chain(self, index_name):
        n = 200
        graph = DataGraph()
        for __ in range(n):
            graph.add_node()
        for i in range(n - 1):
            graph.add_edge(i, i + 1)
        service = build_reachability(graph, index_name)
        assert service.reaches(0, n - 1)
        assert not service.reaches(n - 1, 0)
        assert not service.reaches(5, 5)


@settings(max_examples=60, deadline=None)
@given(random_dags())
def test_all_indexes_match_oracle_on_random_dags(graph):
    services = [build_reachability(graph, name) for name in ALL_INDEXES]
    for source in graph.nodes():
        for target in graph.nodes():
            expected = reaches(graph, source, target)
            for service in services:
                got = service.reaches(source, target)
                assert got == expected, (
                    f"{service.index.name}: {source}->{target} expected "
                    f"{expected}, got {got}"
                )


@settings(max_examples=60, deadline=None)
@given(random_digraphs())
def test_all_indexes_match_oracle_on_random_cyclic_graphs(graph):
    services = [build_reachability(graph, name) for name in ALL_INDEXES]
    for source in graph.nodes():
        for target in graph.nodes():
            expected = reaches(graph, source, target)
            for service in services:
                assert service.reaches(source, target) == expected


def test_unknown_index_name_raises():
    with pytest.raises(ValueError, match="unknown index"):
        build_reachability(DataGraph.from_edges("a", []), "nope")


def test_counters_track_lookups():
    graph = fig2_graph()
    service = build_reachability(graph, "3hop")
    service.counters.reset()
    service.reaches(0, 10)
    assert service.counters.lookups >= 1
