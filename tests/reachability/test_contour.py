"""Tests for contour merging and Proposition 7 set-reachability."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graph import DataGraph, reaches
from repro.reachability import (
    ThreeHopIndex,
    contour_reaches_node,
    merge_pred_lists,
    merge_succ_lists,
    node_reaches_contour,
)
from repro.reachability.base import Dag
from tests.paper_fixtures import fig2_graph, v
from tests.reachability.test_indexes import random_dags


def _index(graph: DataGraph) -> ThreeHopIndex:
    return ThreeHopIndex(Dag.from_graph(graph))


def _set_reaches(graph, sources, target) -> bool:
    return any(reaches(graph, s, target) for s in sources)


def _reaches_set(graph, source, targets) -> bool:
    return any(reaches(graph, source, t) for t in targets)


class TestFig2Contours:
    def test_example8_pred_contour_of_mat_u10(self):
        """Example 8: contour of mat(u10) answers exactly its ancestor set."""
        graph = fig2_graph()
        index = _index(graph)
        mat_u10 = [v(9), v(10), v(13), v(15)]
        contour = merge_pred_lists(index, mat_u10)
        for node in graph.nodes():
            expected = _reaches_set(graph, node, mat_u10)
            assert node_reaches_contour(index, node, contour) == expected

    def test_example9_pruning_facts_via_contours(self):
        graph = fig2_graph()
        index = _index(graph)
        # mat(u5) = {v13}: v3 and v8 reach it, v5 does not.
        contour = merge_pred_lists(index, [v(13)])
        assert node_reaches_contour(index, v(3), contour)
        assert node_reaches_contour(index, v(8), contour)
        assert not node_reaches_contour(index, v(5), contour)

    def test_example10_upward_direction(self):
        graph = fig2_graph()
        index = _index(graph)
        mat_u1 = [v(1), v(2), v(4)]
        contour = merge_succ_lists(index, mat_u1)
        # mat(u1) reaches v3, v8 and v5 (Example 10).
        for paper_id in (3, 8, 5):
            assert contour_reaches_node(index, v(paper_id), contour)
        # ... but nothing reaches the roots themselves.
        for paper_id in (1, 2, 7):
            assert not contour_reaches_node(index, v(paper_id), contour)


class TestEdgeCases:
    def test_empty_set_contour(self):
        graph = DataGraph.from_edges("ab", [(0, 1)])
        index = _index(graph)
        assert len(merge_pred_lists(index, [])) == 0
        assert not node_reaches_contour(index, 0, merge_pred_lists(index, []))
        assert not contour_reaches_node(index, 1, merge_succ_lists(index, []))

    def test_member_is_not_its_own_ancestor_on_dag(self):
        graph = DataGraph.from_edges("ab", [(0, 1)])
        index = _index(graph)
        contour = merge_pred_lists(index, [1])
        assert node_reaches_contour(index, 0, contour)
        assert not node_reaches_contour(index, 1, contour)  # strictness

    def test_set_with_chain_stacked_members(self):
        # Members on the same chain: only the extremal one matters.
        graph = DataGraph.from_edges("abcd", [(0, 1), (1, 2), (2, 3)])
        index = _index(graph)
        contour = merge_pred_lists(index, [1, 2, 3])
        assert node_reaches_contour(index, 0, contour)
        assert node_reaches_contour(index, 1, contour)  # reaches 2, 3
        assert node_reaches_contour(index, 2, contour)  # reaches 3
        assert not node_reaches_contour(index, 3, contour)


@settings(max_examples=60, deadline=None)
@given(random_dags(), st.data())
def test_pred_contour_matches_oracle(graph, data):
    n = graph.num_nodes
    members = data.draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n)
    )
    index = _index(graph)
    contour = merge_pred_lists(index, members)
    for node in graph.nodes():
        expected = _reaches_set(graph, node, members)
        assert node_reaches_contour(index, node, contour) == expected


@settings(max_examples=60, deadline=None)
@given(random_dags(), st.data())
def test_succ_contour_matches_oracle(graph, data):
    n = graph.num_nodes
    members = data.draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n)
    )
    index = _index(graph)
    contour = merge_succ_lists(index, members)
    for node in graph.nodes():
        expected = _set_reaches(graph, members, node)
        assert contour_reaches_node(index, node, contour) == expected


@settings(max_examples=40, deadline=None)
@given(random_dags())
def test_complete_lists_match_oracle(graph):
    """X_v / Y_v hold the true per-chain extrema of the reach sets."""
    index = _index(graph)
    cover = index.cover
    for node in graph.nodes():
        successors = index.complete_successor_list(node)
        inclusive_reach = {node} | {
            t for t in graph.nodes() if reaches(graph, node, t)
        }
        expected: dict[int, int] = {}
        for member in inclusive_reach:
            chain = cover.cid[member]
            if chain not in expected or cover.sid[member] < expected[chain]:
                expected[chain] = cover.sid[member]
        assert successors == expected
