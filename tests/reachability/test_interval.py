"""Tests for interval labeling (trees) and the tree-cover index internals."""

import pytest

from repro.graph import DataGraph
from repro.reachability import IntervalLabeling, ThreeHopIndex, TreeCoverIndex
from repro.reachability.base import Dag


def _tree() -> DataGraph:
    #        0
    #      /   \
    #     1     2
    #    / \     \
    #   3   4     5
    return DataGraph.from_edges("rabcde", [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)])


class TestIntervalLabeling:
    def test_ancestor_descendant(self):
        labeling = IntervalLabeling(_tree())
        assert labeling.is_ancestor(0, 3)
        assert labeling.is_ancestor(1, 4)
        assert not labeling.is_ancestor(1, 5)
        assert not labeling.is_ancestor(3, 0)
        assert not labeling.is_ancestor(0, 0)  # strict

    def test_parent_child(self):
        labeling = IntervalLabeling(_tree())
        assert labeling.is_parent(0, 1)
        assert not labeling.is_parent(0, 3)  # grandchild
        assert not labeling.is_parent(1, 2)

    def test_document_order_is_preorder(self):
        labeling = IntervalLabeling(_tree())
        order = labeling.document_order()
        assert order[0] == 0
        assert order.index(1) < order.index(3)
        assert order.index(3) < order.index(2)

    def test_levels(self):
        labeling = IntervalLabeling(_tree())
        assert labeling.level[0] == 0
        assert labeling.level[1] == 1
        assert labeling.level[3] == 2

    def test_forest_supported(self):
        graph = DataGraph.from_edges("abcd", [(0, 1), (2, 3)])
        labeling = IntervalLabeling(graph)
        assert labeling.is_ancestor(0, 1)
        assert labeling.is_ancestor(2, 3)
        assert not labeling.is_ancestor(0, 3)

    def test_non_forest_rejected(self):
        graph = DataGraph.from_edges("abc", [(0, 2), (1, 2)])
        with pytest.raises(ValueError, match="parents"):
            IntervalLabeling(graph)

    def test_cycle_rejected(self):
        graph = DataGraph.from_edges("ab", [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            IntervalLabeling(graph)


class TestTreeCoverInternals:
    def test_single_interval_on_tree(self):
        index = TreeCoverIndex(Dag.from_graph(_tree()))
        for node in range(6):
            assert len(index.intervals[node]) == 1

    def test_interval_merging_on_dag(self):
        # 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3: node 0 still compresses to one
        # interval because the postorder ranges are adjacent.
        graph = DataGraph.from_edges("abcd", [(0, 1), (0, 2), (1, 3), (2, 3)])
        index = TreeCoverIndex(Dag.from_graph(graph))
        assert index.reaches(0, 3)
        assert index.reaches(2, 3)
        assert not index.reaches(1, 2)

    def test_index_size_reported(self):
        index = TreeCoverIndex(Dag.from_graph(_tree()))
        assert index.index_size() >= 6


class TestThreeHopInternals:
    def test_delta_lists_are_sorted(self):
        graph = DataGraph.from_edges(
            "abcdef", [(0, 1), (1, 2), (0, 3), (3, 4), (4, 2), (3, 5)]
        )
        index = ThreeHopIndex(Dag.from_graph(graph))
        for entries in index.lout + index.lin:
            assert entries == sorted(entries)

    def test_skip_pointers_skip_empty_lists(self):
        graph = DataGraph.from_edges("abcd", [(0, 1), (1, 2), (2, 3)])
        index = ThreeHopIndex(Dag.from_graph(graph))
        # Single chain, no cross-chain entries anywhere: all pointers None.
        for node in range(4):
            assert index.lout[node] == []
            assert index.next_out(node) is None

    def test_index_size_smaller_than_tc_on_path(self):
        n = 64
        graph = DataGraph()
        for __ in range(n):
            graph.add_node()
        for i in range(n - 1):
            graph.add_edge(i, i + 1)
        index = ThreeHopIndex(Dag.from_graph(graph))
        # A path compresses to zero stored entries (pure chain cover).
        assert index.index_size() == 0
