"""Partial (footprint-restricted) index correctness and probe parity."""

import pickle
import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.graph import DataGraph, reaches
from repro.reachability import (
    Footprint,
    PartialReachability,
    build_partial_reachability,
    build_reachability,
    candidate_cone,
    domain_fingerprint,
)


def random_digraph(rng: random.Random, n: int, extra_edges: int) -> DataGraph:
    graph = DataGraph()
    for __ in range(n):
        graph.add_node(label="x")
    for __ in range(extra_edges):
        graph.add_edge(rng.randrange(n), rng.randrange(n))
    return graph


class TestFootprint:
    def test_cone_is_descendant_closed(self):
        rng = random.Random(7)
        graph = random_digraph(rng, 30, 60)
        cone = candidate_cone(graph, {0, 1})
        for node in cone:
            assert set(graph.successors(node)) <= cone

    def test_budget_blowout_returns_none(self):
        graph = DataGraph()
        for __ in range(10):
            graph.add_node(label="x")
        for i in range(9):
            graph.add_edge(i, i + 1)
        assert candidate_cone(graph, {0}, budget=3) is None
        assert Footprint.from_seeds(graph, {0}, budget=3) is None
        assert Footprint.from_seeds(graph, {0}, budget=10) is not None

    def test_fingerprint_is_order_independent_and_distinct(self):
        assert domain_fingerprint([3, 1, 2]) == domain_fingerprint({2, 3, 1})
        assert domain_fingerprint([1, 2]) != domain_fingerprint([1, 3])

    def test_equal_footprints_share_fingerprint(self):
        graph = DataGraph()
        for __ in range(4):
            graph.add_node(label="x")
        graph.add_edge(0, 2)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        a = Footprint.from_seeds(graph, {0, 1})
        b = Footprint.from_seeds(graph, {1, 0})
        assert a.fingerprint == b.fingerprint


@pytest.mark.parametrize("inner", ["tc", "3hop", "contour"])
class TestPartialDifferential:
    def test_matches_oracle_everywhere(self, inner):
        """In-domain probes, boundary probes and fallback probes all agree
        with the DFS oracle — including sources outside the footprint."""
        rng = random.Random(17)
        for case in range(8):
            graph = random_digraph(rng, 24, 50)
            seeds = {rng.randrange(24) for __ in range(3)}
            footprint = Footprint.from_seeds(graph, seeds)
            service = build_partial_reachability(graph, footprint, inner)
            for source in range(24):
                for target in range(24):
                    assert service.reaches(source, target) == reaches(
                        graph, source, target
                    ), (case, source, target)

    def test_scoped_name(self, inner):
        graph = random_digraph(random.Random(3), 8, 10)
        footprint = Footprint.from_seeds(graph, {0})
        service = build_partial_reachability(graph, footprint, inner)
        assert service.index.name == f"{inner}@partial"
        assert service.index.inner_name == inner


class TestProbeParity:
    def test_in_domain_probes_count_like_full_index(self):
        """A partial index reports the same lookup counts a full index
        would for the same probe sequence (the ``#index`` metric)."""
        rng = random.Random(23)
        graph = random_digraph(rng, 30, 55)
        footprint = Footprint.from_seeds(graph, {0, 1, 2})
        partial = build_partial_reachability(graph, footprint, "tc")
        full = build_reachability(graph, "tc")
        probes = [(rng.randrange(30), rng.randrange(30)) for __ in range(200)]
        for source, target in probes:
            assert partial.reaches(source, target) == full.reaches(source, target)
        assert partial.counters.lookups == full.counters.lookups

    def test_out_of_domain_false_shortcut_counts_a_probe(self):
        graph = DataGraph()
        for __ in range(3):
            graph.add_node(label="x")
        graph.add_edge(0, 1)  # 2 is isolated, outside the footprint of {0}
        footprint = Footprint.from_seeds(graph, {0})
        service = build_partial_reachability(graph, footprint, "tc")
        before = service.counters.lookups
        assert not service.reaches(0, 2)
        assert service.counters.lookups == before + 1

    def test_fallback_bfs_is_memoized(self):
        graph = DataGraph()
        for __ in range(4):
            graph.add_node(label="x")
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        footprint = Footprint.from_seeds(graph, {3})  # 0..2 out of domain
        service = build_partial_reachability(graph, footprint, "tc")
        assert service.reaches(0, 2)
        scanned = service.counters.entries_scanned
        assert service.reaches(0, 1)
        assert service.counters.entries_scanned == scanned


class TestPersistence:
    def test_pickle_roundtrip_drops_graph_and_reattaches(self):
        graph = random_digraph(random.Random(5), 20, 35)
        footprint = Footprint.from_seeds(graph, {0, 1})
        service = build_partial_reachability(graph, footprint, "tc")
        restored = pickle.loads(pickle.dumps(service))
        assert restored.graph is None
        restored.graph = graph
        assert restored.footprint.fingerprint == footprint.fingerprint
        for source in range(20):
            for target in range(20):
                assert restored.reaches(source, target) == service.reaches(
                    source, target
                )


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_partial_matches_oracle_on_random_digraphs(data):
    n = data.draw(st.integers(min_value=1, max_value=12))
    graph = DataGraph()
    for __ in range(n):
        graph.add_node(label="x")
    pairs = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=3 * n,
        )
    )
    for source, target in pairs:
        graph.add_edge(source, target)
    seeds = data.draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), max_size=3)
    )
    footprint = Footprint.from_seeds(graph, seeds)
    service = PartialReachability(graph, footprint, "tc")
    for source in range(n):
        for target in range(n):
            assert service.reaches(source, target) == reaches(graph, source, target)
