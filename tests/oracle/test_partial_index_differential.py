"""Randomized differential testing of the partial-index path.

Seeded enclave (graph, workload) cases — shapes where the per-query
costing of :func:`repro.plan.cost.choose_scoped_index` actually picks
the partial arm — are cross-checked three ways:

* **oracle** — the partial-plan session must agree byte-for-byte with
  ``evaluate_naive`` (the Section-2 semantics oracle);
* **full-index differential** — and with a session pinned to a
  full-graph index, *including probe-count parity*: the partial adapter
  mirrors its inner index's lookup counters at identical call sites, so
  any silent fallback or double-probe shows up as a counter drift;
* **boundary** — footprints at and past the budget fraction must fall
  back to a full index and still match the oracle (the partial arm can
  cost time, never correctness).
"""

import random

import pytest

from repro.datasets import enclave_graph, index_choice_workload
from repro.engine import QuerySession
from repro.graph import DataGraph
from repro.query import AttributePredicate, QueryBuilder, evaluate_naive

SEEDS = range(700, 706)


def pair_query(head, tail):
    return (
        QueryBuilder()
        .backbone("a", predicate=AttributePredicate.label(head))
        .backbone("b", parent="a", predicate=AttributePredicate.label(tail))
        .outputs("a", "b")
        .build()
    )


class TestPartialDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_partial_plans_match_naive_and_full_sessions(self, seed):
        rng = random.Random(seed)
        graph = enclave_graph(1, rng)
        labels = ["q", "r", "s"]
        rng.shuffle(labels)
        queries = [pair_query(labels[0], labels[1]), pair_query(labels[1], labels[2])]

        partial_session = QuerySession(graph)
        full_session = QuerySession(graph, index="3hop")
        # Probe parity is measured against the partial arm's *inner*
        # index pinned full-scope: the engine walks an identical probe
        # stream there, while 3hop runs its own hop-list merge path.
        parity_session = QuerySession(graph, index="tc")
        partial_picked = 0
        for position, query in enumerate(queries):
            plan = partial_session._plan_for(query)
            partial_picked += plan.compiled.physical.index_scope == "partial"
            answer, stats = partial_session.evaluate_with_stats(query)
            full_answer, __ = full_session.evaluate_with_stats(query)
            __, parity_stats = parity_session.evaluate_with_stats(query)
            oracle = evaluate_naive(query, graph)
            assert answer == oracle, f"seed {seed} query {position}: != naive"
            assert answer == full_answer, f"seed {seed} query {position}: != full"
            assert stats.partial_fallbacks == 0
            assert stats.index_lookups == parity_stats.index_lookups, (
                f"seed {seed} query {position}: partial run probed "
                f"{stats.index_lookups} times, full tc run "
                f"{parity_stats.index_lookups}"
            )
        assert partial_picked == len(queries), (
            f"seed {seed}: the enclave workload must exercise the partial arm"
        )

    def test_generated_workload_sweep(self):
        graph, queries = index_choice_workload(scale=1, queries=6)
        partial_session = QuerySession(graph)
        full_session = QuerySession(graph, index="3hop")
        for position, query in enumerate(queries):
            answer = partial_session.evaluate(query)
            assert answer == full_session.evaluate(query), f"query {position}"
            assert answer == evaluate_naive(query, graph), f"query {position}"


class TestFootprintBoundary:
    def ladder_graph(self, cone_fraction, num_nodes=1200, seed=11):
        """A dense bulk plus one rare-label chain sized to put the real
        descendant cone at ``cone_fraction`` of the graph."""
        rng = random.Random(seed)
        graph = DataGraph()
        chain = max(2, int(cone_fraction * num_nodes))
        bulk = num_nodes - chain
        for __ in range(bulk):
            graph.add_node(label=rng.choice("abc"))
        for target in range(1, bulk):
            lower = max(0, target - 10)
            graph.add_edge(rng.randrange(lower, target), target)
            graph.add_edge(rng.randrange(lower, target), target)
        base = bulk
        graph.add_node(label="q")
        graph.add_node(label="r")
        for __ in range(chain - 2):
            graph.add_node(label="a")
        for position in range(chain - 1):
            graph.add_edge(base + position, base + position + 1)
        graph.add_edge(0, base)
        return graph

    @pytest.mark.parametrize("cone_fraction", [0.05, 0.24, 0.5, 0.95])
    def test_boundary_cones_stay_correct(self, cone_fraction):
        """Below the budget the cone builds; past it the footprint blows
        the budget at execution time and falls back — either way the
        answers match the oracle and a pinned full index."""
        graph = self.ladder_graph(cone_fraction)
        query = pair_query("q", "r")
        session = QuerySession(graph)
        answer, stats = session.evaluate_with_stats(query)
        assert answer == evaluate_naive(query, graph)
        assert answer == QuerySession(graph, index="3hop").evaluate(query)
        if stats.partial_builds:
            assert stats.partial_fallbacks == 0
        # One of the arms ran; nothing silently evaluated index-free.
        assert stats.partial_builds + stats.partial_fallbacks <= 1

    def test_past_budget_cone_falls_back(self):
        graph = self.ladder_graph(0.95)
        query = pair_query("q", "r")
        session = QuerySession(graph)
        plan = session._plan_for(query)
        if plan.compiled.physical.index_scope == "partial":
            __, stats = session.evaluate_with_stats(query)
            assert stats.partial_fallbacks == 1
            assert stats.partial_builds == 0
