"""Randomized differential testing of the plan-codegen backend.

Seeded random (graph, workload) cases cross-check the specialized
executors of :mod:`repro.plan.codegen` three ways:

* **semantics** — codegen answers must equal ``evaluate_naive`` (the
  Section-2 oracle) and the interpreted session exactly;
* **byte identity** — a codegen execution must reproduce the
  interpreted run's per-node survivor sets, prune-op counts and index
  probe totals, not just its answers (source and closure mode both);
* **fallback** — sessions that cannot use codegen (parallel-sharded,
  adaptive) must still agree while counting the fallback.

The random batches deliberately include rewrite-heavy queries, so the
sweep covers the PR 3 bug class: minimization can leave a
constant-FALSE ``fext`` on a leaf, which codegen folds to a
compile-time empty set — the unsat/empty regime is asserted non-trivial
below.
"""

import random

import pytest

from repro.datasets import random_labeled_graph, random_query_batch
from repro.engine import QuerySession
from repro.engine.parallel import ParallelOptions
from repro.query import QueryBuilder, evaluate_naive

#: (first seed, number of seeds) chunks covering the default cases.
DEFAULT_CHUNKS = [(start, 20) for start in range(600, 680, 20)]


def codegen_session(graph, mode):
    return QuerySession(graph, result_cache_size=0, codegen=mode)


def run_codegen_differential_cases(seeds, *, node_range=(8, 16)) -> dict:
    """One (graph, batch) case per seed; returns coverage counters."""
    coverage = {"cases": 0, "queries": 0, "nonempty": 0, "empty": 0, "compiled": 0}
    for seed in seeds:
        rng = random.Random(seed)
        graph = random_labeled_graph(rng.randint(*node_range), rng)
        batch = random_query_batch(graph, rng, batch_size=rng.randint(3, 6), overlap=0.6)
        interpreted = QuerySession(graph, result_cache_size=0)
        source = codegen_session(graph, "auto")
        closure = codegen_session(graph, "closure")
        for position, query in enumerate(batch):
            expected = evaluate_naive(query, graph)
            base_answer, base_stats = interpreted.evaluate_with_stats(query)
            assert base_answer == expected, (
                f"seed {seed} query {position}: interpreted session disagrees "
                f"with evaluate_naive"
            )
            for label, session in (("source", source), ("closure", closure)):
                answer, stats = session.evaluate_with_stats(query)
                assert answer == expected, (
                    f"seed {seed} query {position}: codegen[{label}] disagrees "
                    f"with evaluate_naive"
                )
                if not (stats.codegen_hits or stats.codegen_misses):
                    continue
                coverage["compiled"] += 1
                if expected:
                    # Full-run regime: byte identity with the interpreted
                    # pipeline — survivors, prune ops and probe counts.
                    assert (
                        stats.candidates_after_downward
                        == base_stats.candidates_after_downward
                    ), (
                        f"seed {seed} query {position}: codegen[{label}] survivor "
                        f"sets are not byte-identical to the interpreted run"
                    )
                    assert stats.downward_prune_ops == base_stats.downward_prune_ops
                    assert stats.index_lookups == base_stats.index_lookups, (
                        f"seed {seed} query {position}: codegen[{label}] issued a "
                        f"different number of index probes"
                    )
                    assert stats.index_entries == base_stats.index_entries
                    assert stats.input_nodes == base_stats.input_nodes
                else:
                    # Empty answers: the backbone-empty early exit (the
                    # adaptive driver's shortcut) may skip the tail of
                    # the downward phase, so codegen's work must be a
                    # *prefix* of the interpreted run, never more.
                    assert stats.downward_prune_ops <= base_stats.downward_prune_ops
                    assert stats.index_lookups <= base_stats.index_lookups
                    assert stats.input_nodes <= base_stats.input_nodes
                    for node_id, size in stats.candidates_after_downward.items():
                        assert size == base_stats.candidates_after_downward[node_id], (
                            f"seed {seed} query {position}: codegen[{label}] "
                            f"survivor set for {node_id!r} diverges"
                        )
            coverage["queries"] += 1
            coverage["nonempty"] += bool(expected)
            coverage["empty"] += not expected
        coverage["cases"] += 1
    return coverage


@pytest.mark.parametrize("start,count", DEFAULT_CHUNKS)
def test_codegen_differential_agreement(start, count):
    coverage = run_codegen_differential_cases(range(start, start + count))
    assert coverage["cases"] == count
    # The sweep must exercise the interesting regimes: nonempty answers,
    # empty answers (the const-folded / early-exit paths) and genuinely
    # compiled executions (not wall-to-wall fallbacks).
    assert coverage["nonempty"] > 0
    assert coverage["empty"] > 0
    assert coverage["compiled"] > coverage["queries"]


def test_codegen_agrees_on_constant_false_leaf():
    """The PR 3 bug class, pinned: minimization folds a redundant
    predicate subtree into a constant-FALSE leaf fext; codegen turns it
    into a compile-time empty set and must still match the oracle."""
    for seed in range(40):
        rng = random.Random(seed)
        graph = random_labeled_graph(rng.randint(8, 14), rng)
        labels = sorted({graph.label(v) for v in graph.nodes()})
        a, b = labels[0], labels[-1]
        query = (
            QueryBuilder()
            .backbone("r", label=a)
            .predicate("p", parent="r", label=b)
            .structural("r", "!p")
            .outputs("r")
            .build()
        )
        expected = evaluate_naive(query, graph)
        for mode in ("auto", "closure"):
            session = codegen_session(graph, mode)
            answer, _ = session.evaluate_with_stats(query)
            assert answer == expected, f"seed {seed} mode {mode}: negated-leaf query"


def test_codegen_agrees_on_unsatisfiable_query():
    """Theorem-1 unsat routes to constant-empty; codegen sessions must
    serve the empty answer without compiling anything."""
    rng = random.Random(7)
    graph = random_labeled_graph(10, rng)
    query = (
        QueryBuilder()
        .backbone("r", label=graph.label(next(iter(graph.nodes()))))
        .predicate("p", parent="r", label="anything")
        .structural("r", "p & !p")
        .outputs("r")
        .build()
    )
    for mode in ("auto", "closure"):
        session = codegen_session(graph, mode)
        answer, stats = session.evaluate_with_stats(query)
        assert answer == set()
        assert stats.codegen_hits == stats.codegen_misses == 0


def test_codegen_session_with_parallel_falls_back_and_agrees():
    """codegen="auto" on a sharded session: interpreted answers and
    counted fallbacks whenever the prune phase actually sharded."""
    options = ParallelOptions(workers=3, backend="serial", shards=3, min_shard_size=1)
    for seed in range(620, 630):
        rng = random.Random(seed)
        graph = random_labeled_graph(rng.randint(8, 14), rng)
        batch = random_query_batch(graph, rng, batch_size=4, overlap=0.6)
        session = QuerySession(graph, result_cache_size=0, parallel=options, codegen="auto")
        for query in batch:
            answer, stats = session.evaluate_with_stats(query)
            assert answer == evaluate_naive(query, graph)
            if stats.parallel_shard_tasks:
                assert stats.codegen_fallbacks == 1
                assert stats.codegen_hits == stats.codegen_misses == 0


def test_codegen_session_with_adaptive_falls_back_and_agrees():
    for seed in range(640, 650):
        rng = random.Random(seed)
        graph = random_labeled_graph(rng.randint(8, 14), rng)
        batch = random_query_batch(graph, rng, batch_size=4, overlap=0.6)
        session = QuerySession(graph, result_cache_size=0, adaptive=True, codegen="auto")
        for query in batch:
            answer, stats = session.evaluate_with_stats(query)
            assert answer == evaluate_naive(query, graph)
            assert stats.codegen_hits == stats.codegen_misses == 0


@pytest.mark.slow
@pytest.mark.parametrize("start", range(2000, 2200, 50))
def test_codegen_differential_wide_sweep(start):
    """Larger graphs and denser batches (the slow sweep)."""
    coverage = run_codegen_differential_cases(range(start, start + 50), node_range=(12, 24))
    assert coverage["cases"] == 50
    assert coverage["nonempty"] > 0
    assert coverage["compiled"] > 0
